"""ABL12 — continuous authorization: bounded time-to-revoke under faults.

The paper's zero-trust posture is only as strong as its weakest
*revocation* path: federated SSO grants access across the broker, the
SSH CA, Zenith and the schedulers, so a compromised credential has four
places to keep living after the IdP says no.  This ablation measures
the continuous-authorization pipeline's time-to-revoke (TTR) — the
journalled intent's request-to-all-surfaces-confirmed latency — across
five arms:

* **baseline** — no faults: every intent must fan out to all four
  surfaces within the advertised ``ttr_bound``;
* **crash** — the pipeline host dies *between* journalling the intent
  and enforcement; recovery must resume and finish every teardown;
* **pdp down (partition)** — the policy decision point is unreachable
  past the staleness bound: enforcement surfaces must fail *closed*
  (deny) rather than serve stale ALLOWs, while revocation — which
  needs no PDP — keeps working;
* **teardown stuck** — one enforcement surface wedges for ``D``
  seconds: TTR for the affected intents is bounded by
  ``D + retry_interval``;
* **revocation storm** — N× duplicate revocations against the same
  identities: still-pending intents coalesce, so the storm does one
  teardown per identity, not N.

Every arm ends with the same oracle: **zero live sessions survive**
on any of the four surfaces for any revoked identity.

``ABL12_QUICK=1`` shrinks the cohort for CI smoke runs.
"""

import os

from repro.authz import AuthzConfig
from repro.core import build_isambard
from repro.core.metrics import format_table

QUICK = os.environ.get("ABL12_QUICK") == "1"
N_RESEARCHERS = 2 if QUICK else 5
STUCK_FOR = 5.0
STORM_MULT = 6  # duplicate revocations per identity in the storm arm

CFG = AuthzConfig()  # advertised bounds the arms are asserted against


# ----------------------------------------------------------------------
# cohort setup: one PI project, N researchers, live sessions on all four
# surfaces (RBAC/OIDC tokens, SSH cert + session, Zenith web session +
# tunnel, Jupyter server)
# ----------------------------------------------------------------------
def onboard(seed: int):
    dri = build_isambard(seed=seed, authz=True, durability=True)
    s1 = dri.workflows.story1_pi_onboarding("alice")
    assert s1.ok, s1.steps
    project_id = s1.data["project_id"]
    names = [f"res{i}" for i in range(N_RESEARCHERS)]
    for name in names:
        s3 = dri.workflows.story3_researcher_setup(project_id, "alice", name)
        assert s3.ok, s3.steps
        s4 = dri.workflows.story4_ssh_session(name)
        assert s4.ok, s4.steps
        s6 = dri.workflows.story6_jupyter(name)
        assert s6.ok, s6.steps
    uids = [dri.workflows.personas[n].broker_sub for n in names]
    return dri, uids


def survivors(dri, uids) -> int:
    """Live sessions any revoked identity still holds, counted at the
    *enforcement surfaces themselves* (not just the registry ledger)."""
    reg = dri.authz.registry
    n = 0
    for uid in uids:
        spiffe = reg.graph.identity_of(uid)
        n += len(reg.live_grants(spiffe))
        accounts = reg.graph.accounts_of(uid)
        n += len([s for s in dri.login_sshd.sessions()
                  if s.principal in accounts])
        n += len([s for s in dri.jupyter.sessions() if s.subject == uid])
    return n


def ttr_stats(intents):
    ttrs = sorted(i.ttr() for i in intents if i.ttr() is not None)
    assert ttrs, "no completed intents to measure"
    p = lambda q: ttrs[min(len(ttrs) - 1, int(q * (len(ttrs) - 1) + 0.999))]
    return {"n": len(ttrs), "p50": p(0.50), "p99": p(0.99), "max": ttrs[-1]}


def finished(dri, uids):
    pipe = dri.authz.pipeline
    mine = {dri.authz.registry.graph.identity_of(u) for u in uids}
    return [i for i in pipe._iter_intents()
            if i.spiffe_id in mine and i.complete]


# ----------------------------------------------------------------------
# arms
# ----------------------------------------------------------------------
def arm_baseline(seed: int):
    dri, uids = onboard(seed)
    for uid in uids:
        dri.authz.pipeline.revoke(uid=uid, reason="abl12-baseline", by="bench")
    stats = ttr_stats(finished(dri, uids))
    assert stats["p99"] <= CFG.ttr_bound
    assert survivors(dri, uids) == 0
    return {"stats": stats, "survivors": survivors(dri, uids),
            "note": "no faults"}


def arm_crash(seed: int):
    """Crash between the journalled intent and enforcement."""
    dri, uids = onboard(seed)
    pipe = dri.authz.pipeline
    for s in ("tokens", "ssh", "tunnels", "compute"):
        pipe.stick(s)  # wedge enforcement so the crash window is open
    for uid in uids:
        pipe.revoke(uid=uid, reason="abl12-crash", by="bench")
    assert len(pipe.pending_intents()) == len(uids)
    dri.crash("authz")
    dri.restart("authz")
    pipe = dri.authz.pipeline
    resumed = pipe.resumed
    assert resumed == len(uids)  # every journalled intent was resumed
    for s in ("tokens", "ssh", "tunnels", "compute"):
        pipe.unstick(s)
    dri.clock.advance(CFG.retry_interval + 0.1)
    stats = ttr_stats(finished(dri, uids))
    assert not pipe.pending_intents()
    assert survivors(dri, uids) == 0
    return {"stats": stats, "survivors": survivors(dri, uids),
            "note": f"{resumed} intents resumed from the outbox"}


def arm_pdp_down(seed: int):
    """PDP partitioned away: admission fails closed, revocation works."""
    dri, uids = onboard(seed)
    guard = dri.authz.guard
    outage = CFG.staleness_bound + 20.0
    dri.faults.pdp_down(restore_after=outage)

    # within the bound: surfaces still admit on the last good heartbeat
    dri.clock.advance(CFG.staleness_bound - 1.0)
    resp = dri.workflows.mint(dri.workflows.personas["res0"],
                              "jupyter", "researcher")
    assert resp.ok
    stale_allows = guard.stale_allows
    assert stale_allows >= 1

    # past the bound: every guarded admission path denies
    dri.clock.advance(2.0)
    denied_before = guard.fail_closed_denials
    resp = dri.workflows.mint(dri.workflows.personas["res0"],
                              "jupyter", "researcher")
    assert not resp.ok and resp.status == 403
    acct = dri.authz.registry.graph.accounts_of(uids[0])[0]
    ssh = dri.workflows.personas["res0"].ssh_client.ssh_direct(acct)
    assert ssh.status != 200
    denials = guard.fail_closed_denials - denied_before
    assert denials >= 2  # mint + ssh both failed closed, not stale-allowed

    # revocation needs no PDP: teardown completes mid-outage
    for uid in uids:
        dri.authz.pipeline.revoke(uid=uid, reason="abl12-pdp-down",
                                  by="bench")
    stats = ttr_stats(finished(dri, uids))
    assert survivors(dri, uids) == 0

    # heal: the restore hook re-heartbeats and admission resumes
    dri.clock.advance(outage)
    resp = dri.workflows.mint(dri.workflows.personas["alice"],
                              "portal", "pi")
    assert resp.ok
    return {"stats": stats, "survivors": 0,
            "note": (f"{denials} fail-closed denials past bound, "
                     f"{stale_allows} stale allows within it")}


def arm_stuck(seed: int):
    """One enforcement surface wedges; TTR ≤ D + retry_interval."""
    dri, uids = onboard(seed)
    dri.faults.teardown_stuck("compute", duration=STUCK_FOR)
    for uid in uids:
        dri.authz.pipeline.revoke(uid=uid, reason="abl12-stuck", by="bench")
    assert dri.authz.pipeline.pending_intents()  # compute arm is wedged
    dri.clock.advance(STUCK_FOR + CFG.retry_interval + 0.1)
    stats = ttr_stats(finished(dri, uids))
    assert stats["p99"] <= STUCK_FOR + CFG.retry_interval + 0.5
    assert not dri.authz.pipeline.pending_intents()
    assert survivors(dri, uids) == 0
    return {"stats": stats, "survivors": 0,
            "note": f"compute wedged {STUCK_FOR:.0f}s, retried to done"}


def arm_storm(seed: int):
    """N× duplicate revocations coalesce onto one teardown each."""
    dri, uids = onboard(seed)
    pipe = dri.authz.pipeline
    # wedge one surface so intents stay pending long enough to coalesce
    dri.faults.teardown_stuck("tokens", duration=STUCK_FOR)
    identities = dri.authz.registry.identities_with_live_grants()
    storm = STORM_MULT * len(identities)
    dri.faults.revocation_storm(storm)
    assert pipe.revocations <= len(identities)
    coalesced = pipe.storms_coalesced
    assert coalesced == storm - pipe.revocations
    dri.clock.advance(STUCK_FOR + CFG.retry_interval + 0.1)
    stats = ttr_stats(finished(dri, uids))
    assert not pipe.pending_intents()
    assert dri.authz.registry.identities_with_live_grants() == []
    assert survivors(dri, uids) == 0
    return {"stats": stats, "survivors": 0,
            "note": (f"{storm} requests -> {pipe.revocations} teardowns "
                     f"({coalesced} coalesced)")}


# ----------------------------------------------------------------------
def test_ablation_authz(benchmark, report):
    arms = [
        ("baseline", arm_baseline, 120),
        ("crash mid-revocation", arm_crash, 121),
        ("pdp down (partition)", arm_pdp_down, 122),
        ("teardown stuck", arm_stuck, 123),
        ("revocation storm", arm_storm, 124),
    ]
    rows = []
    results = {}
    for name, fn, seed in arms:
        if name == "baseline":
            out = benchmark.pedantic(fn, args=(seed,), rounds=1, iterations=1)
        else:
            out = fn(seed)
        results[name] = out
        s = out["stats"]
        rows.append([
            name, str(s["n"]), f"{s['p50']:.3f}", f"{s['p99']:.3f}",
            f"{CFG.ttr_bound:.0f}", str(out["survivors"]), out["note"],
        ])

    # cross-arm shape: the no-fault TTR is (near-)instant, the stuck arm
    # is dominated by the wedge + retry, and no arm leaks a session
    assert results["baseline"]["stats"]["p99"] < 1.0
    assert results["teardown stuck"]["stats"]["p99"] >= STUCK_FOR
    assert all(out["survivors"] == 0 for out in results.values())

    report("ablation_authz", format_table(
        ["arm", "intents", "TTR p50 (s)", "TTR p99 (s)", "bound (s)",
         "surviving sessions", "notes"],
        rows,
        title=(f"ABL12: time-to-revoke across 4 enforcement surfaces, "
               f"{N_RESEARCHERS} researchers with live sessions per arm"),
    ))
