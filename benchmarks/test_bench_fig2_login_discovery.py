"""FIG2 — reproduce Fig. 2: the login page and identity-provider discovery.

Fig. 2 shows the provider-choice page: "University Login (MyAccessID)"
for most researchers, an identity of last resort, a team/admin option,
and the policy links.  The bench renders exactly that, plus MyAccessID's
own institution-discovery table with the assurance filter that eduGAIN
lacks (§II.B).
"""

import pytest

from repro.core import build_isambard
from repro.core.metrics import format_table
from repro.net import OperatingDomain, Zone
from repro.oidc import UserAgent, make_url


@pytest.fixture(scope="module")
def dri():
    return build_isambard(seed=2)


def test_fig2_login_page(dri, benchmark, report):
    agent = UserAgent("fig2-laptop")
    dri.network.attach(agent, OperatingDomain.EXTERNAL, Zone.INTERNET)

    resp = benchmark(lambda: agent.get(make_url("broker", "/login"))[0])
    assert resp.ok
    providers = resp.body["providers"]
    assert {p["kind"] for p in providers} == {"federated", "lastresort", "admin"}
    assert resp.body["terms_acceptance_required"] is True
    for link in ("privacy_policy", "terms_of_use", "help", "contact"):
        assert link in resp.body["links"]

    disco, _ = agent.get(make_url("myaccessid", "/discovery"))
    assert disco.ok
    by_entity = {c["entity_id"]: c for c in disco.body["idps"]}
    # the assurance policy filters the webshop IdP out (no R&S, low LoA)
    assert by_entity["https://idp.webshop.example"]["acceptable"] is False
    assert by_entity["https://idp.bristol.ac.uk"]["acceptable"] is True

    report("fig2_login_discovery", "\n\n".join([
        format_table(
            ["option", "kind"],
            [[p["label"], p["kind"]] for p in providers],
            title="FIG2a: login page provider choices (cf. paper Fig. 2)",
        ),
        format_table(
            ["link", "target"],
            sorted(resp.body["links"].items()),
            title="FIG2b: policy links on the login page",
        ),
        format_table(
            ["institution", "federation", "acceptable (R&S + LoA policy)"],
            [[c["display_name"], c["federation"],
              "yes" if c["acceptable"] else "no"]
             for c in disco.body["idps"]],
            title="FIG2c: MyAccessID discovery service",
        ),
    ]))
