"""PERF — control-plane throughput microbenchmarks (real wall-clock).

Not a paper artefact: these measure this implementation's hot paths with
pytest-benchmark's real timers, per the HPC-Python guidance (measure
first; optimise what the profile shows).  The rows give a baseline for
anyone extending the library — e.g. how many token validations per
second one simulated relying party can sustain.
"""

import pytest

from repro.broker import RbacTokenValidator, Role, TokenService
from repro.clock import SimClock
from repro.core import build_isambard
from repro.crypto import JwkSet, encode_jwt
from repro.crypto.keys import generate_signing_key
from repro.ids import IdFactory
from repro.net import Firewall, OperatingDomain, Zone
from repro.core.deployment import _open_fig1_flows


@pytest.fixture(scope="module")
def key():
    return generate_signing_key("EdDSA", kid="perf")


def test_perf_jwt_sign(benchmark, key):
    claims = {"iss": "i", "sub": "s", "aud": "a", "exp": 10**9, "iat": 0}
    token = benchmark(encode_jwt, claims, key)
    assert token.count(".") == 2


def test_perf_jwt_validate(benchmark, key):
    from repro.crypto import JwtValidator

    clock = SimClock()
    claims = {"iss": "i", "sub": "s", "aud": "a", "exp": 10**9, "iat": 0}
    token = encode_jwt(claims, key)
    validator = JwtValidator(clock, "i", "a", JwkSet([key.public()]))
    out = benchmark(validator.validate, token)
    assert out["sub"] == "s"


def test_perf_rbac_mint_and_validate(benchmark, key):
    clock = SimClock()
    service = TokenService(clock, IdFactory(1), key, "iss")
    validator = RbacTokenValidator(
        clock, "iss", "aud", JwkSet([key.public()]), service.is_revoked
    )

    def mint_validate():
        token, _ = service.mint("alice", "aud", Role.RESEARCHER)
        return validator.validate(token)

    claims = benchmark(mint_validate)
    assert claims["role"] == "researcher"


def test_perf_firewall_evaluation(benchmark):
    fw = Firewall()
    _open_fig1_flows(fw)

    def evaluate_sweep():
        allowed = 0
        for port in (22, 443):
            for src in OperatingDomain:
                for dst in OperatingDomain:
                    if fw.evaluate(src, Zone.ACCESS, dst, Zone.HPC, port):
                        allowed += 1
        return allowed

    assert benchmark(evaluate_sweep) >= 1


def test_perf_full_federated_login(benchmark):
    """One complete SSO round (IdP -> MyAccessID -> broker), amortised:
    each iteration is a fresh user on a shared deployment."""
    dri = build_isambard(seed=99)
    dri.workflows.story1_pi_onboarding("seed-user")  # warm the paths
    counter = [0]

    def one_login():
        counter[0] += 1
        name = f"perf{counter[0]:04d}"
        persona = dri.workflows.create_researcher(name)
        resp = dri.workflows.login(persona)
        assert resp.status in (200, 403)  # 403: no role (expected)
        return resp.status

    benchmark.pedantic(one_login, rounds=20, iterations=1)
