"""FIG1 — reproduce Fig. 1: domains, zones, services and permitted flows.

The bench builds the full deployment, prints the architecture inventory
(one row per service, grouped by domain/zone) and the inter-domain flow
matrix, and asserts the six §III design principles as machine-checkable
properties.  ``benchmark`` times the full deployment construction.
"""

from collections import defaultdict

import pytest

from repro.core import build_isambard
from repro.core.metrics import format_table
from repro.net import OperatingDomain, Zone

PROBE_FLOWS = [
    # (src, dst, port, expected) — the edges Fig. 1 draws (or refuses)
    ("laptop", "broker", 443, True),
    ("laptop", "portal", 443, True),
    ("laptop", "bastion", 22, True),
    ("laptop", "tailnet", 443, True),
    ("laptop", "login-node", 22, False),
    ("laptop", "login-node", 443, False),
    ("laptop", "mgmt-node", 443, False),
    ("laptop", "jupyter", 443, False),
    ("laptop", "soc", 443, False),
    ("bastion", "login-node", 22, True),
    ("bastion", "mgmt-node", 443, False),
    ("broker", "myaccessid", 443, True),
    ("broker", "login-node", 443, False),
    ("zenith-client", "zenith", 443, True),
    ("jupyter", "broker", 443, True),
    ("tailnet", "mgmt-node", 443, True),
    ("log-shipper", "soc", 443, True),
    ("soc", "broker", 443, False),
    ("login-node", "mgmt-node", 443, False),
]


def test_fig1_architecture(benchmark, report):
    dri = benchmark.pedantic(build_isambard, kwargs={"seed": 1},
                             rounds=3, iterations=1)
    from repro.oidc import UserAgent

    agent = UserAgent("laptop")
    dri.network.attach(agent, OperatingDomain.EXTERNAL, Zone.INTERNET)

    # --- service inventory, grouped as the figure draws it ---------------
    groups = defaultdict(list)
    for ep in dri.network.endpoints():
        groups[(str(ep.domain), str(ep.zone))].append(ep.name)
    inventory_rows = [
        [domain.upper(), zone, ", ".join(sorted(names))]
        for (domain, zone), names in sorted(groups.items())
    ]

    # --- flow matrix -------------------------------------------------------
    flow_rows = []
    for src, dst, port, expected in PROBE_FLOWS:
        actual = dri.network.reachable(src, dst, port)
        flow_rows.append([
            f"{src} -> {dst}:{port}",
            "ALLOW" if actual else "DENY",
            "ok" if actual == expected else "MISMATCH",
        ])
        assert actual == expected, f"{src}->{dst}:{port}"

    # --- the six §III design principles ------------------------------------
    principles = []
    # 1. all access via short-lived RBAC tokens
    principles.append(("short-lived RBAC tokens everywhere",
                       dri.broker.tokens.max_ttl <= 3600))
    # 2. only the Access zone is internet-facing
    internet_reachable_zones = {
        str(dri.network.endpoint(dst).zone)
        for src, dst, port, expected in PROBE_FLOWS
        if src == "laptop" and dri.network.reachable(src, dst, port)
    }
    principles.append(("only Access/Management-coordination internet-facing",
                       internet_reachable_zones <= {"access", "management"}))
    # 3. management zone only via admin tailnet
    principles.append(("management zone unreachable except via tailnet relay",
                       not dri.network.reachable("laptop", "mgmt-node", 443)
                       and dri.network.reachable("tailnet", "mgmt-node", 443)))
    # 4. security zone separated from all others
    principles.append(("security zone isolated (logs in, nothing out)",
                       not dri.network.reachable("soc", "broker", 443)
                       and dri.network.reachable("log-shipper", "soc", 443)))
    # 5. open protocols: OIDC discovery served
    from repro.net.http import HttpRequest

    disco = dri.broker.handle(HttpRequest("GET", "/.well-known/openid-configuration"))
    principles.append(("open protocols (OIDC discovery document)", disco.ok))
    # 6. default deny
    principles.append(("default-deny segmentation",
                       dri.network.firewall.segmented))
    for name, ok in principles:
        assert ok, name

    report("fig1_architecture", "\n\n".join([
        format_table(["domain", "zone", "services"], inventory_rows,
                     title="FIG1a: service inventory (cf. paper Fig. 1)"),
        format_table(["flow", "decision", "matches Fig.1"], flow_rows,
                     title="FIG1b: segmentation flow matrix"),
        format_table(["design principle (III)", "holds"],
                     [[n, "yes" if ok else "NO"] for n, ok in principles],
                     title="FIG1c: design principles"),
    ]))
