"""US1 — user story 1: allocator creates a project; PI is invited and joins.

Reproduces §IV.A.1 including both its branches (PI via the MyAccessID
federation, and via the identity of last resort when the institution is
outside it), the authorisation-led-registration denial, and time-limited
revocation.  ``benchmark`` times the full story end-to-end on a fresh
deployment.
"""

import pytest

from repro.core import build_isambard
from repro.core.metrics import format_table


def run_story(via: str, seed: int):
    dri = build_isambard(seed=seed)
    result = dri.workflows.story1_pi_onboarding(
        "pi-user", via=via, project_name=f"proj-{via}"
    )
    return dri, result


def test_story1_pi_onboarding(benchmark, report):
    dri, federated = benchmark.pedantic(
        run_story, args=("myaccessid", 3), rounds=3, iterations=1
    )
    assert federated.ok, federated.steps

    # branch 2: the PI's institution is not in the federation
    dri2, lastresort = run_story("lastresort", 4)
    assert lastresort.ok, lastresort.steps

    # negative control: authorisation leads registration
    stranger = dri.workflows.create_researcher("stranger")
    denied = dri.workflows.login(stranger)
    assert denied.status == 403

    # expiry: access revoked, information removed from the authz list
    dri3 = build_isambard(seed=5)
    short = dri3.workflows.story1_pi_onboarding("brief", duration=3600.0)
    assert short.ok
    dri3.clock.advance(3700)
    relogin = dri3.workflows.relogin(dri3.workflows.personas["brief"])
    assert relogin.status == 403

    rows = [
        ["PI via MyAccessID federation", "joined", federated.data["unix_account"]],
        ["PI via identity of last resort", "joined", lastresort.data["unix_account"]],
        ["identity with no role/invitation", "DENIED at registration", "-"],
        ["PI after project expiry", "DENIED (authz removed)", "-"],
    ]
    steps = "\n".join(f"  {i+1}. {s}" for i, s in enumerate(federated.steps))
    report("story1_pi_onboarding",
           format_table(["scenario", "outcome", "unix account"], rows,
                        title="US1: project owner / PI onboarding (§IV.A.1)")
           + "\n\nfederated-branch steps:\n" + steps)
