"""ABL13 — decision provenance + bounded telemetry under surge.

The telemetry pipeline (PR 9) has two jobs that pull in opposite
directions: keep observability storage *bounded* while a surge is
flooding it, and *never* lose the signals a post-mortem needs — the
error/shed/expired traces, the trace behind a containment revocation,
and the provenance record explaining every live grant and every
refusal.  A 2000-operation traced surge (introspections + mints +
queue submissions) runs while a gray replica (+500 ms), a brownout
(p=0.08) and a shedding queue inject faults mid-window and a SOC
containment revokes a victim token, and two arms compare:

* **unbounded** — the PR-4 telemetry: every span retained forever,
  every label set its own metric series.  Nothing is lost, and nothing
  bounds the growth: span count and series count scale with offered
  load — the cardinality explosion the pipeline exists to prevent;
* **bounded** — tail-based retention: protected statuses (ERROR /
  SHED / EXPIRED) and pinned revocation traces are kept at 100%, the
  slowest-k per window and a 5% hash sample represent the healthy
  traffic, everything else folds into RED rollups; per-family
  cardinality budgets fold runaway label sets into ``__overflow__``.

Both arms carry the provenance ledger, so the bench's core oracle runs
on each: after the surge, ``explain()`` returns the matched rule (or
refusal grounds) and decision inputs for every live grant in the
session registry and for every denial taken.

Latency is not measured here — the arms are compared on *retention*:
what survived, what was dropped, and whether anything that matters was
lost.  ``ABL13_QUICK=1`` shrinks the surge for CI smoke runs.
"""

import os

from repro.core import build_isambard
from repro.core.metrics import format_table
from repro.errors import (
    AttemptTimeout,
    DeadlineExceeded,
    NetworkError,
    RateLimited,
    ReproError,
    ServiceUnavailable,
)
from repro.net import (
    HttpRequest,
    HttpResponse,
    OperatingDomain,
    Service,
    Zone,
    route,
)
from repro.telemetry import PipelineConfig

QUICK = os.environ.get("ABL13_QUICK") == "1"
N_OPS = 240 if QUICK else 2000
ARRIVAL_RATE = 250.0            # offered operations per sim second
MAX_SPANS = 480 if QUICK else 2400
MAX_DECISIONS = 128 if QUICK else 256
MINT_EVERY = 10                 # every Nth op exercises the tokens surface
DENY_EVERY = 50                 # every Nth op is a refused privilege grab
QUEUE_EVERY = 5                 # every Nth op goes to the shedding queue
ARM_EVERY = 7                   # fault-window ops with a per-attempt bound
SLOW_EXTRA = 0.5                # the gray replica's per-message penalty
BROWNOUT_P = 0.08               # per-message connect-failure probability
SERIES_BUDGET = 8               # cardinality budget on the bench family

BOUNDED = PipelineConfig(
    max_spans=MAX_SPANS, target_fill=0.8, window=60.0, slowest_k=3,
    sample_rate=0.05, max_decisions=MAX_DECISIONS)


class FloodQueue(Service):
    """A work queue that sheds every third submission — the
    deterministic RateLimited source for the SHED retention class."""

    def __init__(self) -> None:
        super().__init__("floodqueue")
        self.submissions = 0

    @route("POST", "/enqueue")
    def enqueue(self, request: HttpRequest) -> HttpResponse:
        self.submissions += 1
        if self.submissions % 3 == 0:
            raise RateLimited("queue full", retry_after=0.5,
                              service="floodqueue", priority="batch")
        return HttpResponse.json({"queued": self.submissions})


def pipeline_surge(seed: int, bounded: bool):
    """One arm: the traced surge with faults and a mid-run containment
    revocation, against the bounded pipeline or the unbounded PR-4
    telemetry."""
    dri = build_isambard(seed=seed, authz=True,
                         pipeline=BOUNDED if bounded else False)
    wf, clock, tele = dri.workflows, dri.clock, dri.telemetry
    store = tele.store

    # --- warmup: grants on every surface, a victim token to contain ----
    s1 = wf.story1_pi_onboarding("trainer", project_name="pipe-proj")
    assert s1.ok, s1.steps
    project_id = str(s1.data["project_id"])
    personas = []
    for i in range(2 if QUICK else 4):
        name = f"user{i:02d}"
        clock.advance(0.5)
        assert wf.story3_researcher_setup(project_id, "trainer", name).ok
        personas.append(wf.personas[name])
    assert wf.story4_ssh_session(personas[0].name).ok
    app_tokens = []
    for i in range(4 if QUICK else 8):
        token, rec = dri.broker.tokens.mint(
            f"app{i:02d}", "jupyter", "researcher", ttl=3600.0)
        app_tokens.append((token, rec))
    victim_token, victim = app_tokens[0]

    probe = Service("probe")
    dri.network.attach(probe, OperatingDomain.FDS, Zone.ACCESS)
    queue = FloodQueue()
    dri.network.attach(queue, OperatingDomain.FDS, Zone.ACCESS)

    # the high-cardinality family the budget defends against: one label
    # set per operation (a request-id-shaped label, the classic mistake)
    ops_meter = tele.registry.counter(
        "repro_bench_op_total", "Per-operation label pressure",
        max_series=SERIES_BUDGET if bounded else None)

    # --- surge: traced ops with a mid-window fault + containment --------
    t0 = clock.now()
    fault_op, restore_op = N_OPS // 4, (3 * N_OPS) // 4
    active_faults = []
    containment_trace = ""
    counts = {"offered": 0, "ok": 0, "denied": 0, "shed": 0,
              "expired": 0, "fail": 0}
    must_keep = set()       # traces holding ERROR/SHED/EXPIRED spans

    for i in range(N_OPS):
        arrival = t0 + i / ARRIVAL_RATE
        if clock.now() < arrival:
            clock.advance(arrival - clock.now())

        if i == fault_op:
            active_faults.append(
                dri.faults.slow_replica("broker", SLOW_EXTRA))
            active_faults.append(
                dri.faults.brownout("broker", BROWNOUT_P))
            # SOC containment: the revocation is itself a traced action,
            # and its trace must survive retention for the post-mortem
            cont = tele.tracer.start_trace("soc.containment", service="soc")
            assert dri.broker.tokens.revoke_jti(
                victim.jti, trace_id=cont.trace_id)
            tele.tracer.end(cont)
            containment_trace = cont.trace_id
        elif i == restore_op:
            for fault in active_faults:
                fault.clear()

        counts["offered"] += 1
        ops_meter.inc(op=f"op-{i:04d}")

        if i % MINT_EVERY == MINT_EVERY - 1:
            persona = personas[(i // MINT_EVERY) % len(personas)]
            try:
                resp = wf.mint(persona, "jupyter", "researcher",
                               project=project_id)
            except (NetworkError, ReproError):
                counts["fail"] += 1
            else:
                counts["ok" if resp.ok else "denied"] += 1
            continue
        if i % DENY_EVERY == 17:
            persona = personas[i % len(personas)]
            try:
                resp = wf.mint(persona, "portal", "pi")
            except (NetworkError, ReproError):
                counts["fail"] += 1
            else:
                assert not resp.ok      # researchers never hold the PI role
                counts["denied"] += 1
            continue

        # a traced transport op: a root span, a client span per call,
        # a server span per hop
        root = tele.tracer.start_trace(f"op {i:04d}", service="probe")
        if i % QUEUE_EVERY == 3:
            req = HttpRequest("POST", "/enqueue", body={"job": i},
                              source="probe")
            dst = "floodqueue"
        else:
            token = app_tokens[i % len(app_tokens)][0]
            req = HttpRequest("POST", "/introspect", body={"token": token},
                              source="probe")
            dst = "broker"
        root.context().inject(req.headers)
        if fault_op <= i < restore_op and dst == "broker" \
                and i % ARM_EVERY == 0:
            # a per-attempt bound the gray replica cannot meet: the
            # attempt is abandoned pre-delivery (EXPIRED span)
            req.attempt_deadline = clock.now() + 0.05
        try:
            probe.call(dst, req)
        except RateLimited as exc:
            counts["shed"] += 1
            must_keep.add(root.trace_id)
            tele.tracer.end(root, error=exc)
        except (AttemptTimeout, DeadlineExceeded) as exc:
            counts["expired"] += 1
            must_keep.add(root.trace_id)
            tele.tracer.end(root, error=exc)
        except (NetworkError, ReproError) as exc:
            counts["fail"] += 1
            must_keep.add(root.trace_id)
            tele.tracer.end(root, error=exc)
        else:
            counts["ok"] += 1
            tele.tracer.end(root)

    dri.ship_logs()
    led = tele.provenance

    # --- the retention oracle: what survived the surge ------------------
    kept = sum(1 for tid in must_keep if store.has_trace(tid))
    series = len(ops_meter.series())
    spans_started = len(store)
    if bounded:
        spans_started += store.stats()["evicted_spans"]
    out = {
        "dri": dri,
        "counts": counts,
        "spans_started": spans_started,
        "spans_retained": len(store),
        "must_keep": len(must_keep),
        "must_keep_kept": kept,
        "containment_trace": containment_trace,
        "series": series,
        "dropped_labels": tele.registry.dropped_labels(),
        "ledger": led.stats(),
    }
    if bounded:
        out["store"] = store.stats()
    out["fingerprint"] = (
        tuple(sorted(counts.items())), round(clock.now(), 9),
        out["spans_retained"], tuple(sorted(must_keep)),
        series, out["dropped_labels"],
        out["ledger"]["recorded"], out["ledger"]["retained"],
        tuple(sorted((k, tuple(sorted(v.items())))
                     for k, v in out["ledger"]["decisions"].items())),
    )
    return out


def _assert_explained(dri) -> int:
    """The ledger answers for every live grant and every denial; returns
    the number of live grants it explained."""
    led, reg = dri.telemetry.provenance, dri.authz.registry
    explained = 0
    for grant in reg.live_grants():
        identity = reg.graph.uid_of(grant.spiffe_id) or grant.spiffe_id
        records = led.explain(identity) or led.explain(grant.spiffe_id)
        assert records, f"live grant for {identity} has no provenance"
        explained += 1
    for uid in (p.broker_sub for p in dri.workflows.personas.values()):
        rec = led.grant_record(uid, "tokens")
        if rec is None:
            continue
        # a grant's explanation names the matched rule and its inputs
        assert rec.rule.startswith("role:")
        assert rec.pack_version == dri.policy_engine.pack_version
        assert rec.attrs.get("role")
    for rec in led.denials():
        assert rec.rule or rec.reason, f"unexplained denial: {rec}"
    return explained


def test_ablation_telemetry_pipeline(benchmark, report):
    unbounded = pipeline_surge(1300, bounded=False)
    bounded = benchmark.pedantic(pipeline_surge, args=(1300,),
                                 kwargs={"bounded": True},
                                 rounds=1, iterations=1)

    # --- sanity: the surge actually exercised every retention class ----
    for run_ in (unbounded, bounded):
        c = run_["counts"]
        assert c["shed"] > 0 and c["expired"] > 0 and c["fail"] > 0
        # a few privilege grabs are lost to the brownout, not refused
        assert c["denied"] >= (N_OPS // DENY_EVERY) * 3 // 4
        assert c["ok"] > 0.6 * c["offered"]

    # (a) the headline: bounded retention holds the span budget under a
    #     surge the unbounded store absorbs linearly.  Both arms saw the
    #     same traffic, so they created the same spans — telemetry
    #     observes, it never changes behaviour
    assert bounded["spans_started"] == unbounded["spans_started"]
    assert unbounded["spans_retained"] > 1.5 * MAX_SPANS
    assert bounded["spans_retained"] <= MAX_SPANS
    assert bounded["store"]["compactions"] > 0
    assert bounded["store"]["rolled_up"] == bounded["store"]["evicted_spans"]

    # (b) nothing that matters was lost: 100% of ERROR/SHED/EXPIRED
    #     traces and the containment revocation's trace survive
    assert bounded["must_keep"] > 0
    assert bounded["must_keep_kept"] == bounded["must_keep"]
    store = bounded["dri"].telemetry.store
    assert store.has_trace(bounded["containment_trace"])
    assert bounded["containment_trace"] in store.protected_ids()

    # (c) cardinality: the per-op label family explodes unbudgeted but
    #     folds into __overflow__ under the budget, and the fold is
    #     metered honestly
    assert unbounded["series"] == N_OPS                 # one per op
    assert bounded["series"] <= SERIES_BUDGET + 1       # +__overflow__
    assert bounded["dropped_labels"] == N_OPS - SERIES_BUDGET

    # (d) provenance: every live grant and every denial is explained —
    #     in BOTH arms (the ledger pins what retention must not lose),
    #     and the ledger held its own budget while doing so
    explained_unbounded = _assert_explained(unbounded["dri"])
    explained = _assert_explained(bounded["dri"])
    assert explained > 0 and explained_unbounded > 0
    led = bounded["ledger"]
    assert led["retained"] <= MAX_DECISIONS + led["over_budget"]
    assert led["decisions"]["tokens"]["deny"] >= \
        (N_OPS // DENY_EVERY) * 3 // 4
    assert led["decisions"]["admission"]["shed"] == \
        bounded["counts"]["shed"]

    # (e) bit-for-bit reproducible from the seed
    assert pipeline_surge(1300, bounded=True)["fingerprint"] == \
        bounded["fingerprint"]

    def row(label, run_):
        c, led_ = run_["counts"], run_["ledger"]
        return [
            label, c["offered"], c["ok"], c["denied"],
            c["shed"], c["expired"], c["fail"],
            run_["spans_started"], run_["spans_retained"],
            f"{run_['must_keep_kept']}/{run_['must_keep']}",
            run_["series"], int(run_["dropped_labels"]),
            led_["recorded"], led_["retained"],
        ]

    report("ablation_telemetry_pipeline", format_table(
        ["arm", "offered", "ok", "denied", "shed", "expired", "failed",
         "spans started", "spans retained", "protected kept",
         "bench series", "labels folded", "decisions", "ledger retained"],
        [
            row("unbounded (PR-4)", unbounded),
            row("bounded pipeline", bounded),
        ],
        title=(f"ABL13: {N_OPS}-op traced surge with gray replica, "
               f"brownout and shedding queue mid-window; span budget "
               f"{MAX_SPANS}, ledger budget {MAX_DECISIONS}, "
               f"series budget {SERIES_BUDGET}"),
    ))
