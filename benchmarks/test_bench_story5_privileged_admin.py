"""US5 — user story 5: a system administrator performs a privileged operation.

Reproduces §IV.A.5: the four independent layers (admin IdP with hardware
MFA, tailnet enrolment, per-service RBAC token, management-node
enforcement), and shows that removing ANY single layer denies the
operation — "segmentation and ... policies at each level".
"""

import pytest

from repro.broker import Role
from repro.core import build_isambard
from repro.core.metrics import format_table
from repro.net.http import HttpRequest
from repro.oidc import make_url
from repro.tunnels.tailnet import NODE_HEADER


def run_story(seed: int):
    dri = build_isambard(seed=seed)
    result = dri.workflows.story5_privileged_operation(
        "ops1", operation="drain_node", target="gh-0001")
    return dri, result


def test_story5_privileged_admin(benchmark, report):
    dri, result = benchmark.pedantic(run_story, args=(12,), rounds=3, iterations=1)
    assert result.ok, result.steps
    wf = dri.workflows
    admin = wf.personas["ops1"]
    node_id = str(result.data["node_id"])
    mgmt_token = wf.mint(admin, "mgmt-node", Role.ADMIN_INFRA.value).body["token"]

    rows = [["all four layers present", "operation executed"]]

    # layer removed: no tailnet (direct network path)
    from repro.errors import ConnectionBlocked

    try:
        dri.network.request("ops1-laptop", "mgmt-node",
                            HttpRequest("POST", "/operate"), port=443)
        rows.append(["bypass tailnet (direct network)", "REACHED (wrong)"])
    except ConnectionBlocked:
        rows.append(["bypass tailnet (direct network)", "blocked by segmentation"])

    # layer removed: valid tailnet node but a researcher token
    dri.workflows.story1_pi_onboarding("pia")
    pia = wf.personas["pia"]
    pia_token = wf.mint(pia, "mgmt-node", "pi",
                        project=None)
    # a PI cannot even mint for the mgmt audience with an admin role;
    # try relaying with their *portal* token instead
    relay, _ = admin.agent.post(
        make_url("tailnet", "/relay"),
        {"node_id": node_id, "target": "mgmt-node", "port": 443,
         "request": {"method": "POST", "path": "/operate",
                     "headers": {},
                     "body": {"operation": "status", "target": ""}}},
    )
    rows.append(["tailnet ok, no RBAC token",
                 "denied by mgmt node" if relay.status == 403 else "ALLOWED (wrong)"])
    assert relay.status == 403

    # layer removed: valid token but unknown tailnet node
    relay2, _ = admin.agent.post(
        make_url("tailnet", "/relay"),
        {"node_id": "tnode-9999", "target": "mgmt-node", "port": 443,
         "request": {"method": "POST", "path": "/operate",
                     "headers": {"Authorization": f"Bearer {mgmt_token}"},
                     "body": {"operation": "status", "target": ""}}},
    )
    rows.append(["RBAC token ok, device not enrolled",
                 "denied by tailnet" if relay2.status == 403 else "ALLOWED (wrong)"])
    assert relay2.status == 403

    # layer removed: token header forged without the tailnet origin header
    direct = dri.mgmt_node.handle(HttpRequest(
        "POST", "/operate",
        headers={"Authorization": f"Bearer {mgmt_token}"},
        body={"operation": "status", "target": ""},
    ))
    rows.append(["RBAC token ok, not via tailnet relay",
                 "denied by mgmt node" if direct.status == 403 else "ALLOWED (wrong)"])
    assert direct.status == 403

    # expired tailnet key forces re-enrolment
    dri.clock.advance(dri.tailnet.key_ttl + 10)
    wf.relogin(admin)
    relay3, _ = admin.agent.post(
        make_url("tailnet", "/relay"),
        {"node_id": node_id, "target": "mgmt-node", "port": 443,
         "request": {"method": "POST", "path": "/operate",
                     "headers": {"Authorization": f"Bearer {mgmt_token}"},
                     "body": {"operation": "status", "target": ""}}},
    )
    rows.append(["tailnet node key expired (24h)",
                 "re-enrolment required" if relay3.status == 403 else "ALLOWED (wrong)"])

    steps = "\n".join(f"  {i+1}. {s}" for i, s in enumerate(result.steps))
    report("story5_privileged_admin",
           format_table(["scenario", "outcome"], rows,
                        title="US5: privileged admin operation (§IV.A.5)")
           + "\n\nlayers:\n" + steps)
