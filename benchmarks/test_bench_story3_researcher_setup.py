"""US3 — user story 3: a cluster user (researcher) sets up an account.

Reproduces §IV.A.3: PI-triggered invitation, fewer functions than a PI
(a researcher cannot invite), PI revocation removing authorisation, and
the de-affiliation rule ("authentication will fail if a user is no
longer affiliated with the organisational IdP").
"""

import pytest

from repro.core import build_isambard
from repro.core.metrics import format_table
from repro.oidc import make_url


def run_story(seed: int):
    dri = build_isambard(seed=seed)
    s1 = dri.workflows.story1_pi_onboarding("pi-eve")
    s3 = dri.workflows.story3_researcher_setup(
        s1.data["project_id"], "pi-eve", "res-bob")
    return dri, s1, s3


def test_story3_researcher_setup(benchmark, report):
    dri, s1, s3 = benchmark.pedantic(run_story, args=(8,), rounds=3, iterations=1)
    assert s3.ok, s3.steps
    project_id = s1.data["project_id"]
    wf = dri.workflows
    rows = [["invitation -> federated login -> acceptance", "ok",
             s3.data["unix_account"]]]

    # researcher has fewer functions: the invite route is out of reach
    bob = wf.personas["res-bob"]
    token = wf.mint(bob, "portal", "researcher", project=project_id).body["token"]
    attempt, _ = bob.agent.post(
        make_url("portal", "/invite"),
        {"project_id": project_id, "email": "carol@bristol.ac.uk"},
        headers={"Authorization": f"Bearer {token}"},
    )
    rows.append(["researcher invites another researcher",
                 "denied (no project.invite capability)" if attempt.status == 403
                 else "ALLOWED (wrong)", "-"])
    assert attempt.status == 403

    # PI revocation removes authorisation (and the unix account)
    pi = wf.personas["pi-eve"]
    pi_token = wf.mint(pi, "portal", "pi", project=project_id).body["token"]
    revoke, _ = pi.agent.post(
        make_url("portal", "/revoke_member"),
        {"project_id": project_id, "uid": bob.broker_sub},
        headers={"Authorization": f"Bearer {pi_token}"},
    )
    assert revoke.ok
    remint = wf.mint(bob, "login-node", "researcher", project=project_id)
    rows.append(["researcher after PI revocation",
                 "denied" if remint.status == 403 else "ALLOWED (wrong)", "-"])
    assert remint.status == 403
    assert dri.portal.unix_accounts.is_tombstoned(s3.data["unix_account"])

    # de-affiliation at the home IdP
    dri2, s1b, s3b = run_story(9)
    dri2.idps["idp-bristol"].deactivate_user("res-bob")
    bob2 = dri2.workflows.personas["res-bob"]
    bob2.agent.clear_cookies("broker")
    bob2.agent.clear_cookies("myaccessid")
    relogin = dri2.workflows.login(bob2)
    rows.append(["researcher de-affiliated at home IdP",
                 "authentication fails at the IdP" if relogin.status == 403
                 else "ALLOWED (wrong)", "-"])
    assert relogin.status == 403

    report("story3_researcher_setup",
           format_table(["scenario", "outcome", "unix account"], rows,
                        title="US3: researcher account setup (§IV.A.3)"))
