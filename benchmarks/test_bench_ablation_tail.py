"""ABL11 — tail tolerance under gray failure.

The tail-tolerance layer (PR 7) defends the latency tail against
*gray* failure: replicas and regions that are slow-but-alive and
therefore invisible to breakers, health checks and the replication-lag
watchdog.  A 2000-operation introspection+mint surge runs through the
geo-router while one broker replica turns gray (``slow_replica``,
+500 ms) and a whole region browns out (``gray_region``, +120 ms), and
five arms ablate the defences one at a time:

* **baseline** — resilience on, tail layer off: the gray replica and
  the gray region ride straight into the login p99;
* **+deadlines** — adaptive per-attempt timeouts (``clamp(k × p99)``)
  abandon gray attempts pre-delivery and fail over;
* **+hedging** — read-shaped requests speculate to a second replica
  after the p95-derived hedge delay, capped by the hedge budget;
* **+ejection** — per-replica latency EWMAs temporarily eject the gray
  replica, and the geo-router detours the gray *region* — before the
  lag watchdog (structurally blind to gray: replication stays on time)
  ever fires;
* **all on** — the composition the deployment ships.

Correctness oracles ride every arm: hedged introspections never
double-apply (the per-region mint journals contain zero duplicate
jtis), the ABL10 revocation staleness bound still holds, and each arm
is bit-for-bit reproducible from its seed.

Two measurement choices keep the arms comparable in a *serialized*
discrete-event simulation.  Latency is per-operation service time
(dispatch → completion on the sim clock), not time-since-offered-
arrival: the sim runs one operation at a time, so open-loop queueing
delay would measure the serialization artifact, not the system.  And
the fault window opens and closes on *operation index* (25%–75% of the
surge) rather than sim time: a gray arm whose slow calls race the
clock forward would otherwise see the fault expire after a handful of
operations while a defended arm sits in it for thousands.

A separate pair of **retry-storm** arms hammers a browned-out broker
through a resilience kit with the retry budget off vs. on: the budget
caps the retry amplification (attempts per call) and the refusals it
audits drive the SOC's ``retry-storm`` detection.

``ABL11_QUICK=1`` shrinks the surge for CI smoke runs.
"""

import os
import random

from repro.core import build_isambard
from repro.core.metrics import format_table, latency_stats
from repro.errors import (
    NetworkError,
    RateLimited,
    ReproError,
    ServiceUnavailable,
)
from repro.net import OperatingDomain, Service, Zone
from repro.net.http import HttpRequest
from repro.region import RegionConfig
from repro.resilience import Resilience, RetryPolicy, TailConfig

QUICK = os.environ.get("ABL11_QUICK") == "1"
N_OPS = 240 if QUICK else 2000
ARRIVAL_RATE = 250.0            # offered operations per sim second
N_PERSONAS = 2 if QUICK else 4
N_APP_TOKENS = 4 if QUICK else 8
MINT_EVERY = 10                 # every Nth op is a mint (journal oracle)
N_STORM = 80 if QUICK else 200  # probe calls in the retry-storm arms

CFG = RegionConfig()            # eu/us, 5 s staleness bound
BOUND = CFG.staleness_bound
SLOW_EXTRA = 0.5                # the gray replica's per-message penalty
GRAY_EXTRA = 0.12               # the gray region's per-message penalty

ARMS = {
    "baseline": False,
    "deadlines": TailConfig(hedging=False, ejection=False,
                            retry_budget=False),
    "hedge": TailConfig(adaptive_deadlines=False, ejection=False,
                        retry_budget=False),
    "eject": TailConfig(adaptive_deadlines=False, hedging=False,
                        retry_budget=False),
    "all": TailConfig(),
}


def _lb_totals(dri):
    out = {"hedges": 0, "hedge_wins": 0, "attempt_timeouts": 0,
           "ejections": 0, "budget_ok": True}
    for region in dri.region_directory.regions():
        lb = region.lb
        out["hedges"] += lb.hedges
        out["hedge_wins"] += lb.hedge_wins
        out["attempt_timeouts"] += lb.attempt_timeouts
        if lb.ejector is not None:
            out["ejections"] += lb.ejector.ejections
        if lb.hedge_budget is not None:
            out["budget_ok"] = out["budget_ok"] and (
                lb.hedges <= lb.hedge_budget.ratio
                * lb.hedge_budget.calls + 1)
    return out


def _fingerprint(dri, counts, latencies):
    lbs = tuple(
        (r.name, r.lb.routed, r.lb.failovers, r.lb.hedges,
         r.lb.hedge_wins, r.lb.attempt_timeouts,
         r.lb.ejector.ejections if r.lb.ejector is not None else 0)
        for r in dri.region_directory.regions())
    return (
        tuple(sorted(counts.items())),
        tuple(round(l, 9) for l in latencies),
        round(dri.clock.now(), 9),
        lbs,
        tuple(r.minted for r in dri.region_directory.regions()),
        (dri.geo_router.routed, dri.geo_router.reroutes,
         dri.geo_router.gray_detours, dri.geo_router.exhausted),
    )


def tail_surge(seed: int, arm: str):
    """One arm: the ABL10-shaped surge with a gray replica + gray region
    injected mid-run and one tail defence configuration active."""
    dri = build_isambard(seed=seed, regions=True, resilience=True,
                         tail=ARMS[arm])
    wf, clock = dri.workflows, dri.clock

    # --- warmup: onboard the mint cohort, mint app tokens, feed the
    # latency trackers past min_samples so the quantile-derived bounds
    # are armed before the fault lands -----------------------------------
    s1 = wf.story1_pi_onboarding("trainer", project_name="tail-proj")
    assert s1.ok, s1.steps
    project_id = str(s1.data["project_id"])
    personas = []
    for i in range(N_PERSONAS):
        name = f"user{i:02d}"
        clock.advance(0.5)
        assert wf.story3_researcher_setup(project_id, "trainer", name).ok
        personas.append(wf.personas[name])
    app_tokens = []
    for i in range(N_APP_TOKENS):
        token, rec = dri.broker.tokens.mint(
            f"app{i:02d}", "jupyter", "researcher", ttl=3600.0)
        app_tokens.append((token, rec))
    clients = [f"client-{i:02d}" for i in range(8)]
    for i, client in enumerate(clients):
        dri.geo_router.pin(client, CFG.names[i % len(CFG.names)])
    victim_token, victim = app_tokens[0]
    for round_ in range(6):          # 24 successful samples per region LB
        token = app_tokens[round_ % N_APP_TOKENS][0]
        for client in clients:
            dri.geo_router.handle(HttpRequest(
                "POST", "/introspect", body={"token": token},
                source=client))
    clock.advance(0.5)

    # --- fault schedule: gray replica + gray region mid-surge ------------
    t0 = clock.now()
    fault_op, restore_op = N_OPS // 4, (3 * N_OPS) // 4
    active_faults = []
    revoked_at = None

    counts = {"offered": 0, "ok": 0, "denied": 0, "refused": 0, "fail": 0}
    latencies = []

    for i in range(N_OPS):
        arrival = t0 + i / ARRIVAL_RATE
        if clock.now() < arrival:
            clock.advance(arrival - clock.now())

        if i == fault_op:
            # one eu replica turns gray; the whole us region browns out.
            # Nothing hard-fails: breakers, health checks and the lag
            # watchdog all stay green
            active_faults.append(
                dri.faults.slow_replica("broker-eu-r1", SLOW_EXTRA))
            active_faults.extend(
                dri.faults.gray_region("us", GRAY_EXTRA))
            # ABL10 regression oracle: revoke mid-fault, the staleness
            # bound must hold with every tail defence active
            dri.broker.tokens.revoke_jti(victim.jti)
            revoked_at = clock.now()
        elif i == restore_op:
            for fault in active_faults:
                fault.clear()

        counts["offered"] += 1
        op_start = clock.now()
        client = clients[(i + i // N_APP_TOKENS) % len(clients)]
        try:
            if i % MINT_EVERY == MINT_EVERY - 1:
                persona = personas[(i // MINT_EVERY) % len(personas)]
                resp = wf.mint(persona, "jupyter", "researcher",
                               project=project_id)
            else:
                token = app_tokens[i % len(app_tokens)][0]
                resp = dri.geo_router.handle(HttpRequest(
                    "POST", "/introspect", body={"token": token},
                    source=client))
        except (ServiceUnavailable, RateLimited):
            counts["refused"] += 1
        except (NetworkError, ReproError):
            counts["fail"] += 1
        else:
            if resp.ok:
                counts["ok"] += 1
            else:
                counts["denied"] += 1
            latencies.append(clock.now() - op_start)

    dri.ship_logs()

    mint_jtis = []
    for name in CFG.names:
        journal = dri.durability.stream(f"region-{name}")
        mint_jtis += [str(e.data["jti"]) for e in journal.load()[1]
                      if e.kind == "region.mint"]
    stale_serves = [
        e.time for e in dri.logs["fds"].query()
        if e.action == "region.introspect"
        and e.attrs.get("jti") == victim.jti and e.attrs.get("active")
        and revoked_at is not None and e.time > revoked_at
    ]
    return {
        "dri": dri,
        "counts": counts,
        "stats": latency_stats(latencies),
        "lb": _lb_totals(dri),
        "gray_detours": dri.geo_router.gray_detours,
        "reroutes": dri.geo_router.reroutes,
        "lag_breaches": dri.region_directory.lag_breaches,
        "revoked_at": revoked_at,
        "stale_serves": stale_serves,
        "mint_jtis": mint_jtis,
        "fingerprint": _fingerprint(dri, counts, latencies),
    }


def retry_storm(seed: int, guarded: bool):
    """One storm arm: a *naive* probe client — retries but no circuit
    breaker, the canonical retry-storm source — hammers the browned-out
    broker, with the retry budget off vs. on.  (A breaker would
    short-circuit the storm at the client; the budget is the defence
    for the clients that don't have one.)"""
    cfg = (TailConfig(adaptive_deadlines=False, hedging=False,
                      ejection=False) if guarded else False)
    dri = build_isambard(seed=seed, regions=True, resilience=True,
                         tail=cfg)
    probe = Service("probe")
    dri.network.attach(probe, OperatingDomain.FDS, Zone.ACCESS)
    probe.resilience = Resilience(
        "probe", dri.clock, random.Random(seed + 7),
        policy=RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0))
    # share the deployment's tail controller so budget refusals are
    # audited into the SIEM pipeline (None when the tail layer is off)
    probe.resilience.tail = dri.resilience.tail_controller
    dri.faults.brownout("broker", 0.85)
    outcomes = {"served": 0, "refused": 0}
    for _ in range(N_STORM):
        try:
            probe.call("broker", HttpRequest(
                "POST", "/introspect", body={"token": "junk"}))
        except (ServiceUnavailable, RateLimited):
            outcomes["refused"] += 1
        else:
            outcomes["served"] += 1
    m = probe.resilience.metrics
    dri.ship_logs()
    return {
        "outcomes": outcomes,
        "calls": m.calls,
        "attempts": m.attempts,
        "amplification": m.attempts / m.calls,
        "budget_refusals": m.budget_exhausted,
        "alerts": {a.rule for a in dri.soc.alerts},
    }


def test_ablation_tail(benchmark, report):
    baseline = tail_surge(1100, "baseline")
    deadlines = tail_surge(1101, "deadlines")
    hedge = tail_surge(1102, "hedge")
    eject = tail_surge(1103, "eject")
    allon = benchmark.pedantic(tail_surge, args=(1104, "all"),
                               rounds=1, iterations=1)
    storm_off = retry_storm(1105, guarded=False)
    storm_on = retry_storm(1105, guarded=True)

    # --- sanity: every arm keeps serving through the gray window --------
    for run_ in (baseline, deadlines, hedge, eject, allon):
        c = run_["counts"]
        assert c["fail"] == 0
        assert c["ok"] + c["denied"] > 0.9 * c["offered"]

    # (a) the headline: with every defence on, the gray replica and the
    #     gray region are cut out of the login path — the p99 collapses
    #     versus the undefended baseline riding the +500 ms replica
    assert baseline["stats"]["p99"] >= SLOW_EXTRA  # the gray tail is real
    assert allon["stats"]["p99"] < baseline["stats"]["p99"]
    assert allon["stats"]["p99"] < 0.5 * baseline["stats"]["p99"]

    # (b) each ablated defence leaves its signature
    assert deadlines["lb"]["attempt_timeouts"] > 0
    assert hedge["lb"]["hedges"] > 0
    assert hedge["lb"]["hedge_wins"] > 0
    assert eject["lb"]["ejections"] > 0
    assert allon["lb"]["hedges"] > 0
    assert allon["lb"]["ejections"] > 0
    assert baseline["lb"]["hedges"] == 0
    assert baseline["lb"]["ejections"] == 0
    # hedges never exceed the configured budget fraction (+1 grace)
    assert hedge["lb"]["budget_ok"] and allon["lb"]["budget_ok"]

    # (c) the gray REGION is detoured by latency scoring, not by the lag
    #     watchdog — a browning-out region replicates on time, so the
    #     watchdog is structurally blind to it and must never fire
    for run_ in (eject, allon):
        assert run_["gray_detours"] > 0
        assert run_["reroutes"] > 0
    for run_ in (baseline, deadlines, hedge, eject, allon):
        assert run_["lag_breaches"] == 0

    # (d) correctness under speculation: hedged introspections never
    #     double-apply — zero duplicate jtis in the region mint journals
    #     — and the ABL10 revocation staleness bound holds with every
    #     defence active
    for run_ in (baseline, deadlines, hedge, eject, allon):
        assert len(run_["mint_jtis"]) == len(set(run_["mint_jtis"]))
        if run_["stale_serves"]:
            assert max(run_["stale_serves"]) <= run_["revoked_at"] + BOUND

    # (e) retry storm: the budget caps amplification (attempts per call)
    #     and the audited refusals drive the SOC detection
    assert storm_off["amplification"] > 2.0      # unguarded retries amplify
    assert storm_on["amplification"] < 1.5       # the budget caps the storm
    assert storm_on["amplification"] < 0.6 * storm_off["amplification"]
    assert storm_on["budget_refusals"] > 0
    assert "retry-storm" in storm_on["alerts"]
    assert "retry-storm" not in storm_off["alerts"]

    # (f) bit-for-bit reproducible from the seed
    assert tail_surge(1104, "all")["fingerprint"] == allon["fingerprint"]

    def row(label, run_):
        c, s, lb = run_["counts"], run_["stats"], run_["lb"]
        return [
            label, c["offered"], c["ok"], c["refused"] + c["fail"],
            f"{s['p50'] * 1000:.1f}" if s["n"] else "-",
            f"{s['p99'] * 1000:.1f}" if s["n"] else "-",
            lb["hedges"], lb["hedge_wins"], lb["attempt_timeouts"],
            lb["ejections"], run_["gray_detours"], run_["lag_breaches"],
            len(run_["mint_jtis"]),
            len(run_["mint_jtis"]) - len(set(run_["mint_jtis"])),
        ]

    storm_rows = [
        ["storm unguarded", storm_off["calls"], storm_off["attempts"],
         f"{storm_off['amplification']:.2f}",
         storm_off["budget_refusals"],
         "yes" if "retry-storm" in storm_off["alerts"] else "no"],
        ["storm + budget", storm_on["calls"], storm_on["attempts"],
         f"{storm_on['amplification']:.2f}",
         storm_on["budget_refusals"],
         "yes" if "retry-storm" in storm_on["alerts"] else "no"],
    ]

    report("ablation_tail", format_table(
        ["arm", "offered", "served", "lost", "p50 (sim ms)", "p99 (sim ms)",
         "hedges", "hedge wins", "attempt timeouts", "ejections",
         "gray detours", "lag breaches", "mints journaled",
         "double-issued"],
        [
            row("baseline", baseline),
            row("+adaptive deadlines", deadlines),
            row("+hedging", hedge),
            row("+ejection", eject),
            row("all on", allon),
        ],
        title=(f"ABL11: {N_OPS}-op surge ({ARRIVAL_RATE:.0f}/s) with a "
               f"+{SLOW_EXTRA * 1000:.0f}ms gray replica and a "
               f"+{GRAY_EXTRA * 1000:.0f}ms gray region mid-run"),
    ) + "\n" + format_table(
        ["arm", "calls", "attempts", "amplification", "budget refusals",
         "SOC retry-storm alert"],
        storm_rows,
        title=(f"ABL11 storm: {N_STORM} probe calls against a browned-out "
               f"broker (p=0.85)"),
    ))
