"""ABL2 — the token-lifetime trade-off the paper balances (§II.C).

"A balanced approach is taken to enforce re-authentication and
re-authorization as per the policy ... balancing security, availability,
usability".  The ablation sweeps the RBAC TTL and measures both sides:

* security — how long a stolen (exfiltrated) token keeps working;
* usability — how many re-authentications an 8-hour working day costs.

Expected shape: the attacker window grows linearly with TTL while the
re-auth burden falls as 1/TTL — the table makes the crossover visible,
bracketing the paper's choice of minutes-scale tokens.
"""

import pytest

from repro.core import ThreatModel, build_isambard
from repro.core.metrics import format_table

TTLS = (60.0, 300.0, 900.0, 3600.0)
WORKDAY = 8 * 3600.0


def window_for_ttl(ttl: float, seed: int) -> float:
    dri = build_isambard(seed=seed, rbac_default_ttl=ttl, rbac_max_ttl=ttl)
    s1 = dri.workflows.story1_pi_onboarding("kai")
    kai = dri.workflows.personas["kai"]
    token = dri.workflows.mint(
        kai, "jupyter", "pi", project=s1.data["project_id"]).body["token"]
    tm = ThreatModel(dri)
    return tm.stolen_token_window(token, "jupyter",
                                  probe_interval=max(ttl / 20, 5.0))


def test_ablation_token_ttl(benchmark, report):
    windows = {}
    for i, ttl in enumerate(TTLS):
        if ttl == 900.0:
            windows[ttl] = benchmark.pedantic(
                window_for_ttl, args=(900.0, 41), rounds=1, iterations=1)
        else:
            windows[ttl] = window_for_ttl(ttl, seed=50 + i)

    rows = []
    for ttl in TTLS:
        window = windows[ttl]
        reauths = WORKDAY / ttl
        rows.append([
            f"{ttl:.0f}",
            f"{window:.0f}",
            f"{reauths:.0f}",
            f"{window / TTLS[0]:.1f}x" if ttl != TTLS[0] else "1.0x",
        ])

    # shape: window monotonically increases with TTL; bounded by TTL+slack
    ordered = [windows[t] for t in TTLS]
    assert all(a <= b for a, b in zip(ordered, ordered[1:]))
    for ttl in TTLS:
        assert windows[ttl] <= ttl + ttl / 10 + 10

    # revocation beats expiry at any TTL: a revoked token dies immediately
    dri = build_isambard(seed=60, rbac_default_ttl=3600)
    s1 = dri.workflows.story1_pi_onboarding("lena")
    lena = dri.workflows.personas["lena"]
    minted = dri.workflows.mint(lena, "jupyter", "pi",
                                project=s1.data["project_id"]).body
    dri.broker.tokens.revoke_jti(str(minted["jti"]))
    tm = ThreatModel(dri)
    revoked_window = tm.stolen_token_window(str(minted["token"]), "jupyter",
                                            probe_interval=5)
    assert revoked_window == 0.0

    report("ablation_token_ttl", format_table(
        ["token TTL (s)", "stolen-token window (s)",
         "re-auths per 8h day", "attacker window vs 60s"],
        rows,
        title="ABL2: short-lived tokens — security/usability trade-off "
              "(revoked token window: 0s at any TTL)",
    ))
