"""Shared plumbing for the benchmark harness.

Every bench regenerates one paper artefact (figure, user story, scale
claim or ablation).  The printed/saved tables are the reproduction
output: compare their *shape* with the paper (who wins, what is denied,
where the crossover falls) rather than absolute timings — the substrate
is a simulator, not the authors' testbed.

Tables are written to ``benchmarks/results/<id>.txt`` and echoed to
stdout (visible with ``pytest -s``).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def report():
    """Save + echo one bench's reproduction table."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _report
