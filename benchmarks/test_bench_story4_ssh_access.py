"""US4 — user story 4: a cluster user connects via SSH to the AI platform.

Reproduces §IV.A.4: certificate client + login flow + CA signing, the
short validity window forcing re-issue, per-project UNIX usernames, the
transparent ProxyJump, and that the only path is through the bastion.
"""

import pytest

from repro.core import build_isambard
from repro.core.metrics import format_table
from repro.errors import ConnectionBlocked
from repro.net.http import HttpRequest


def run_story(seed: int):
    dri = build_isambard(seed=seed, ssh_cert_ttl=1800.0)
    s1 = dri.workflows.story1_pi_onboarding("hana")
    s4 = dri.workflows.story4_ssh_session("hana")
    return dri, s1, s4


def test_story4_ssh_access(benchmark, report):
    dri, s1, s4 = benchmark.pedantic(run_story, args=(10,), rounds=3, iterations=1)
    assert s4.ok, s4.steps
    wf = dri.workflows
    hana = wf.personas["hana"]
    rows = [["certificate flow + ProxyJump login", "ok",
             s4.data["principal"]]]

    # a second project -> a second unix account and alias (ZTA per-project)
    s1b = wf.story1_pi_onboarding("hana", project_name="proj-second")
    wf.relogin(hana)
    cert2 = hana.ssh_client.request_certificate()
    assert cert2.ok and len(cert2.body["principals"]) == 2
    rows.append(["second project", "second principal + alias",
                 ", ".join(cert2.body["principals"])])

    # certificate expiry forces re-issue
    dri.clock.advance(1900)
    expired = hana.ssh_client.ssh(sorted(hana.ssh_client.ssh_config)[0])
    rows.append(["SSH after certificate expiry",
                 "denied; new certificate required" if expired.status == 403
                 else "ALLOWED (wrong)", "-"])
    assert expired.status == 403
    wf.relogin(hana)
    reissued = hana.ssh_client.request_certificate()
    retry = hana.ssh_client.ssh(sorted(hana.ssh_client.ssh_config)[0])
    rows.append(["after re-issuing the certificate", "ok",
                 retry.body.get("principal", "-")])
    assert reissued.ok and retry.ok

    # wrong principal on a valid certificate
    stolen = hana.ssh_client.ssh_direct("root")
    rows.append(["valid certificate, principal 'root'",
                 "denied" if stolen.status == 403 else "ALLOWED (wrong)", "-"])

    # no path that bypasses the bastion
    try:
        dri.network.request("hana-laptop", "login-node",
                            HttpRequest("POST", "/session"), port=22)
        rows.append(["direct laptop -> login node", "REACHED (wrong)", "-"])
    except ConnectionBlocked:
        rows.append(["direct laptop -> login node",
                     "blocked by segmentation", "-"])

    steps = "\n".join(f"  {i+1}. {s}" for i, s in enumerate(s4.steps))
    report("story4_ssh_access",
           format_table(["scenario", "outcome", "principal(s)"], rows,
                        title="US4: SSH to the AI platform (§IV.A.4)")
           + "\n\nsteps:\n" + steps)
