"""ABL3 — the externally managed kill switch: time to containment.

§III.B motivates the kill switch with speed: intervention "without
waiting for a direct intervention from the Isambard team".  The ablation
measures time-to-containment for a brute-force attacker as a function of
the log-forwarding interval, compares auto-containment against a
human-in-the-loop baseline (no auto-contain), and times the emergency
stop.  Expected shape: containment time is dominated by the forwarding
interval; without the kill switch the attacker runs for the whole
observation window.
"""

import pytest

from repro.core import ThreatModel, build_isambard
from repro.core.metrics import format_table

INTERVALS = (1.0, 5.0, 30.0)
OBSERVATION = 600.0


def containment_for_interval(interval: float, seed: int, *, auto: bool = True):
    dri = build_isambard(seed=seed, forward_interval=interval,
                         auto_contain=auto)
    tm = ThreatModel(dri)
    t = tm.containment_time(attack_rate=1.0, max_time=OBSERVATION)
    return dri, t


def test_ablation_killswitch(benchmark, report):
    rows = []
    times = {}
    for i, interval in enumerate(INTERVALS):
        if interval == 5.0:
            dri, t = benchmark.pedantic(
                containment_for_interval, args=(5.0, 71),
                rounds=1, iterations=1)
        else:
            dri, t = containment_for_interval(interval, seed=70 + i)
        times[interval] = t
        rows.append([f"{interval:.0f}", "auto (SOC kill switch)",
                     f"{t:.1f}" if t is not None else f">{OBSERVATION:.0f}"])
        assert t is not None

    # no kill switch: the attacker is never contained in the window
    dri_manual, t_manual = containment_for_interval(5.0, seed=75, auto=False)
    rows.append(["5", "none (awaiting human intervention)",
                 f">{OBSERVATION:.0f} (never, in observation window)"])
    assert t_manual is None

    # shape: faster shipping -> faster containment (within one interval)
    assert times[1.0] <= times[5.0] <= times[30.0]
    for interval in INTERVALS:
        assert times[interval] <= interval + 15  # detection adds seconds

    # containment severs *everything* the principal has
    dri2 = build_isambard(seed=76)
    s1 = dri2.workflows.story1_pi_onboarding("mallory")
    dri2.workflows.story4_ssh_session("mallory")
    dri2.workflows.story6_jupyter("mallory")
    account = s1.data["unix_account"]
    record = dri2.killswitch.contain_user(account)
    sub = dri2.workflows.personas["mallory"].broker_sub
    record2 = dri2.killswitch.contain_user(sub)
    severed_rows = [
        [lever, str(record.details.get(lever)), str(record2.details.get(lever))]
        for lever in sorted(record.details)
    ]
    assert not [s for s in dri2.login_sshd.sessions()
                if s.principal == account]
    assert not [s for s in dri2.jupyter.sessions() if s.subject == sub]

    # emergency stop is instantaneous and total
    t0 = dri2.clock.now()
    stop = dri2.killswitch.emergency_stop()
    emergency_rows = [[", ".join(stop.details["services"]),
                       f"{stop.time - t0:.3f}"]]
    assert dri2.bastion.service_killed and dri2.tailnet.tailnet_killed
    dri2.killswitch.restore()

    report("ablation_killswitch", "\n\n".join([
        format_table(["log-forwarding interval (s)", "containment mode",
                      "time to containment (s)"], rows,
                     title="ABL3a: brute-force attacker, detection to containment"),
        format_table(["lever", f"contain({account})", f"contain({sub[:20]}...)"],
                     severed_rows,
                     title="ABL3b: what one containment severs"),
        format_table(["services stopped", "elapsed (s)"], emergency_rows,
                     title="ABL3c: emergency stop of the whole front door"),
    ]))
