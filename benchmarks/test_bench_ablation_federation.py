"""ABL14 — the national federation: 1M+ users, 10k IdPs, one semester.

The paper's infrastructure serves *national* research federations —
eduGAIN aggregates >8000 IdPs and MyAccessID's registry is sized for
every researcher in Europe — yet the repo's original scale headline was
a 45-user workshop.  This bench drives the federation directory
(`repro.federation.directory`) at national scale through a simulated
semester and reports what the sharded tier guarantees:

* **onboarding**: 1M+ users register through batched waves onto the
  consistent-hash account shards — zero cross-shard uid collisions,
  one WAL entry per shard per wave (not one per user);
* **metadata supply chain**: 10k IdPs arrive via signed registrar
  delta feeds; weekly republish cycles keep validity windows fresh and
  ~1%/week key-rotation churn lands as version bumps;
* **feed outage → fail closed**: one federation's registrar goes
  silent for three weeks; its entries serve until the 14-day validity
  window lapses, then logins through them are *denied stale* (never
  validated against possibly rotated keys) until the registrar
  recovers and republishes;
* **rebalancing**: a shard added mid-semester migrates exactly the
  remapped keys while lookups stay correct and bounded — p99 during
  migration ≤ 2× the steady-state probe cost (one fallback probe);
* **shard loss**: a downed shard fails its key range closed while the
  rest of the ring serves; a crashed shard recovers bit-identically
  from its own journal.

``ABL14_QUICK=1`` shrinks the federation (20k users, 400 IdPs, 6
weeks) for CI smoke runs.  Simulated time: only directory probe costs
and network hops — the latency columns count protocol work, not CPU.
"""

import os

from repro.core import build_isambard
from repro.core.metrics import format_table, latency_stats
from repro.errors import MetadataStale, ShardUnavailable
from repro.federation.assurance import LevelOfAssurance
from repro.federation.directory import DirectoryConfig, MetadataFeed
from repro.federation.myaccessid import LinkedIdentity

QUICK = os.environ.get("ABL14_QUICK") == "1"

N_USERS = 20_000 if QUICK else 1_000_000
N_IDPS = 400 if QUICK else 10_000
N_FEEDS = 4 if QUICK else 20
WEEKS = 6 if QUICK else 18
WAVE = 10_000 if QUICK else 50_000
SAMPLE = 500 if QUICK else 2_000        # login probes per weekly sample
OUTAGE_START = 2 if QUICK else 8        # feed-00 silent from this week...
OUTAGE_WEEKS = 3 if QUICK else 3        # ...for this many weeks
ROTATIONS_PER_WEEK = max(2, N_IDPS // 100)   # ~1% weekly key churn

WEEK = 7 * 86400.0
VALIDITY = 14 * 86400.0

CONFIG = DirectoryConfig(account_shards=8, metadata_shards=4,
                         feed_validity=VALIDITY)


def _entity(i: int) -> str:
    return f"https://idp-{i:05d}.example"


def _feed_of(i: int) -> int:
    return i % N_FEEDS


def _populate_feeds(dri):
    """10k synthetic IdPs across N_FEEDS federation registrars.

    Entries use opaque verifier tokens (the store vaults them by kid,
    exactly as it vaults live keys) — minting 10k real Ed25519 keypairs
    would measure OpenSSL, not the directory.
    """
    feeds = []
    for f in range(N_FEEDS):
        feed = MetadataFeed(f"feed-{f:02d}", dri.clock, valid_for=VALIDITY)
        dri.directory.ingestor.register_feed(feed)
        feeds.append(feed)
    for i in range(N_IDPS):
        feeds[_feed_of(i)].add(
            entity_id=_entity(i), endpoint_name=f"idp-{i:05d}",
            display_name=f"IdP {i:05d}", loa=LevelOfAssurance.CAPPUCCINO,
            categories=(), verifier=f"vk-{i:05d}-g1", version=1)
    for feed in feeds:
        feed.flush()
    return feeds


def _onboard(dri):
    """Register N_USERS in batched waves; every user belongs to one of
    the feed IdPs (spread round-robin)."""
    reg = dri.directory.accounts
    uids = []
    for start in range(0, N_USERS, WAVE):
        wave = [
            {"entity_id": _entity(i % N_IDPS), "sub": f"sub-{i:07d}",
             "display_name": f"user-{i:07d}", "email": f"u{i:07d}@x.example",
             "loa": int(LevelOfAssurance.CAPPUCCINO)}
            for i in range(start, min(start + WAVE, N_USERS))
        ]
        uids.extend(reg.register_batch(wave, now=dri.clock.now()))
    return uids


def _sample_logins(dri, week: int):
    """One weekly login cohort: metadata fetch + account resolution for
    a deterministic user sample.  Counts stale fail-closed denials and
    collects the directory's recorded probe latencies."""
    store = dri.directory.metadata
    reg = dri.directory.accounts
    reg.reset_lookup_stats()
    store.reset_lookup_stats()
    stale = down = ok = 0
    for k in range(SAMPLE):
        i = (week * 40_013 + k * 9_973) % N_USERS
        ident = LinkedIdentity(_entity(i % N_IDPS), f"sub-{i:07d}")
        try:
            store.get(ident.entity_id)
            account = reg.find(ident)
            assert account is not None
            ok += 1
        except MetadataStale:
            stale += 1
        except ShardUnavailable:
            down += 1
    return {"ok": ok, "stale": stale, "down": down,
            "latencies": list(reg.lookup_latencies)}


def test_ablation_national_federation(report):
    dri = build_isambard(directory=CONFIG, durability=True)
    d = dri.directory
    reg, store, ing = d.accounts, d.metadata, d.ingestor

    # --- phase A: metadata supply chain + bulk onboarding ---------------
    feeds = _populate_feeds(dri)
    ing.poll()
    assert len(store) == N_IDPS + len(dri.idps)  # + the bilateral anchors
    uids = _onboard(dri)
    assert len(uids) == N_USERS
    assert len(set(uids)) == N_USERS, "cross-shard uid collision"
    # batched WAL: onboarding cost O(waves × shards) journal entries,
    # never one per user
    waves = (N_USERS + WAVE - 1) // WAVE
    total_appends = sum(
        dri.durability.stream(f"dir-{n}").appends for n in reg.shards)
    assert total_appends <= 2 * waves * len(reg.shards) + len(reg.shards)

    # the full federated login dance stays green on the sharded tiers
    wf = dri.workflows
    assert wf.story1_pi_onboarding("pi", project_name="abl14-proj").ok

    # --- phase B: the semester -----------------------------------------
    # feed-00's registrar goes silent; validity (14d) outlasts the first
    # outage week, then its IdPs fail closed until the week-after heal
    dri.faults.metadata_feed_stale(
        feeds[0].name, at=OUTAGE_START * WEEK,
        duration=OUTAGE_WEEKS * WEEK)

    rows = []
    stale_total = 0
    migration_stats = None
    add_week = WEEKS // 2
    for week in range(1, WEEKS + 1):
        dri.clock.advance(WEEK)
        # registrar churn: ~1% of IdPs rotate keys (version bump); the
        # silent registrar stages but cannot publish
        for r in range(ROTATIONS_PER_WEEK):
            i = (week * 104_729 + r * 7_919) % N_IDPS
            gen = week + 1
            feeds[_feed_of(i)].rotate(_entity(i), f"vk-{i:05d}-g{gen}")
        for feed in feeds:
            if not feed.down:
                feed.republish()
        ing.poll()

        if week == add_week:
            # rebalance under load: one more account shard mid-semester
            mig = reg.add_shard(f"acct-{CONFIG.account_shards:02d}")
            assert mig is not None
            reg.reset_lookup_stats()
            step_lat = []
            k = 0
            while not mig.done:
                mig.step(batch=CONFIG.migration_batch)
                for _ in range(20):  # interleave lookups with the moves
                    i = (k * 6_151) % N_USERS
                    k += 1
                    reg.find(LinkedIdentity(_entity(i % N_IDPS),
                                            f"sub-{i:07d}"))
                step_lat.extend(reg.lookup_latencies)
                reg.reset_lookup_stats()
            mig_stats = latency_stats(step_lat)
            assert mig_stats["max"] <= 2 * reg.probe_cost + 1e-12, \
                "mid-migration lookup exceeded one fallback probe"
            migration_stats = (mig.total, mig_stats)

        sample = _sample_logins(dri, week)
        stale_total += sample["stale"]
        lat = latency_stats(sample["latencies"])
        rows.append([
            week,
            f"{len(store) - store.expired_count()}/{len(store)}",
            f"{ing.feed_age(feeds[0].name) / 86400.0:.0f}d",
            f"{sample['ok']}/{SAMPLE}",
            sample["stale"],
            f"{lat['p99'] * 1000:.2f}",
            "rebalance" if week == add_week else
            ("outage" if feeds[0].down else ""),
        ])

    # the outage produced real fail-closed denials once validity lapsed,
    # and the heal + republish cleared them
    assert stale_total > 0, "feed outage never aged past validity"
    assert rows[-1][4] == 0, "stale denials persisted after registrar heal"
    assert ing.rejected_deltas == 0 and ing.failed_polls >= OUTAGE_WEEKS - 1

    # --- phase C: shard loss + crash recovery ---------------------------
    victim = sorted(reg.shards)[3]
    dri.faults.shard_down("accounts", victim)
    denied = served = 0
    for k in range(SAMPLE):
        i = (k * 12_289) % N_USERS
        try:
            reg.find(LinkedIdentity(_entity(i % N_IDPS), f"sub-{i:07d}"))
            served += 1
        except ShardUnavailable:
            denied += 1
    reg.shard_up(victim)
    assert denied > 0 and served > 0, "shard loss must fail only its range"

    state_before = reg.shards[victim].state_hash()
    dri.crash(f"dir-{victim}")
    recovery = dri.restart(f"dir-{victim}")
    assert reg.shards[victim].state_hash() == state_before

    # --- final invariants: the headline claim ---------------------------
    inv = d.verify_invariants()
    assert inv["accounts"]["accounts"] >= N_USERS
    steady = latency_stats(
        _sample_logins(dri, WEEKS + 1)["latencies"])

    table = format_table(
        ["week", "fresh/total IdPs", "feed-00 age", "logins ok",
         "stale denials", "lookup p99 (sim ms)", "event"],
        rows,
        title=(f"ABL14: national federation — {N_USERS:,} users, "
               f"{N_IDPS:,} IdPs over {N_FEEDS} feeds, {WEEKS}-week "
               f"semester{' (QUICK)' if QUICK else ''}"),
    )
    mig_total, mig_lat = migration_stats
    summary = format_table(
        ["claim", "value"],
        [
            ["accounts registered", f"{inv['accounts']['accounts']:,}"],
            ["cross-shard uid collisions", 0],
            ["identity links resolved", f"{inv['accounts']['links']:,}"],
            ["metadata entities", f"{inv['metadata']['entities']:,}"],
            ["feed deltas applied / rejected",
             f"{ing.applied_deltas} / {ing.rejected_deltas}"],
            ["stale logins denied closed (semester)", stale_total],
            ["keys migrated by mid-semester rebalance", f"{mig_total:,}"],
            ["lookup p99 during migration (sim ms)",
             f"{mig_lat['p99'] * 1000:.2f} (bound {2 * reg.probe_cost * 1000:.2f})"],
            ["steady-state lookup p99 (sim ms)",
             f"{steady['p99'] * 1000:.2f}"],
            ["shard-down denials (fail closed)", denied],
            ["crashed shard journal replay entries",
             recovery.entries_replayed],
        ],
        title="ABL14 summary: acceptance claims",
    )
    report("abl14_national_federation", table + "\n\n" + summary)
