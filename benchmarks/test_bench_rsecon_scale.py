"""SCALE — §IV.B: the RSECon24 workshop, 45 simultaneous Jupyter users.

The paper's single quantitative datapoint: "45 trainees logging in and
running notebooks simultaneously".  By default this now runs as a
*smoke test* — just the paper's N=45 cohort — because the scale
headline moved to ABL14 (``test_bench_ablation_federation.py``: 1M+
users, 10k IdPs on the sharded federation directory).  Set
``RSECON_FULL=1`` to sweep the historical cohort sizes (1, 15, 45, 90)
with the full success-rate/latency table.

ABL9 (second bench in this file) takes the same control plane past the
workshop scale: a 2000-user login+app surge at ~10× one broker's
admitted capacity, swept over replica count (1/2/4/8 workers behind the
deterministic load balancer) × distributed caching on/off.  It measures
what the scale-out subsystem buys (monotonically falling loss and p99
as replicas grow; a ≥10× cut in upstream introspection round-trips from
caching + single-flight coalescing) and demos the metric-driven
autoscaler growing the pool mid-surge.  ``ABL9_QUICK=1`` shrinks the
sweep for CI smoke runs.
"""

import dataclasses
import os

import pytest

from repro.broker.rbac import Role
from repro.core import build_isambard
from repro.core.metrics import format_table, latency_stats
from repro.errors import DeadlineExceeded, NetworkError, RateLimited
from repro.net.http import HttpRequest
from repro.resilience import OverloadConfig
from repro.scale import ScaleConfig
from repro.telemetry import critical_path_breakdown
from repro.tunnels.zenith import TOKEN_HEADER

# demoted to a smoke test: only the paper's 45-user cohort by default
# (ABL14's national-federation bench is the scale headline now);
# RSECON_FULL=1 restores the historical sweep
RSECON_FULL = os.environ.get("RSECON_FULL") == "1"
COHORTS = (1, 15, 45, 90) if RSECON_FULL else (45,)


def slowest_login_breakdown(dri, result) -> str:
    """Critical-path table for the slowest login of the cohort.

    The p99 cell in the scale table says *how slow*; this says *where
    the time went* — per-hop self time down the longest span chain of
    the worst trace, straight from the telemetry store.
    """
    latencies = result.data["latencies"]
    trace_ids = result.data.get("trace_ids") or []
    if not latencies or dri.telemetry is None:
        return ""
    slowest = max(range(len(latencies)), key=lambda i: latencies[i])
    trace_id = trace_ids[slowest] if slowest < len(trace_ids) else None
    if not trace_id:
        return ""
    steps = critical_path_breakdown(dri.telemetry.store, trace_id)
    rows = [
        [s.name, s.service, s.kind, s.status,
         f"{s.duration * 1000:.1f}", f"{s.self_time * 1000:.1f}",
         f"{s.share:.1%}"]
        for s in steps
    ]
    return format_table(
        ["span", "service", "kind", "status",
         "total (sim ms)", "self (sim ms)", "share"],
        rows,
        title=(f"CRITICAL PATH: slowest login "
               f"({latencies[slowest] * 1000:.1f} sim ms, "
               f"trace {trace_id})"),
    )


def run_workshop(n: int, seed: int):
    dri = build_isambard(seed=seed)
    return dri, dri.workflows.rsecon_workshop(n)


def test_rsecon_scale(benchmark, report):
    rows = []
    paper_row = None
    breakdown = ""
    for n in COHORTS:
        if n == 45:
            dri, result = benchmark.pedantic(
                run_workshop, args=(45, 45), rounds=1, iterations=1)
            paper_row = result
            breakdown = slowest_login_breakdown(dri, result)
        else:
            dri, result = run_workshop(n, seed=100 + n)
        stats = latency_stats(result.data["latencies"],
                              result.data.get("trace_ids"))
        rows.append([
            n,
            f"{n - result.data['failures']}/{n}",
            result.data["live_sessions"],
            f"{stats['p50'] * 1000:.1f}",
            f"{stats['p95'] * 1000:.1f}",
            f"{stats['p99'] * 1000:.1f}",
            f"{dri.pool.utilisation():.1%}",
        ])
        if n <= 45:
            assert result.ok, result.steps

    assert paper_row is not None and paper_row.ok
    assert paper_row.data["live_sessions"] >= 45
    assert breakdown, "45-login cohort should yield a traced critical path"

    table = format_table(
        ["trainees", "logins ok", "live notebooks",
         "login+spawn p50 (sim ms)", "p95 (sim ms)", "p99 (sim ms)",
         "cluster util"],
        rows,
        title="SCALE: RSECon24 workshop reproduction (§IV.B; paper ran N=45)",
    )
    report("rsecon_scale", table + "\n\n" + breakdown)


# ======================================================================
# ABL9 — replica-count × cache on/off at a 2000-user surge
# ======================================================================
QUICK = os.environ.get("ABL9_QUICK") == "1"
REPLICAS = (1, 4) if QUICK else (1, 2, 4, 8)
N_SURGE = 240 if QUICK else 2000
ARRIVAL_RATE = 1200.0           # offered operations per sim second
LOGIN_BUDGET = 5.0              # interactive patience (sim s)
N_PERSONAS = 12 if QUICK else 24
N_APP_TOKENS = 4 if QUICK else 8  # long-lived tokens driving app traffic

# Each replica carries its own 50 req/s admission bucket, so pool
# capacity is replicas × 50/s against an effective broker demand of
# ~250/s — the sweep crosses from 5× overloaded (1 replica) through
# the break-even point to fully provisioned (8 replicas, 400/s).
BROKER_CONFIG = dataclasses.replace(
    OverloadConfig(),
    broker=dataclasses.replace(OverloadConfig().broker,
                               rate=50.0, burst=10.0),
    aimd_initial_rate=400.0,
    aimd_min_rate=50.0,
)


def scale_surge(replicas: int, caching: bool, seed: int,
                *, autoscale: bool = False):
    """One arm: a mixed login (80%) + authenticated-app (20%) surge.

    App operations present a reused RBAC token at the Jupyter
    authenticator, whose introspection round-trip rides the broker pool
    — the traffic the distributed cache amortises.
    """
    cfg = ScaleConfig(broker_replicas=replicas, caching=caching,
                      max_replicas=max(replicas, 8),
                      autoscale=autoscale,
                      autoscale_interval=N_SURGE / ARRIVAL_RATE / 12.0)
    dri = build_isambard(seed=seed, overload=BROKER_CONFIG, scale=cfg)
    if autoscale:
        dri.autoscaler.loss_up = 0.02
    wf, clock = dri.workflows, dri.clock

    # --- warmup (uncontended): onboard the cohort ----------------------
    s1 = wf.story1_pi_onboarding("trainer", project_name="scale-proj",
                                 gpu_hours=1e6)
    assert s1.ok, s1.steps
    project_id = str(s1.data["project_id"])
    personas = []
    for i in range(N_PERSONAS):
        name = f"user{i:02d}"
        clock.advance(1.0)  # pace onboarding under the tight buckets
        assert wf.story3_researcher_setup(project_id, "trainer", name).ok
        personas.append(wf.personas[name])
    app_tokens = [
        dri.broker.tokens.mint(f"app{i:02d}", "jupyter", Role.RESEARCHER)[0]
        for i in range(N_APP_TOKENS)
    ]
    clock.advance(1.0)
    introspections0 = dri.broker.introspections
    jwks_serves0 = dri.myaccessid.jwks_serves

    # --- the surge -----------------------------------------------------
    t0 = clock.now()
    counts = {"offered": 0, "ok": 0, "shed": 0, "expired": 0, "fail": 0}
    latencies = []
    for i in range(N_SURGE):
        arrival = t0 + i / ARRIVAL_RATE
        if clock.now() < arrival:
            clock.advance(arrival - clock.now())
        counts["offered"] += 1

        if i % 5 == 4:  # 20%: authenticated app access (introspection path)
            token = app_tokens[(i // 5) % len(app_tokens)]
            try:
                resp = dri.jupyter.handle(
                    HttpRequest("GET", "/", headers={TOKEN_HEADER: token}))
            except RateLimited:
                counts["shed"] += 1
            except DeadlineExceeded:
                counts["expired"] += 1
            except NetworkError:
                counts["fail"] += 1
            else:
                if resp.ok:
                    counts["ok"] += 1
                    latencies.append(clock.now() - arrival)
                elif resp.body.get("error_type") == "RateLimited":
                    counts["shed"] += 1
                elif resp.body.get("error_type") == "DeadlineExceeded":
                    counts["expired"] += 1
                else:
                    counts["fail"] += 1
            continue

        p = personas[i % len(personas)]  # 80%: interactive relogin
        p.agent.deadline = arrival + LOGIN_BUDGET
        try:
            if wf.relogin(p).ok:
                counts["ok"] += 1
                latencies.append(clock.now() - arrival)
            else:
                counts["fail"] += 1
        except DeadlineExceeded:
            counts["expired"] += 1
        except RateLimited:
            counts["shed"] += 1
        except NetworkError:
            counts["fail"] += 1
        finally:
            p.agent.deadline = None

    tc = dri.caches.get("token-decisions")
    fingerprint = (tuple(sorted(counts.items())),
                   tuple(round(l, 9) for l in latencies),
                   round(clock.now(), 9))
    return {
        "dri": dri,
        "counts": counts,
        "stats": latency_stats(latencies),
        "lost": counts["shed"] + counts["expired"] + counts["fail"],
        "introspections": dri.broker.introspections - introspections0,
        "jwks_serves": dri.myaccessid.jwks_serves - jwks_serves0,
        "hit_ratio": tc.stats.hit_ratio() if tc is not None else 0.0,
        "fingerprint": fingerprint,
    }


def test_ablation_scale(benchmark, report):
    arms = {}  # (replicas, caching) -> run
    for r in REPLICAS:
        for caching in (False, True):
            if r == REPLICAS[-1] and caching:
                arms[(r, caching)] = benchmark.pedantic(
                    scale_surge, args=(r, True, 900 + r),
                    rounds=1, iterations=1)
            else:
                arms[(r, caching)] = scale_surge(r, caching, 900 + r)
    auto = scale_surge(1, True, 950, autoscale=True)

    # (a) capacity scales: loss falls monotonically with replica count,
    #     and so does the p99 of served operations (cached arms; p99 is
    #     pinned near the interactive deadline while overloaded, so the
    #     comparison tolerates the last-admitted-op quantisation)
    cached = [arms[(r, True)] for r in REPLICAS]
    for a, b in zip(cached, cached[1:]):
        assert b["lost"] <= a["lost"]
        if a["stats"]["n"] and b["stats"]["n"]:
            assert b["stats"]["p99"] <= a["stats"]["p99"] + 0.01
    assert cached[-1]["lost"] < cached[0]["lost"]

    # (b) caching + single-flight coalescing cut the upstream
    #     introspection round-trips ≥10× at every pool size
    for r in REPLICAS:
        off = arms[(r, False)]["introspections"]
        on = arms[(r, True)]["introspections"]
        assert off >= 10 * max(on, 1), (r, off, on)

    # (c) the cache pays for itself in latency at every pool size: the
    #     median served operation is faster with the verdict caches on
    for r in REPLICAS:
        assert (arms[(r, True)]["stats"]["p50"]
                <= arms[(r, False)]["stats"]["p50"]), r

    # (d) the autoscaler grows the pool mid-surge and beats the static
    #     single replica it started from
    assert auto["dri"].broker_pool.size() > 1
    assert any(d.direction == "grow"
               for d in auto["dri"].autoscaler.decisions)
    assert auto["lost"] <= arms[(1, True)]["lost"]

    # (e) bit-for-bit reproducible from the seed
    r0 = REPLICAS[0]
    assert scale_surge(r0, True, 900 + r0)["fingerprint"] == \
        arms[(r0, True)]["fingerprint"]

    def row(label, replicas, run_):
        c = run_["counts"]
        lb = run_["dri"].broker_lb
        return [
            label, replicas,
            c["offered"],
            f"{c['ok'] / max(c['offered'], 1):.0%}",
            run_["lost"],
            f"{run_['stats']['p50']:.2f}" if run_["stats"]["n"] else "-",
            f"{run_['stats']['p99']:.2f}" if run_["stats"]["n"] else "-",
            lb.routed, lb.failovers,
            run_["introspections"],
            f"{run_['hit_ratio']:.0%}",
        ]

    rows = []
    for r in REPLICAS:
        rows.append(row("cache off", r, arms[(r, False)]))
        rows.append(row("cache on", r, arms[(r, True)]))
    rows.append(row("autoscale 1->%d" % auto["dri"].broker_pool.size(),
                    auto["dri"].broker_pool.size(), auto))
    report("ablation_scale", format_table(
        ["arm", "replicas", "offered", "served", "lost",
         "p50 (s)", "p99 (s)", "lb routed", "failovers",
         "introspect calls", "token-cache hits"],
        rows,
        title=(f"ABL9: {N_SURGE}-op surge ({ARRIVAL_RATE:.0f}/s offered; "
               f"80% logins / 20% app accesses) × replica count × "
               f"distributed cache on/off"),
    ))
