"""SCALE — §IV.B: the RSECon24 workshop, 45 simultaneous Jupyter users.

The paper's single quantitative datapoint: "45 trainees logging in and
running notebooks simultaneously".  The bench sweeps the cohort size
(1, 15, 45, 90) through the complete login path and reports success
rates, live sessions and login+spawn latency percentiles in simulated
time.  The paper's claim corresponds to the N=45 row succeeding with
zero failures.
"""

import pytest

from repro.core import build_isambard
from repro.core.metrics import format_table, latency_stats
from repro.telemetry import critical_path_breakdown

COHORTS = (1, 15, 45, 90)


def slowest_login_breakdown(dri, result) -> str:
    """Critical-path table for the slowest login of the cohort.

    The p99 cell in the scale table says *how slow*; this says *where
    the time went* — per-hop self time down the longest span chain of
    the worst trace, straight from the telemetry store.
    """
    latencies = result.data["latencies"]
    trace_ids = result.data.get("trace_ids") or []
    if not latencies or dri.telemetry is None:
        return ""
    slowest = max(range(len(latencies)), key=lambda i: latencies[i])
    trace_id = trace_ids[slowest] if slowest < len(trace_ids) else None
    if not trace_id:
        return ""
    steps = critical_path_breakdown(dri.telemetry.store, trace_id)
    rows = [
        [s.name, s.service, s.kind, s.status,
         f"{s.duration * 1000:.1f}", f"{s.self_time * 1000:.1f}",
         f"{s.share:.1%}"]
        for s in steps
    ]
    return format_table(
        ["span", "service", "kind", "status",
         "total (sim ms)", "self (sim ms)", "share"],
        rows,
        title=(f"CRITICAL PATH: slowest login "
               f"({latencies[slowest] * 1000:.1f} sim ms, "
               f"trace {trace_id})"),
    )


def run_workshop(n: int, seed: int):
    dri = build_isambard(seed=seed)
    return dri, dri.workflows.rsecon_workshop(n)


def test_rsecon_scale(benchmark, report):
    rows = []
    paper_row = None
    breakdown = ""
    for n in COHORTS:
        if n == 45:
            dri, result = benchmark.pedantic(
                run_workshop, args=(45, 45), rounds=1, iterations=1)
            paper_row = result
            breakdown = slowest_login_breakdown(dri, result)
        else:
            dri, result = run_workshop(n, seed=100 + n)
        stats = latency_stats(result.data["latencies"],
                              result.data.get("trace_ids"))
        rows.append([
            n,
            f"{n - result.data['failures']}/{n}",
            result.data["live_sessions"],
            f"{stats['p50'] * 1000:.1f}",
            f"{stats['p95'] * 1000:.1f}",
            f"{stats['p99'] * 1000:.1f}",
            f"{dri.pool.utilisation():.1%}",
        ])
        if n <= 45:
            assert result.ok, result.steps

    assert paper_row is not None and paper_row.ok
    assert paper_row.data["live_sessions"] >= 45
    assert breakdown, "45-login cohort should yield a traced critical path"

    table = format_table(
        ["trainees", "logins ok", "live notebooks",
         "login+spawn p50 (sim ms)", "p95 (sim ms)", "p99 (sim ms)",
         "cluster util"],
        rows,
        title="SCALE: RSECon24 workshop reproduction (§IV.B; paper ran N=45)",
    )
    report("rsecon_scale", table + "\n\n" + breakdown)
