"""SCALE — §IV.B: the RSECon24 workshop, 45 simultaneous Jupyter users.

The paper's single quantitative datapoint: "45 trainees logging in and
running notebooks simultaneously".  The bench sweeps the cohort size
(1, 15, 45, 90) through the complete login path and reports success
rates, live sessions and login+spawn latency percentiles in simulated
time.  The paper's claim corresponds to the N=45 row succeeding with
zero failures.
"""

import pytest

from repro.core import build_isambard
from repro.core.metrics import format_table, latency_stats

COHORTS = (1, 15, 45, 90)


def run_workshop(n: int, seed: int):
    dri = build_isambard(seed=seed)
    return dri, dri.workflows.rsecon_workshop(n)


def test_rsecon_scale(benchmark, report):
    rows = []
    paper_row = None
    for n in COHORTS:
        if n == 45:
            dri, result = benchmark.pedantic(
                run_workshop, args=(45, 45), rounds=1, iterations=1)
            paper_row = result
        else:
            dri, result = run_workshop(n, seed=100 + n)
        stats = latency_stats(result.data["latencies"])
        rows.append([
            n,
            f"{n - result.data['failures']}/{n}",
            result.data["live_sessions"],
            f"{stats['p50'] * 1000:.1f}",
            f"{stats['p95'] * 1000:.1f}",
            f"{stats['p99'] * 1000:.1f}",
            f"{dri.pool.utilisation():.1%}",
        ])
        if n <= 45:
            assert result.ok, result.steps

    assert paper_row is not None and paper_row.ok
    assert paper_row.data["live_sessions"] >= 45

    report("rsecon_scale", format_table(
        ["trainees", "logins ok", "live notebooks",
         "login+spawn p50 (sim ms)", "p95 (sim ms)", "p99 (sim ms)",
         "cluster util"],
        rows,
        title="SCALE: RSECon24 workshop reproduction (§IV.B; paper ran N=45)",
    ))
