"""US2 — user story 2: a BriCS admin registers an administrators-only account.

Reproduces §IV.A.2: invitation restricted to the institution, hardware-
key MFA enrolment, the human check before activation, per-service RBAC
("admin access does not provide global access to all Isambard services"),
the ~20-member cap, and revocation on leaving the group.
"""

import pytest

from repro.broker import Role
from repro.core import build_isambard
from repro.core.metrics import format_table
from repro.errors import RegistrationError


def run_story(seed: int):
    dri = build_isambard(seed=seed)
    result = dri.workflows.story2_admin_registration("ops1")
    return dri, result


def test_story2_admin_registration(benchmark, report):
    dri, result = benchmark.pedantic(run_story, args=(6,), rounds=3, iterations=1)
    assert result.ok, result.steps

    rows = [["full onboarding + hardware-key login", "ok"]]

    # institutional email enforced
    try:
        dri.admin_idp.invite_admin("mallory@gmail.com", invited_by="x")
        rows.append(["invite outside the institution", "ALLOWED (wrong)"])
    except RegistrationError:
        rows.append(["invite outside the institution", "refused"])

    # per-service RBAC: infra admin cannot take the security role
    admin = dri.workflows.personas["ops1"]
    denied = dri.workflows.mint(admin, "soc", Role.ADMIN_SECURITY.value)
    rows.append(["infra admin requests security-role token",
                 "denied" if denied.status == 403 else "ALLOWED (wrong)"])

    # removal severs live sessions and future logins
    severed = dri.admin_idp.remove_admin("ops1", removed_by="lead")
    relogin = dri.workflows.relogin(admin)
    rows.append([f"admin removed from group ({severed} session(s) severed)",
                 "login denied" if relogin.status == 403 else "still works (wrong)"])
    assert relogin.status == 403

    # group size cap
    capped = build_isambard(seed=7)
    for i in range(capped.admin_idp.max_admins):
        capped.workflows.create_admin(f"adm{i}", Role.ADMIN_INFRA)
    try:
        capped.admin_idp.invite_admin(
            "one-too-many@bristol.ac.uk", invited_by="x")
        rows.append([f"member #{capped.admin_idp.max_admins + 1}", "ALLOWED (wrong)"])
    except RegistrationError:
        rows.append([f"member #{capped.admin_idp.max_admins + 1} invitation",
                     "refused (group capped)"])

    steps = "\n".join(f"  {i+1}. {s}" for i, s in enumerate(result.steps))
    report("story2_admin_registration",
           format_table(["scenario", "outcome"], rows,
                        title="US2: administrators-only account (§IV.A.2)")
           + "\n\nsteps:\n" + steps)
