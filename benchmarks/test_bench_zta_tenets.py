"""ZTA — §II.C: the seven NIST SP 800-207 zero-trust tenets.

The paper claims its design adopts the NIST tenets.  The bench exercises
the deployment (stories 1-6), ships the logs, and runs the tenet checker
over the *observed* behaviour — each tenet must hold with concrete
evidence, not by configuration assertion alone.
"""

import pytest

from repro.core import build_isambard
from repro.core.metrics import format_table
from repro.policy import assess_caf, check_tenets
from repro.policy.caf import caf_summary


def exercised_deployment(seed: int):
    dri = build_isambard(seed=seed)
    wf = dri.workflows
    s1 = wf.story1_pi_onboarding("zoe")
    wf.story2_admin_registration("ops1")
    wf.story3_researcher_setup(s1.data["project_id"], "zoe", "yan")
    wf.story4_ssh_session("yan")
    wf.story5_privileged_operation("ops1")
    wf.story6_jupyter("yan")
    # one denied attempt so 'strictly enforced' has evidence
    stranger = wf.create_researcher("stranger")
    wf.login(stranger)
    dri.ship_logs()
    return dri


def test_zta_tenets(benchmark, report):
    dri = benchmark.pedantic(exercised_deployment, args=(21,),
                             rounds=1, iterations=1)
    reports = check_tenets(dri)
    assert len(reports) == 7
    failing = [r for r in reports if not r.passed]
    assert not failing, [(r.tenet, r.evidence) for r in failing]

    tenet_rows = [
        [f"T{r.tenet}", r.title[:52], "PASS" if r.passed else "FAIL",
         r.evidence[:70]]
        for r in reports
    ]

    caf = assess_caf(dri)
    summary = caf_summary(caf)
    caf_rows = [
        [r.outcome_id, r.title, r.grade, r.evidence[:60]] for r in caf
    ]
    objective_rows = [
        [obj, counts["achieved"], counts["partially-achieved"],
         counts["not-achieved"]]
        for obj, counts in sorted(summary.items())
    ]

    report("zta_tenets", "\n\n".join([
        format_table(["tenet", "statement", "verdict", "evidence"],
                     tenet_rows,
                     title="ZTA: NIST SP 800-207 tenets on the exercised system"),
        format_table(["outcome", "title", "grade", "evidence"], caf_rows,
                     title="CAF: baseline-profile self-assessment (paper §V roadmap)"),
        format_table(["objective", "achieved", "partial", "not"],
                     objective_rows, title="CAF: per-objective summary"),
    ]))
