"""ABL7 — what overload protection buys under a login surge.

§IV.B's workshop put 45 trainees through the login path at once; the
ROADMAP's ambition is orders of magnitude more.  This ablation scales
the surge cohort 45 → 2000 users arriving at ~10× the control plane's
sustainable login rate, with the overload layer (admission control +
priority shedding + deadline propagation + AIMD pacing) on vs. off,
and measures:

* goodput and the p50/p99 latency of *successful* interactive logins —
  the protected arm's p99 stays bounded by the users' patience budget,
  the unprotected arm's tail grows without bound as the backlog piles up;
* shed rate by traffic class — batch is shed before interactive
  (two-level shedding), and **admin/security traffic is never shed**:
  revocations land during the surge, with bounded latency, in the
  protected arm, while the unprotected arm queues them behind the mob;
* the audit trail: every shed/expired request appears in the network
  log as SHED/EXPIRED — distinct from DENIED — so the SOC can tell a
  capacity incident from an access-control incident.

Surges are modelled on the shared simulated clock: arrivals get
timestamps up front at the offered rate; a login's latency is its
completion time minus its arrival, so queueing delay (the clock running
behind the arrival schedule) is part of the measurement.  Interactive
users abandon after ``LOGIN_BUDGET`` simulated seconds — carried as a
propagated deadline in the protected arm, which is what lets the system
shed doomed work before it burns capacity.

``ABL7_QUICK=1`` shrinks the sweep for CI smoke runs.
"""

import dataclasses
import os

from repro.core import build_isambard
from repro.core.metrics import format_table, latency_stats
from repro.errors import DeadlineExceeded, NetworkError, RateLimited
from repro.oidc import make_url
from repro.resilience import OverloadConfig, Priority

QUICK = os.environ.get("ABL7_QUICK") == "1"
SURGES = (45, 450) if QUICK else (45, 200, 600, 2000)
N_PERSONAS = 12 if QUICK else 40          # rotating login identities
N_BATCH = 4                               # stay-logged-in automation users
N_SACRIFICIAL = 4 if QUICK else 8         # members revoked mid-surge
ARRIVAL_RATE = 1200.0                     # offered logins per sim second
LOGIN_BUDGET = 2.0 if QUICK else 5.0      # interactive patience (sim s)
BATCH_BUDGET = 30.0                       # automation patience (sim s)

# The broker's declared capacity for this study.  A federated login is
# ~2.5 guarded broker round-trips at ~5 ms each, so the 250 req/s
# bucket ≈ 120 logins/s of admitted service — the 1200/s offered surge
# is ~10× that.  The AIMD floor is raised so client pacing cannot
# collapse below the bucket's own granularity: in a sequential
# simulation a 2 s paced wait (the stock 0.5/s floor) would serialise
# *behind* unrelated traffic and corrupt every later measurement.
CONFIG = dataclasses.replace(
    OverloadConfig(),
    broker=dataclasses.replace(OverloadConfig().broker, rate=250.0, burst=40.0),
    aimd_initial_rate=400.0,
    aimd_min_rate=50.0,
)


def classify(i: int) -> str:
    """Deterministic traffic mix: 5% admin, 15% batch, 80% interactive."""
    slot = i % 20
    if slot == 19:
        return Priority.ADMIN
    if slot >= 16:
        return Priority.BATCH
    return Priority.INTERACTIVE


def surge(protected: bool, seed: int, n_surge: int):
    dri = build_isambard(seed=seed, overload=CONFIG if protected else False,
                         resilience=True)
    wf = dri.workflows
    clock = dri.clock

    # --- warmup (uncontended): onboard the cohort --------------------------
    s1 = wf.story1_pi_onboarding("trainer", project_name="surge-proj",
                                 gpu_hours=1e6)
    assert s1.ok, s1.steps
    project_id = str(s1.data["project_id"])
    personas = []
    for i in range(N_PERSONAS):
        name = f"surfer{i:02d}"
        assert wf.story3_researcher_setup(project_id, "trainer", name).ok
        personas.append(wf.personas[name])
    batch_personas = []
    for i in range(N_BATCH):
        name = f"bot{i:02d}"
        assert wf.story3_researcher_setup(project_id, "trainer", name).ok
        batch_personas.append(wf.personas[name])
    sacrificial = []
    for i in range(N_SACRIFICIAL):
        name = f"leaver{i:02d}"
        assert wf.story3_researcher_setup(project_id, "trainer", name).ok
        sacrificial.append(wf.personas[name])
    trainer = wf.personas["trainer"]
    mint_body = {"audience": "portal", "role": "researcher"}
    probe, _ = batch_personas[0].agent.post(
        make_url("broker", "/tokens"), dict(mint_body))
    assert probe.ok, f"batch mint probe failed: {probe.body}"

    # --- the surge ---------------------------------------------------------
    t0 = clock.now()
    counts = {p: {"offered": 0, "ok": 0, "shed": 0, "expired": 0, "fail": 0}
              for p in Priority.ALL}
    login_latencies, admin_latencies = [], []
    revoked = []

    def run(kind, arrival, op):
        c = counts[kind]
        c["offered"] += 1
        try:
            ok = op()
        except DeadlineExceeded:
            c["expired"] += 1
            return
        except RateLimited:
            c["shed"] += 1
            return
        except NetworkError:
            c["fail"] += 1
            return
        if not ok:
            c["fail"] += 1
            return
        c["ok"] += 1
        latency = clock.now() - arrival
        if kind == Priority.INTERACTIVE:
            login_latencies.append(latency)
        elif kind == Priority.ADMIN:
            admin_latencies.append(latency)

    for i in range(n_surge):
        arrival = t0 + i / ARRIVAL_RATE
        if clock.now() < arrival:
            clock.advance(arrival - clock.now())
        kind = classify(i)

        if kind == Priority.INTERACTIVE:
            p = personas[i % len(personas)]
            if protected:
                p.agent.deadline = arrival + LOGIN_BUDGET
            try:
                run(kind, arrival, lambda: wf.relogin(p).ok)
            finally:
                p.agent.deadline = None

        elif kind == Priority.BATCH:
            p = batch_personas[i % len(batch_personas)]
            p.agent.priority = Priority.BATCH
            if protected:
                p.agent.deadline = arrival + BATCH_BUDGET
            try:
                run(kind, arrival, lambda: p.agent.post(
                    make_url("broker", "/tokens"), dict(mint_body))[0].ok)
            finally:
                p.agent.priority = Priority.INTERACTIVE
                p.agent.deadline = None

        else:  # ADMIN — a real security operation through the hot path
            trainer.agent.priority = Priority.ADMIN

            def admin_op():
                minted, _ = trainer.agent.post(
                    make_url("broker", "/tokens"),
                    {"audience": "portal", "role": "pi",
                     "project": project_id})
                if not minted.ok:
                    return False
                if len(revoked) < len(sacrificial):
                    target = sacrificial[len(revoked)]
                    resp, _ = trainer.agent.post(
                        make_url("portal", "/revoke_member"),
                        {"project_id": project_id,
                         "uid": target.broker_sub},
                        headers={"Authorization":
                                 f"Bearer {minted.body['token']}"})
                    if not resp.ok:
                        return False
                    revoked.append(target.name)
                return True

            try:
                run(kind, arrival, admin_op)
            finally:
                trainer.agent.priority = Priority.INTERACTIVE

    admission = (dri.broker.admission.snapshot() if protected
                 else {"admitted": {}, "shed": {}})
    fingerprint = (
        tuple(sorted((k, tuple(sorted(v.items()))) for k, v in counts.items())),
        tuple(round(l, 9) for l in login_latencies),
        round(clock.now(), 9),
    )
    inter = counts[Priority.INTERACTIVE]
    return {
        "dri": dri,
        "counts": counts,
        "stats": latency_stats(login_latencies),
        "admin_stats": latency_stats(admin_latencies),
        "within_budget": sum(1 for l in login_latencies if l <= LOGIN_BUDGET),
        "goodput": inter["ok"] / max(inter["offered"], 1),
        "admission": admission,
        "revocations": len(revoked),
        "fingerprint": fingerprint,
    }


def test_ablation_overload(benchmark, report):
    n_max = SURGES[-1]
    on_runs = {}
    for n in SURGES:
        if n == n_max:
            on_runs[n] = benchmark.pedantic(
                surge, args=(True, 71, n), rounds=1, iterations=1)
        else:
            on_runs[n] = surge(True, 71, n)
    off = surge(False, 72, n_max)
    on = on_runs[n_max]

    for n, run_ in on_runs.items():
        # (a) the never-shed invariant: zero loss of security traffic at
        #     every surge size — revocations land during the stampede
        admin = run_["counts"][Priority.ADMIN]
        assert admin["shed"] == admin["expired"] == admin["fail"] == 0
        assert run_["admission"]["shed"].get(Priority.ADMIN, 0) == 0
        assert run_["revocations"] > 0
        # (b) bounded tail: successful logins always land within the
        #     patience budget (deadline propagation sheds the rest early)
        if run_["stats"]["n"]:
            assert run_["stats"]["p99"] <= LOGIN_BUDGET + 0.1

    # (c) 10× overload really bites, and the bucket sheds batch ahead of
    #     interactive (two-level shedding, measured where it happens)
    inter = on["counts"][Priority.INTERACTIVE]
    assert inter["shed"] + inter["expired"] > 0
    adm, shed = on["admission"]["admitted"], on["admission"]["shed"]

    def bucket_loss(prio):
        offered = adm.get(prio, 0) + shed.get(prio, 0)
        return shed.get(prio, 0) / max(offered, 1)

    assert bucket_loss(Priority.BATCH) >= bucket_loss(Priority.INTERACTIVE)
    assert shed.get(Priority.BATCH, 0) > 0

    # (d) the unprotected arm melts down instead: it serves "everyone"
    #     at a tail latency past any human's patience, and queues the
    #     revocation traffic behind the mob.  (The contrast needs the
    #     full-size surge; the quick sweep only smokes the mechanics.)
    if not QUICK:
        assert off["stats"]["p99"] > LOGIN_BUDGET
        assert off["stats"]["p99"] > on["stats"]["p99"]
        assert off["admin_stats"]["p99"] > on["admin_stats"]["p99"]

    # (e) every shed/expired request is in the network audit log with
    #     its outcome and priority — a capacity incident never
    #     masquerades as an access-control incident
    net = on["dri"].logs["network"]
    shed_events = net.query(action="admission.shed", outcome="shed")
    expired_events = net.query(action="deadline.expired", outcome="expired")
    assert len(shed_events) == on["dri"].network.messages_shed > 0
    assert len(expired_events) == on["dri"].network.messages_expired > 0
    assert all("priority" in e.attrs for e in shed_events + expired_events)
    assert not net.query(action="admission.shed", outcome="denied")

    # (f) bit-for-bit reproducible from its seed
    assert surge(True, 71, n_max)["fingerprint"] == on["fingerprint"]

    def row(label, r):
        c = r["counts"]
        i, a = c[Priority.INTERACTIVE], c[Priority.ADMIN]
        bucket = r["admission"]["shed"]
        return [
            label, i["offered"],
            f"{r['goodput']:.0%}",
            f"{r['within_budget'] / max(i['offered'], 1):.0%}",
            f"{i['shed'] + i['expired']}",
            f"{a['shed'] + a['expired'] + a['fail']}/{a['offered']}",
            (f"{bucket.get(Priority.BATCH, 0)}"
             f"/{bucket.get(Priority.INTERACTIVE, 0)}"
             f"/{bucket.get(Priority.ADMIN, 0)}"),
            f"{r['stats']['p50']:.2f}" if r["stats"]["n"] else "-",
            f"{r['stats']['p99']:.2f}" if r["stats"]["n"] else "-",
            f"{r['admin_stats']['p99']:.3f}",
            r["revocations"],
        ]

    rows = [row(f"protected, N={n}", on_runs[n]) for n in SURGES]
    rows.append(row(f"unprotected, N={n_max}", off))
    report("ablation_overload", format_table(
        ["arm", "logins offered", "served", "in patience",
         "interactive lost", "admin lost", "bucket sheds (b/i/a)",
         "login p50 (s)", "login p99 (s)", "revocation p99 (s)",
         "revocations landed"],
        rows,
        title=(f"ABL7: login surge at ~10× admitted capacity "
               f"({ARRIVAL_RATE:.0f}/s offered; interactive patience "
               f"{LOGIN_BUDGET:.0f}s; admin = revocation traffic; "
               f"'served' counts completed logins even when the user "
               f"would have walked away)"),
    ))
