"""ABL6 — what the resilience layer buys under injected chaos.

The paper's control plane spans four operating domains, and §IV.B's
workshop story assumes the identity broker answers every one of the ~6
broker round-trips a Jupyter login needs.  This ablation drives the US6
fleet through a 30% broker brownout and a SIEM sink outage with the
resilience layer (retry/backoff + circuit breakers + graceful
degradation) on vs. off, and measures:

* login success rate and p50/p95/p99 latency under the brownout;
* audit records lost across the SIEM outage (durable forwarder buffer
  vs. drop-on-failure);
* the degraded-validation security bound: a cached introspection verdict
  may ride at most ``staleness_window`` seconds past a revocation the
  authenticator could not see — never longer.

Everything runs on the simulated clock with seeded RNGs, so both arms
are bit-for-bit reproducible; the determinism assertion below re-runs
the chaos arm and compares fingerprints.

``CHAOS_QUICK=1`` shrinks the fleet for CI smoke runs.
"""

import os

from repro.core import build_isambard
from repro.core.metrics import format_table, latency_stats
from repro.errors import ServiceUnavailable
from repro.net.http import HttpRequest
from repro.resilience import RetryPolicy
from repro.tunnels.zenith import TOKEN_HEADER

QUICK = os.environ.get("CHAOS_QUICK") == "1"
N_USERS = 6 if QUICK else 18
BROWNOUT_P = 0.30
SIEM_OUTAGE = 120.0


def jupyter_fleet(resilient: bool, seed: int, *, n_users: int = N_USERS):
    """Onboard a fleet cleanly, then log everyone in through a broker
    brownout and ship audit logs across a SIEM sink outage."""
    dri = build_isambard(
        seed=seed,
        resilience=RetryPolicy(max_attempts=8) if resilient else False,
    )
    wf = dri.workflows
    s1 = wf.story1_pi_onboarding("pi", project_name="chaos-proj")
    assert s1.ok, s1.steps
    project_id = str(s1.data["project_id"])
    users = [f"user{i:02d}" for i in range(n_users)]
    for name in users:
        assert wf.story3_researcher_setup(project_id, "pi", name).ok

    # --- phase 1: the fleet logs in through a broker brownout ---------
    brownout = dri.faults.brownout("broker", BROWNOUT_P)
    successes, latencies = 0, []
    for name in users:
        t0 = dri.clock.now()
        try:
            ok = wf.story6_jupyter(name).ok
        except ServiceUnavailable:
            ok = False  # fail-fast arm: the fault surfaces to the user
        if ok:
            successes += 1
            latencies.append(dri.clock.now() - t0)
    brownout.clear()

    # --- phase 2: the SIEM sink goes dark for a while -----------------
    if not resilient:
        for fw in dri.forwarders:
            fw.retain_on_failure = False  # ablate the durable buffer
    dri.ship_logs()  # drain the backlog so the outage window is clean
    shipped_before = sum(fw.shipped for fw in dri.forwarders)
    dri.faults.outage("soc", duration=SIEM_OUTAGE)
    # traffic keeps generating audit records while the sink is dark; the
    # interval timers flush into the outage, then through and past it
    for name in users[:3]:
        try:
            wf.story6_jupyter(name)
        except ServiceUnavailable:
            pass
    dri.clock.advance(SIEM_OUTAGE + 30.0)
    dri.ship_logs()
    audit_lost = sum(fw.lost for fw in dri.forwarders)
    still_buffered = sum(fw.buffered() for fw in dri.forwarders)
    shipped_through = sum(fw.shipped for fw in dri.forwarders) - shipped_before

    fingerprint = (
        successes, tuple(round(l, 9) for l in latencies),
        round(dri.clock.now(), 9), dri.faults.injected_failures,
        audit_lost, shipped_through, dri.soc.records_ingested,
    )
    return {
        "dri": dri,
        "success_rate": successes / n_users,
        "stats": latency_stats(latencies),
        "audit_lost": audit_lost,
        "still_buffered": still_buffered,
        "shipped_through": shipped_through,
        "sink_failures": sum(fw.sink_failures for fw in dri.forwarders),
        "fingerprint": fingerprint,
    }


def staleness_bound(seed: int, *, window: float = 300.0):
    """The degraded-validation trade-off, measured end to end: a cached
    'active' verdict survives a revocation the dark broker cannot report,
    but only within ``staleness_window``."""
    dri = build_isambard(
        seed=seed, resilience=RetryPolicy(max_attempts=2),
        staleness_window=window,
    )
    wf = dri.workflows
    assert wf.story1_pi_onboarding("olu").ok
    minted = wf.mint(wf.personas["olu"], "jupyter", "pi").body
    token, jti = str(minted["token"]), str(minted["jti"])

    # introspected-active while healthy: the authenticator caches it
    assert dri.jupyter.handle(
        HttpRequest("GET", "/", headers={TOKEN_HEADER: token})).ok
    # revocation lands, then the broker goes dark before any re-check
    dri.broker.tokens.revoke_jti(jti)
    dri.faults.outage("broker")

    dri.clock.advance(window / 5)  # still inside the staleness window
    mid = dri.jupyter.handle(
        HttpRequest("GET", "/", headers={TOKEN_HEADER: token}))
    dri.clock.advance(window)      # now past it
    late = dri.jupyter.handle(
        HttpRequest("GET", "/", headers={TOKEN_HEADER: token}))
    return dri, mid.ok, late.ok


def test_ablation_chaos(benchmark, report):
    on = benchmark.pedantic(
        jupyter_fleet, args=(True, 61), rounds=1, iterations=1)
    off = jupyter_fleet(False, 62)

    # (a) resilience carries the fleet through the brownout; fail-fast
    #     collapses (≈ 0.7^6 per login: six broker round-trips each)
    assert on["success_rate"] >= 0.99
    assert off["success_rate"] < 0.8

    # (b) the durable forwarder buffer loses nothing across the SIEM
    #     outage — every retained record replays once the sink returns
    assert on["sink_failures"] > 0        # the outage really bit
    assert on["audit_lost"] == 0
    assert on["still_buffered"] == 0
    assert on["shipped_through"] > 0
    assert off["audit_lost"] > 0          # drop-on-failure leaks records

    # (c) degraded validation is bounded: cached verdicts admit inside
    #     the staleness window, never past it
    dri_s, mid_ok, late_ok = staleness_bound(63)
    assert mid_ok and not late_ok
    assert dri_s.jupyter.degraded_validations > 0
    assert dri_s.jupyter.degraded_rejections > 0

    # (d) chaos is bit-for-bit reproducible from its seed
    assert jupyter_fleet(True, 61)["fingerprint"] == on["fingerprint"]

    def row(label, arm, extra):
        s = arm["stats"]
        return [label, f"{arm['success_rate']:.2f}",
                f"{s['p50']:.2f}", f"{s['p95']:.2f}", f"{s['p99']:.2f}",
                arm["audit_lost"], extra]

    report("ablation_chaos", format_table(
        ["control plane", "US6 success", "p50 (s)", "p95 (s)", "p99 (s)",
         "audit records lost", "note"],
        [
            row("resilience layer on", on,
                "retry+breaker absorbs the brownout; buffer replays"),
            row("fail-fast (ablated)", off,
                "six broker hops each at 30% loss; drops audit on outage"),
        ],
        title=(f"ABL6: {N_USERS}-user Jupyter fleet, {BROWNOUT_P:.0%} broker "
               f"brownout + {SIEM_OUTAGE:.0f}s SIEM outage"),
    ))
