"""ABL4 — the HA bastion set: availability under rolling patching.

§III.B: the bastions are "operated as a high-availability VM set so that
they can be patched and updated quickly ... live updates to be
undertaken without risk of disruption".  The ablation patches every VM
in sets of size 1, 2 and 3 while a user keeps logging in; expected
shape: any multi-VM set sustains 100% availability through the rolling
patch, the single-VM baseline drops to zero during its patch window.
"""

import pytest

from repro.core import build_isambard
from repro.core.metrics import format_table


def rolling_patch_availability(vm_count: int, seed: int, *, attempts_per_vm: int = 4):
    dri = build_isambard(seed=seed, bastion_vms=vm_count)
    dri.workflows.story1_pi_onboarding("uma")
    uma = dri.workflows.personas["uma"]
    client = uma.ssh_client
    client.request_certificate()
    alias = sorted(client.ssh_config)[0]

    ok = total = 0
    for vm in list(dri.bastion.vms):
        # the single-VM baseline must force the drain: the guard refuses
        # to take down the last live bastion during a rolling patch
        dri.bastion.drain(vm.vm_id, force=(vm_count == 1))
        for _ in range(attempts_per_vm):
            total += 1
            if client.ssh(alias).ok:
                ok += 1
        dri.bastion.patch_and_restore(vm.vm_id, "v2")
    patched = all(vm.image_version == "v2" for vm in dri.bastion.vms)
    return dri, ok / total, patched


def test_ablation_bastion_ha(benchmark, report):
    rows = []
    availability = {}
    for count in (1, 2, 3):
        if count == 2:
            dri, avail, patched = benchmark.pedantic(
                rolling_patch_availability, args=(2, 81), rounds=1, iterations=1)
        else:
            dri, avail, patched = rolling_patch_availability(count, seed=80 + count)
        availability[count] = avail
        rows.append([count, f"{avail:.0%}", "yes" if patched else "no"])

    # shape: single bastion loses all logins during its own patch; any
    # HA set sustains full availability
    assert availability[1] == 0.0
    assert availability[2] == 1.0 and availability[3] == 1.0

    # load balancing spreads connections across the live set
    dri2 = build_isambard(seed=85, bastion_vms=3)
    dri2.workflows.story1_pi_onboarding("vik")
    client = dri2.workflows.personas["vik"].ssh_client
    client.request_certificate()
    alias = sorted(client.ssh_config)[0]
    for _ in range(9):
        assert client.ssh(alias).ok
    counts = [vm.connections_handled for vm in dri2.bastion.vms]
    lb_rows = [[vm.vm_id, vm.connections_handled] for vm in dri2.bastion.vms]
    assert max(counts) - min(counts) <= 1

    # the drain guard: an unforced drain of the last live VM is refused,
    # so a rolling patch cannot silently zero availability
    from repro.errors import ConfigurationError
    dri3, _, _ = rolling_patch_availability(2, seed=86)
    dri3.bastion.drain("bastion-vm0")
    with pytest.raises(ConfigurationError):
        dri3.bastion.drain("bastion-vm1")
    assert len(dri3.bastion.up_vms()) == 1

    report("ablation_bastion_ha", "\n\n".join([
        format_table(["bastion VMs", "login availability during rolling patch",
                      "fully patched"], rows,
                     title="ABL4a: availability under rolling patching"),
        format_table(["vm", "connections"], lb_rows,
                     title="ABL4b: load balancing across the HA set"),
    ]))
