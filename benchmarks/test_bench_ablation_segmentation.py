"""ABL1 — what zoning/segmentation buys: blast radius, segmented vs flat.

§III claims "segmentation of network domains allowed us to isolate and
contain different threats".  The ablation compares the Fig. 1 firewall
against a flat network (every flow allowed) from three footholds: an
internet host, a compromised user laptop, and a compromised bastion.
Expected shape: segmentation shrinks the directly-reachable protected
surface to zero from the internet and forces multi-hop pivots to reach
the management plane; the flat baseline exposes everything in one hop.
"""

import pytest

from repro.core import ThreatModel, build_isambard
from repro.core.metrics import format_table

PROTECTED = {"login-node", "mgmt-node", "jupyter", "zenith-client", "soc"}


def build(segmented: bool, seed: int):
    dri = build_isambard(seed=seed, segmented=segmented)
    dri.workflows.story1_pi_onboarding("user")
    return dri, ThreatModel(dri)


def exposure_rows(label, tm):
    rows = []
    for foothold in ("user-laptop", "bastion"):
        direct = tm.reachable_from(foothold)
        exposed = sorted(PROTECTED & set(direct.reachable))
        rows.append([
            label, foothold,
            f"{len(direct.reachable)}/{direct.total_endpoints}",
            f"{len(exposed)}/{len(PROTECTED)}",
            ", ".join(exposed) or "-",
        ])
    return rows


def test_ablation_segmentation(benchmark, report):
    (seg, seg_tm) = benchmark.pedantic(build, args=(True, 31),
                                       rounds=1, iterations=1)
    flat, flat_tm = build(False, 32)

    rows = exposure_rows("segmented (Fig.1)", seg_tm) + \
        exposure_rows("flat baseline", flat_tm)

    # headline assertions: who wins and by how much
    seg_direct = set(seg_tm.reachable_from("user-laptop").reachable)
    flat_direct = set(flat_tm.reachable_from("user-laptop").reachable)
    assert not (PROTECTED & seg_direct)          # zero protected exposure
    assert PROTECTED <= flat_direct              # total protected exposure

    # pivots needed to touch the management plane
    seg_hops = seg_tm.hops_to("user-laptop", "mgmt-node")
    flat_hops = flat_tm.hops_to("user-laptop", "mgmt-node")
    assert flat_hops == 1 and (seg_hops is None or seg_hops >= 2)

    hops_rows = [
        ["segmented (Fig.1)", "user-laptop -> mgmt-node",
         str(seg_hops) if seg_hops else ">= no path in budget"],
        ["flat baseline", "user-laptop -> mgmt-node", str(flat_hops)],
    ]

    # attempted intrusions die differently
    seg_outcomes = seg_tm.unauthorised_access_attempts()
    flat_outcomes = flat_tm.unauthorised_access_attempts()
    outcome_rows = [
        [target, seg_outcomes[target], flat_outcomes[target]]
        for target in sorted(seg_outcomes)
    ]
    assert all("ConnectionBlocked" in seg_outcomes[t]
               for t in ("login-node", "mgmt-node", "jupyter", "soc"))

    report("ablation_segmentation", "\n\n".join([
        format_table(
            ["network", "foothold", "endpoints reachable",
             "protected exposed", "which"],
            rows, title="ABL1a: direct blast radius by foothold"),
        format_table(["network", "path", "pivots needed"], hops_rows,
                     title="ABL1b: pivots to the management plane"),
        format_table(["target", "segmented outcome", "flat outcome"],
                     outcome_rows,
                     title="ABL1c: how unauthorised attempts die"),
    ]))
