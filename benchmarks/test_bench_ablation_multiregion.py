"""ABL10 — multi-region active-active under region loss and partition.

The multi-region tier (PR 6) weakens exactly one guarantee of the
single-region deployment and the bench measures the weakened contract's
edges during a 2000-operation introspection+mint surge through the
geo-router:

(a) **region loss mid-surge**: the geo-router re-routes the lost
    region's callers to the survivor with a bounded p99 — the detour
    costs ``inter_region_latency``, not availability;

(b) **bounded revocation staleness under partition**: a region deaf to
    the bus may serve a revoked token from cache, but never past the
    advertised ``staleness_bound`` (the region cache TTL is clamped to
    it).  Oracles: the ``region.introspect`` audit timeline (last
    cached ALLOW of the revoked jti vs the revocation instant), the
    SOC's ``CacheStalenessRule`` (tolerates in-window serves, stays
    silent) and ``RegionLagRule`` (pages when the partition outlives
    the bound);

(c) **no split-brain issuance after heal**: a region bounced during the
    partition comes back under a fresh journal epoch; the deposed
    generation's appends raise EpochFenced and the union of every
    region journal's committed mints contains zero duplicate jtis.

``ABL10_QUICK=1`` shrinks the surge for CI smoke runs.
"""

import os

from repro.core import build_isambard
from repro.core.metrics import format_table, latency_stats
from repro.errors import (
    EpochFenced,
    NetworkError,
    RateLimited,
    ReproError,
    ServiceUnavailable,
)
from repro.net.http import HttpRequest
from repro.region import ACTIVE, RegionConfig
from repro.siem import CacheStalenessRule, RegionLagRule

QUICK = os.environ.get("ABL10_QUICK") == "1"
N_OPS = 240 if QUICK else 2000
ARRIVAL_RATE = 250.0            # offered operations per sim second
N_PERSONAS = 2 if QUICK else 4  # onboarded users driving the mint slice
N_APP_TOKENS = 4 if QUICK else 8
MINT_EVERY = 10                 # every Nth op is a mint (fencing path)

CFG = RegionConfig()            # eu/us, 5 s staleness bound
BOUND = CFG.staleness_bound


def _fingerprint(dri, counts, latencies):
    rbus = dri.region_bus
    return (
        tuple(sorted(counts.items())),
        tuple(round(l, 9) for l in latencies),
        round(dri.clock.now(), 9),
        (rbus.replicated, rbus.parked, rbus.flushed, rbus.fenced),
        tuple(r.minted for r in dri.region_directory.regions()),
        (dri.geo_router.routed, dri.geo_router.reroutes,
         dri.geo_router.exhausted),
    )


def multiregion_surge(seed: int, fault: str = "none"):
    """One arm: a mixed introspection (90%) + mint (10%) surge with the
    callers split across both regions, and ``fault`` injected mid-run."""
    dri = build_isambard(seed=seed, regions=True)
    wf, clock = dri.workflows, dri.clock

    # --- warmup: onboard the mint cohort, mint the app tokens ----------
    s1 = wf.story1_pi_onboarding("trainer", project_name="geo-proj")
    assert s1.ok, s1.steps
    project_id = str(s1.data["project_id"])
    personas = []
    for i in range(N_PERSONAS):
        name = f"user{i:02d}"
        clock.advance(0.5)
        assert wf.story3_researcher_setup(project_id, "trainer", name).ok
        personas.append(wf.personas[name])
    app_tokens = []
    for i in range(N_APP_TOKENS):
        token, rec = dri.broker.tokens.mint(
            f"app{i:02d}", "jupyter", "researcher", ttl=3600.0)
        app_tokens.append((token, rec))
    # half the synthetic callers live in each region
    clients = [f"client-{i:02d}" for i in range(8)]
    for i, client in enumerate(clients):
        dri.geo_router.pin(client, CFG.names[i % len(CFG.names)])
    # warm the remote region's cache with the token the partition arm
    # will revoke — the stale serve needs a pre-revocation entry to serve
    victim_token, victim = app_tokens[0]
    for client in clients:
        dri.geo_router.handle(HttpRequest(
            "POST", "/introspect", body={"token": victim_token},
            source=client))
    clock.advance(0.5)

    # --- fault schedule -------------------------------------------------
    surge_span = N_OPS / ARRIVAL_RATE
    t0 = clock.now()
    fault_at = t0 + 0.25 * surge_span
    restore_at = t0 + 0.75 * surge_span
    fault_fired = False
    revoked_at = None
    zombie_epoch = None
    zombie_fenced = False

    counts = {"offered": 0, "ok": 0, "denied": 0, "refused": 0, "fail": 0}
    latencies = []

    for i in range(N_OPS):
        arrival = t0 + i / ARRIVAL_RATE
        if clock.now() < arrival:
            clock.advance(arrival - clock.now())

        if not fault_fired and clock.now() >= fault_at:
            fault_fired = True
            if fault == "region_loss":
                dri.faults.region_down(
                    "us", restore_after=restore_at - clock.now())
            elif fault in ("partition", "bounce"):
                dri.faults.region_partition("eu", "us")
                # the home region revokes while the peer is deaf
                dri.broker.tokens.revoke_jti(victim.jti)
                revoked_at = clock.now()
                if fault == "bounce":
                    # a region bounce mid-partition deposes the serving
                    # generation; its epoch must never issue again
                    us = dri.region_directory.region("us")
                    zombie_epoch = us.epoch
                    dri.region_directory.region_down("us")
                    dri.region_directory.region_up("us")

        counts["offered"] += 1
        # decorrelated from the token cycle so every token is introspected
        # from both regions over the surge
        client = clients[(i + i // N_APP_TOKENS) % len(clients)]
        try:
            if i % MINT_EVERY == MINT_EVERY - 1:
                persona = personas[(i // MINT_EVERY) % len(personas)]
                resp = wf.mint(persona, "jupyter", "researcher",
                               project=project_id)
            else:
                token = app_tokens[i % len(app_tokens)][0]
                resp = dri.geo_router.handle(HttpRequest(
                    "POST", "/introspect", body={"token": token},
                    source=client))
        except (ServiceUnavailable, RateLimited):
            counts["refused"] += 1
        except (NetworkError, ReproError):
            counts["fail"] += 1
        else:
            if resp.ok:
                counts["ok"] += 1
                latencies.append(clock.now() - arrival)
            else:
                counts["denied"] += 1

    # --- post-surge: let the partition outlive the bound, then heal ----
    if fault in ("partition", "bounce"):
        clock.advance(max(0.0, (fault_at + BOUND + 2.0) - clock.now()))
        if zombie_epoch is not None:
            us = dri.region_directory.region("us")
            try:
                us.journal.append("region.mint.intent",
                                  {"region": "us"}, epoch=zombie_epoch)
            except EpochFenced:
                zombie_fenced = True
        dri.region_directory.heal("eu", "us")
        clock.advance(3.0 * CFG.lag_check_interval)  # watchdog recovery
    dri.ship_logs()

    mint_jtis = []
    for name in CFG.names:
        journal = dri.durability.stream(f"region-{name}")
        mint_jtis += [str(e.data["jti"]) for e in journal.load()[1]
                      if e.kind == "region.mint"]
    stale_serves = [
        e.time for e in dri.logs["fds"].query()
        if e.action == "region.introspect"
        and e.attrs.get("jti") == victim.jti and e.attrs.get("active")
        and revoked_at is not None and e.time > revoked_at
    ]
    return {
        "dri": dri,
        "counts": counts,
        "stats": latency_stats(latencies),
        "reroutes": dri.geo_router.reroutes,
        "revoked_at": revoked_at,
        "stale_serves": stale_serves,
        "mint_jtis": mint_jtis,
        "zombie_fenced": zombie_fenced,
        "victim_jti": victim.jti,
        "lag_breaches": dri.region_directory.lag_breaches,
        "fingerprint": _fingerprint(dri, counts, latencies),
    }


def test_ablation_multiregion(benchmark, report):
    baseline = multiregion_surge(1000)
    loss = benchmark.pedantic(multiregion_surge, args=(1001, "region_loss"),
                              rounds=1, iterations=1)
    part = multiregion_surge(1002, "partition")
    bounce = multiregion_surge(1003, "bounce")

    # --- sanity: the healthy arm serves everything locally -------------
    assert baseline["counts"]["refused"] == 0
    assert baseline["counts"]["fail"] == 0
    assert baseline["reroutes"] == 0

    # (a) region loss mid-surge: callers re-route to the survivor with a
    #     bounded p99 — availability holds, latency pays one detour
    assert loss["reroutes"] > 0
    assert loss["counts"]["fail"] == 0
    assert loss["counts"]["ok"] > 0.95 * loss["counts"]["offered"]
    # p99 is bounded by the analytic worst case: the queue a detour
    # storm builds can never exceed the summed detour cost, so latency
    # degrades proportionally to the fault, it does not run away
    assert loss["stats"]["p99"] <= (
        baseline["stats"]["p99"]
        + loss["reroutes"] * CFG.inter_region_latency + 0.05)
    # the lost region recovered and serves again after restore
    assert loss["dri"].region_directory.region("us").state == ACTIVE

    # (b) bounded staleness under partition: the deaf region served the
    #     revoked token from cache — but never past the advertised bound
    assert part["revoked_at"] is not None
    assert part["stale_serves"], "the partition arm must exercise a stale serve"
    last_stale = max(part["stale_serves"])
    assert last_stale <= part["revoked_at"] + BOUND
    # SOC oracles: the in-window serves are tolerated (no critical
    # staleness alert), and the lag breach paged
    alerts = {a.rule for a in part["dri"].soc.alerts}
    assert "region-lag" in alerts
    assert "cache-staleness" not in alerts
    staleness_rules = [r for r in part["dri"].soc.rules
                       if isinstance(r, CacheStalenessRule)]
    assert sum(r.tolerated for r in staleness_rules) >= 1
    assert any(isinstance(r, RegionLagRule) for r in part["dri"].soc.rules)
    assert part["lag_breaches"] > 0
    # after heal + watchdog recovery, both regions serve again and the
    # deaf region finally heard the revocation
    directory = part["dri"].region_directory
    assert all(r.state == ACTIVE for r in directory.regions())
    assert directory.region("us").revocations.is_revoked(part["victim_jti"])

    # (c) split-brain: the bounced region's deposed epoch is fenced and
    #     no jti was ever committed by two region generations
    assert bounce["zombie_fenced"]
    assert len(bounce["mint_jtis"]) == len(set(bounce["mint_jtis"]))
    assert len(baseline["mint_jtis"]) == len(set(baseline["mint_jtis"]))

    # (d) bit-for-bit reproducible from the seed
    assert multiregion_surge(1001, "region_loss")["fingerprint"] == \
        loss["fingerprint"]

    def row(label, run_):
        c = run_["counts"]
        s = run_["stats"]
        return [
            label, c["offered"], c["ok"], c["refused"] + c["fail"],
            f"{s['p50'] * 1000:.1f}" if s["n"] else "-",
            f"{s['p99'] * 1000:.1f}" if s["n"] else "-",
            run_["reroutes"],
            len(run_["stale_serves"]),
            (f"{max(run_['stale_serves']) - run_['revoked_at']:.2f}"
             if run_["stale_serves"] else "-"),
            run_["lag_breaches"],
            len(run_["mint_jtis"]),
            len(run_["mint_jtis"]) - len(set(run_["mint_jtis"])),
        ]

    report("ablation_multiregion", format_table(
        ["arm", "offered", "served", "lost", "p50 (sim ms)", "p99 (sim ms)",
         "reroutes", "stale serves", "worst staleness (s)", "lag breaches",
         "mints journaled", "double-issued"],
        [
            row("baseline", baseline),
            row("region loss", loss),
            row("partition + revoke", part),
            row("partition + bounce", bounce),
        ],
        title=(f"ABL10: {N_OPS}-op surge ({ARRIVAL_RATE:.0f}/s; 90% "
               f"introspections / 10% mints) across 2 regions; advertised "
               f"staleness bound {BOUND:.0f}s"),
    ))

