"""US6 — user story 6: a cluster user connects to a Jupyter notebook.

Reproduces §IV.A.6: the URL through the zero-trust edge, the identity-
broker login flow, the portal access check, the time-limited RBAC token
passed as an HTTP header over the Zenith reverse tunnel, the
authenticator's validation against the broker's OIDC endpoint, and the
spawn on a compute node — with negative controls for each gate.
"""

import pytest

from repro.core import build_isambard
from repro.core.metrics import format_table
from repro.oidc import make_url
from repro.tunnels.zenith import TOKEN_HEADER
from repro.net.http import HttpRequest


def run_story(seed: int):
    dri = build_isambard(seed=seed)
    s1 = dri.workflows.story1_pi_onboarding("nia")
    s6 = dri.workflows.story6_jupyter("nia")
    return dri, s6


def test_story6_jupyter(benchmark, report):
    dri, s6 = benchmark.pedantic(run_story, args=(14,), rounds=3, iterations=1)
    assert s6.ok, s6.steps
    wf = dri.workflows
    rows = [["authorised researcher via edge + Zenith", "notebook spawned",
             str(s6.data["node"])]]

    # unauthorised (but authenticated) user is stopped at the portal check
    wf.create_researcher("lurker")
    lurker = wf.personas["lurker"]
    resp, _ = lurker.agent.get(
        make_url("edge", "/zenith/app", service="jupyter", path="/"))
    if resp.status == 401:
        login = wf.login(lurker)  # fails authorisation-led registration
        rows.append(["user with no project",
                     "denied at registration" if login.status == 403
                     else "ALLOWED (wrong)", "-"])
        assert login.status == 403

    # forged/absent token header straight at the authenticator
    direct = dri.jupyter.handle(HttpRequest("GET", "/"))
    rows.append(["request without the token header",
                 "denied by authenticator" if direct.status == 403
                 else "ALLOWED (wrong)", "-"])
    forged = dri.jupyter.handle(HttpRequest(
        "GET", "/", headers={TOKEN_HEADER: "forged.token.here"}))
    rows.append(["forged token header",
                 "denied by authenticator" if forged.status == 403
                 else "ALLOWED (wrong)", "-"])
    assert direct.status == 403 and forged.status == 403

    # revocation is caught by the OIDC introspection round-trip even
    # though the token still has a valid signature and lifetime
    nia = wf.personas["nia"]
    token = wf.mint(nia, "jupyter", "pi").body
    dri.broker.tokens.revoke_jti(str(token["jti"]))
    revoked = dri.jupyter.handle(HttpRequest(
        "GET", "/", headers={TOKEN_HEADER: str(token["token"])}))
    rows.append(["revoked (but unexpired) token",
                 "denied via broker introspection" if revoked.status == 403
                 else "ALLOWED (wrong)", "-"])
    assert revoked.status == 403

    # tunnel kill switch takes the URL offline
    dri.zenith.kill_tunnel("jupyter")
    offline, _ = nia.agent.get(
        make_url("edge", "/zenith/app", service="jupyter", path="/"))
    rows.append(["Zenith tunnel killed",
                 "service offline" if offline.status in (403, 503)
                 else "ALLOWED (wrong)", "-"])

    steps = "\n".join(f"  {i+1}. {s}" for i, s in enumerate(s6.steps))
    report("story6_jupyter",
           format_table(["scenario", "outcome", "node"], rows,
                        title="US6: Jupyter via Zenith (§IV.A.6)")
           + "\n\nsteps:\n" + steps)
