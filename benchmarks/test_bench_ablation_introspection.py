"""ABL5 — what the broker round-trip buys the Jupyter authenticator.

§IV.A.6: the authenticator "validates this token against the OpenID
Connect endpoint from the identity broker".  Local JWKS validation alone
would accept a *revoked* token until it expires; the introspection
round-trip costs one MDC→FDS request per session but closes that gap to
zero.  The ablation measures both sides: revoked-token acceptance window
and per-login network cost, with introspection on vs. off.
"""

import pytest

from repro.core import build_isambard
from repro.core.metrics import format_table
from repro.net.http import HttpRequest
from repro.tunnels.zenith import TOKEN_HEADER


def acceptance_after_revocation(introspect: bool, seed: int):
    """Mint a token, revoke it, and see whether Jupyter still admits."""
    dri = build_isambard(seed=seed, rbac_default_ttl=900)
    if not introspect:
        dri.jupyter.broker_endpoint = None  # local validation only
    s1 = dri.workflows.story1_pi_onboarding("olu")
    olu = dri.workflows.personas["olu"]
    minted = dri.workflows.mint(olu, "jupyter", "pi").body
    dri.broker.tokens.revoke_jti(str(minted["jti"]))

    # probe every 60 s until the (revoked) token stops being accepted
    window = 0.0
    while window < 1200:
        resp = dri.jupyter.handle(HttpRequest(
            "GET", "/", headers={TOKEN_HEADER: str(minted["token"])}))
        if not resp.ok:
            break
        dri.clock.advance(60)
        window += 60
    hops_before = dri.network.messages_delivered
    # cost side: one fresh, valid login
    fresh = dri.workflows.mint(olu, "jupyter", "pi").body["token"]
    dri.jupyter.handle(HttpRequest("GET", "/", headers={TOKEN_HEADER: fresh}))
    auth_hops = dri.network.messages_delivered - hops_before
    return dri, window, auth_hops


def test_ablation_introspection(benchmark, report):
    dri_on, window_on, hops_on = benchmark.pedantic(
        acceptance_after_revocation, args=(True, 91), rounds=1, iterations=1)
    dri_off, window_off, hops_off = acceptance_after_revocation(False, 92)

    # shape: introspection closes the revocation gap completely; without
    # it the revoked token rides until expiry (TTL-bounded)
    assert window_on == 0.0
    assert 0 < window_off <= 900 + 60
    # and costs exactly the introspection round-trip (1 extra delivered hop
    # at the authenticator; the mint path is identical in both runs)
    assert hops_on > hops_off

    rows = [
        ["local JWKS + broker introspection", f"{window_on:.0f}",
         hops_on, "tenet 6: per-session, revocation-aware"],
        ["local JWKS only", f"{window_off:.0f}",
         hops_off, "revoked tokens ride until expiry"],
    ]
    report("ablation_introspection", format_table(
        ["authenticator mode", "revoked-token acceptance window (s)",
         "network messages per login", "note"],
        rows,
        title="ABL5: validating against the broker's OIDC endpoint (§IV.A.6)",
    ))
