"""ABL8 — crash-fault tolerance: what journaling and failover buy.

The paper's IAM services run as replicated managed services: §IV.B's
workshop assumes the broker, portal and SSH CA survive pod kills without
losing sessions, serials or the audit chain.  This ablation crashes each
stateful service in the middle of an RSECon-style login storm and
measures, with the write-ahead journal on vs. off:

* whether the six user stories pass on the recovered control plane;
* recovery time (deterministic: restart charge + per-entry replay cost);
* the security invariants — audit hash-chain continuity across the
  crash, strictly monotonic CA serials, and *no revoked credential
  resurrected* by a restart;
* the failover arm: the standby is promoted inside the controller's
  health-check budget and the deposed primary is fenced at the journal
  (its mint attempts raise ``EpochFenced`` and commit nothing).

Everything runs on the simulated clock, so both arms are bit-for-bit
reproducible; the determinism assertion re-runs one arm and compares
fingerprints.  ``ABL8_QUICK=1`` shrinks the fleet for CI smoke runs.
"""

import os

from repro.core import build_isambard
from repro.core.metrics import format_table
from repro.errors import EpochFenced, ServiceUnavailable
from repro.resilience.durability import REPLAY_COST_PER_ENTRY, RESTART_COST

QUICK = os.environ.get("ABL8_QUICK") == "1"
N_USERS = 4 if QUICK else 10

SERVICES = ("broker", "portal", "ssh-ca", "idp-lastresort")


def _six_stories(wf, project_id, suffix):
    return [
        wf.story1_pi_onboarding(f"pi{suffix}", project_name=f"proj{suffix}"),
        wf.story2_admin_registration(f"ops{suffix}"),
        wf.story3_researcher_setup(project_id, "trainer", f"res{suffix}"),
        wf.story4_ssh_session(f"res{suffix}"),
        wf.story5_privileged_operation(f"ops{suffix}"),
        wf.story6_jupyter(f"res{suffix}"),
    ]


def crash_arm(durable: bool, seed: int, target: str):
    """Onboard a fleet, crash ``target`` (and its domain's audit log)
    mid-storm, restart, and take the post-mortem measurements."""
    dri = build_isambard(seed=seed, durability=durable)
    wf = dri.workflows
    s1 = wf.story1_pi_onboarding("trainer", project_name="abl8",
                                 gpu_hours=100_000.0)
    assert s1.ok, s1.steps
    project_id = str(s1.data["project_id"])
    users = [f"trainee{i:02d}" for i in range(N_USERS)]
    for name in users:
        assert wf.story3_researcher_setup(project_id, "trainer", name).ok

    # a revocation that must survive the crash (the resurrection check)
    minted = wf.mint(wf.personas["trainer"], "jupyter", "pi").body
    revoked_jti = str(minted["jti"])
    assert dri.broker.tokens.revoke_jti(revoked_jti)
    serial_before = dri.ssh_ca._serial

    # --- the storm: half the fleet is in when the crash lands ---------
    pre_ok = sum(wf.story6_jupyter(n).ok for n in users[: N_USERS // 2])
    fds_before = len(dri.logs["fds"])
    dri.crash(target)
    dri.crash("audit-fds")          # the same node hosted the audit log
    down_failures = 0
    for name in users[N_USERS // 2:]:       # traffic during the outage
        try:
            if not wf.story6_jupyter(name).ok:
                down_failures += 1
        except ServiceUnavailable:
            down_failures += 1

    reports = [dri.restart(target), dri.restart("audit-fds")]
    entries = sum(r.entries_replayed for r in reports if r is not None)
    recovery = sum(r.duration for r in reports if r is not None)
    # pre-crash audit history that survived the restart (the journaled
    # arm replays all of it; a cold restart comes back empty)
    audit_lost = fds_before - len(dri.logs["fds"])

    # --- post-mortem --------------------------------------------------
    post_ok = sum(wf.story6_jupyter(n).ok for n in users[N_USERS // 2:])
    stories = _six_stories(wf, project_id, "9")
    stories_ok = sum(r.ok for r in stories)
    chains_ok = all(log.verify_chain()[0] for log in dri.logs.values())
    if durable:
        resurrected = not dri.broker.tokens.is_invalid(revoked_jti)
    else:
        # cold restart: the revocation list died with the process
        resurrected = not dri.broker.tokens.is_revoked(revoked_jti)
    serial_after = dri.ssh_ca._serial

    fingerprint = (
        pre_ok, post_ok, stories_ok, entries, round(recovery, 9),
        round(dri.clock.now(), 9), audit_lost,
        dri.broker.state_hash(), dri.portal.state_hash(),
        dri.ssh_ca.state_hash(),
    )
    return {
        "dri": dri,
        "pre_ok": pre_ok, "post_ok": post_ok, "down_failures": down_failures,
        "stories_ok": stories_ok, "n_stories": len(stories),
        "entries": entries, "recovery": recovery,
        "chains_ok": chains_ok,
        "audit_lost": audit_lost,
        "resurrected": resurrected,
        "serial_monotonic": serial_after > serial_before,
        "fingerprint": fingerprint,
    }


def failover_arm(seed: int):
    """Crash the broker *primary* and let the health-checked standby
    take over: no manual restart, promotion inside the budget, deposed
    primary fenced at the journal."""
    dri = build_isambard(seed=seed, failover=True)
    wf = dri.workflows
    s1 = wf.story1_pi_onboarding("trainer", project_name="abl8-ha",
                                 gpu_hours=100_000.0)
    assert s1.ok
    project_id = str(s1.data["project_id"])
    users = [f"trainee{i:02d}" for i in range(N_USERS)]
    for name in users:
        assert wf.story3_researcher_setup(project_id, "trainer", name).ok
    pre_ok = sum(wf.story6_jupyter(n).ok for n in users[: N_USERS // 2])

    old_broker = dri.broker
    t_crash = dri.clock.now()
    dri.crash("broker")
    dri.clock.advance(dri.failover.budget + 0.5)    # health checks fire
    pair = dri.failover.pairs["broker"]
    assert pair.promoted and dri.broker is not old_broker
    promotion_time = pair.promoted_at - t_crash

    # the zombie ex-primary tries to keep minting — and commits nothing
    fenced = False
    try:
        old_broker.tokens.mint("zombie", "jupyter", "pi")
    except EpochFenced:
        fenced = True
    post_ok = sum(wf.story6_jupyter(n).ok for n in users[N_USERS // 2:])
    stories = _six_stories(wf, project_id, "9")
    return {
        "dri": dri, "pre_ok": pre_ok, "post_ok": post_ok,
        "stories_ok": sum(r.ok for r in stories), "n_stories": len(stories),
        "promotion_time": promotion_time, "budget": dri.failover.budget,
        "fenced": fenced,
        "zombie_tokens": len(old_broker.tokens._issued),
        "entries": pair.report.entries_replayed,
        "chains_ok": all(log.verify_chain()[0] for log in dri.logs.values()),
    }


def test_ablation_crash_recovery(benchmark, report):
    journaled = {}
    for i, target in enumerate(SERVICES):
        journaled[target] = (
            benchmark.pedantic(crash_arm, args=(True, 101, target),
                               rounds=1, iterations=1)
            if i == 0 else crash_arm(True, 101 + i, target)
        )
    cold = crash_arm(False, 100, "broker")
    ha = failover_arm(110)

    # (a) with the journal, every service recovers losslessly: the whole
    #     fleet finishes, all six stories pass, and recovery is exactly
    #     the deterministic restart + per-entry replay charge
    for target, arm in journaled.items():
        assert arm["post_ok"] == N_USERS - N_USERS // 2, target
        assert arm["stories_ok"] == arm["n_stories"], target
        assert arm["chains_ok"] and arm["audit_lost"] == 0, target
        assert not arm["resurrected"] and arm["serial_monotonic"], target
        bound = 2 * RESTART_COST + REPLAY_COST_PER_ENTRY * arm["entries"]
        assert arm["recovery"] <= bound + 1e-9, target

    # (b) journaling off: the crash demonstrably violates the invariants
    #     — the revoked token rises from the dead and audit history is
    #     simply gone (the chain "verifies" only because it is empty)
    assert cold["resurrected"]
    assert cold["audit_lost"] > 0
    assert cold["stories_ok"] < cold["n_stories"]

    # (c) failover: promotion lands inside the health-check budget, the
    #     fleet finishes against the standby with zero manual recovery,
    #     and the deposed primary is fenced with nothing committed
    assert ha["promotion_time"] <= ha["budget"]
    assert ha["post_ok"] == N_USERS - N_USERS // 2
    assert ha["stories_ok"] == ha["n_stories"]
    assert ha["fenced"] and ha["zombie_tokens"] == 0
    assert ha["chains_ok"]

    # (d) crash + recovery is bit-for-bit reproducible from its seed
    assert crash_arm(True, 101, "broker")["fingerprint"] == \
        journaled["broker"]["fingerprint"]

    rows = []
    for target, arm in journaled.items():
        rows.append([
            f"journal on, crash {target}",
            f"{arm['post_ok']}/{N_USERS - N_USERS // 2}",
            f"{arm['stories_ok']}/{arm['n_stories']}",
            arm["entries"], f"{arm['recovery'] * 1000:.2f}",
            "intact" if arm["chains_ok"] else "BROKEN",
            "no" if not arm["resurrected"] else "YES (wrong)",
            "full recovery; serials monotonic",
        ])
    rows.append([
        "journal off, crash broker",
        f"{cold['post_ok']}/{N_USERS - N_USERS // 2}",
        f"{cold['stories_ok']}/{cold['n_stories']}",
        0, "—", f"{cold['audit_lost']} events lost",
        "YES" if cold["resurrected"] else "no",
        "revoked token resurrected; sessions gone",
    ])
    rows.append([
        "failover, crash broker primary",
        f"{ha['post_ok']}/{N_USERS - N_USERS // 2}",
        f"{ha['stories_ok']}/{ha['n_stories']}",
        ha["entries"],
        f"promoted in {ha['promotion_time']:.2f}s (budget {ha['budget']:.0f}s)",
        "intact" if ha["chains_ok"] else "BROKEN",
        "no",
        "deposed primary fenced (EpochFenced), 0 zombie tokens",
    ])
    report("ablation_crash_recovery", format_table(
        ["arm", "post-crash logins", "user stories", "entries replayed",
         "recovery (sim ms)", "audit chain", "revoked resurrected", "note"],
        rows,
        title=(f"ABL8: crash each stateful service mid-storm "
               f"({N_USERS}-user fleet), journaling on vs off vs failover"),
    ))
