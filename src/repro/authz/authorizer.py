"""Continuous re-evaluation: access is a loop, not a gate.

Classic SSO checks policy once, at issuance; zero trust demands the
check never stops.  Three pieces implement that here:

* :class:`PolicyDecisionPoint` — the PDP facade over the deployment's
  :class:`~repro.policy.engine.PolicyEngine`.  It can be taken down by
  the ``pdp_down`` chaos fault, at which point enforcement surfaces
  must decide what to do without fresh decisions.
* :class:`AuthzGuard` — the per-surface PEP-side check.  While the PDP
  answers, admissions refresh the heartbeat; when it is unreachable,
  admissions ride the last good heartbeat for at most
  ``staleness_bound`` seconds and then **fail closed**
  (:class:`~repro.errors.ServiceUnavailable`), never serving a stale
  ALLOW — mirroring the multi-region lag watchdog's contract.
* :class:`ContinuousAuthorizer` — the re-evaluation loop.  Every
  ``reeval_interval`` it replays each identity with live grants through
  the policy engine; an assurance drop, a SOC containment, a
  threat-score jump or a kill-switch activation flips the decision to
  deny and the loop hands the identity to the revocation pipeline.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.audit import AuditLog, Outcome
from repro.clock import SimClock
from repro.errors import ServiceUnavailable
from repro.policy.engine import AccessContext, PolicyEngine

from repro.authz.config import AuthzConfig
from repro.authz.pipeline import RevocationPipeline
from repro.authz.registry import SessionRegistry

__all__ = ["PolicyDecisionPoint", "AuthzGuard", "ContinuousAuthorizer"]


class PolicyDecisionPoint:
    """The PDP: one place every continuous-authorization query lands.

    When a provenance ledger is attached (deployment wiring), every
    evaluation — allow or deny — is recorded with the matched rule, the
    policy pack version and the decision inputs (assurance, threat
    score), so ``explain(identity)`` can answer *why* afterwards.
    """

    def __init__(self, clock: SimClock, engine: PolicyEngine, *,
                 provenance=None) -> None:
        self.clock = clock
        self.engine = engine
        self.provenance = provenance
        self.up = True
        self.decisions = 0

    def decide(self, ctx: AccessContext):
        if not self.up:
            raise ServiceUnavailable("policy decision point unreachable")
        self.decisions += 1
        decision = self.engine.evaluate(ctx)
        if self.provenance is not None:
            self.provenance.record(
                self.clock.now(),
                str(ctx.attrs.get("surface", "pdp")),
                "allow" if decision.allowed else "deny",
                ctx.subject,
                spiffe_id=str(ctx.attrs.get("spiffe_id", "")),
                resource=ctx.resource,
                rule=decision.rule or "default-deny",
                reason=decision.reason,
                pack_version=self.engine.pack_version,
                loa=ctx.loa,
                threat_score=ctx.risk_score,
            )
        return decision

    def down(self) -> None:
        self.up = False

    def restore(self) -> None:
        self.up = True


class AuthzGuard:
    """PEP-side staleness watchdog shared by every enforcement surface.

    ``check(surface)`` is called on every admission (token mint, SSH
    session open, tunnel route, notebook spawn, job submit):

    * PDP up      → refresh the heartbeat, admit;
    * PDP down, heartbeat younger than ``staleness_bound`` → admit on
      the cached posture (counted as a stale allow);
    * PDP down past the bound → **fail closed**: raise
      :class:`~repro.errors.ServiceUnavailable` so the surface denies
      rather than admitting on arbitrarily old policy.
    """

    def __init__(self, clock: SimClock, pdp: PolicyDecisionPoint, *,
                 staleness_bound: float = 30.0,
                 audit: Optional[AuditLog] = None,
                 telemetry=None) -> None:
        self.clock = clock
        self.pdp = pdp
        self.staleness_bound = staleness_bound
        self.audit = audit
        self.telemetry = telemetry
        self.last_ok = clock.now()
        self.stale_allows = 0
        self.fail_closed_denials = 0

    def heartbeat(self) -> None:
        if self.pdp.up:
            self.last_ok = self.clock.now()

    def age(self) -> float:
        return self.clock.now() - self.last_ok

    def check(self, surface: str, *, actor: str = "") -> None:
        now = self.clock.now()
        if self.pdp.up:
            self.last_ok = now
            return
        if now - self.last_ok <= self.staleness_bound:
            self.stale_allows += 1
            # a stale allow leaves no audit event (the admission itself
            # is audited by the surface), but the provenance ledger must
            # still show the PDP heartbeat age this admission rode on
            prov = getattr(self.telemetry, "provenance", None)
            if prov is not None:
                prov.record(
                    now, surface, "allow", actor or "?",
                    reason="stale-allow-within-bound",
                    pdp_staleness=now - self.last_ok,
                )
            return
        self.fail_closed_denials += 1
        if self.telemetry is not None:
            self.telemetry.authz_fail_closed.inc(surface=surface)
        if self.audit is not None:
            self.audit.record(
                now, "authz-guard", actor or "?", "authz.fail_closed",
                surface, Outcome.DENIED,
                reason="pdp-unreachable-past-staleness-bound",
                age=round(now - self.last_ok, 6),
                bound=self.staleness_bound,
            )
        raise ServiceUnavailable(
            f"{surface}: policy decision point unreachable for "
            f"{now - self.last_ok:.1f}s (> {self.staleness_bound:.1f}s "
            "staleness bound); failing closed"
        )


class ContinuousAuthorizer:
    """Re-checks every live grant against policy, continuously.

    Signals that trigger (or feed) re-evaluation:

    * the periodic tick (``reeval_interval``);
    * :meth:`set_threat_score` — SOC page / threat-score jump;
    * :meth:`assurance_changed` — IdP assurance (LoA) change;
    * :meth:`note_containment` — the kill switch marking a principal
      contained (risk 1.0), so re-admission stays denied after teardown;
    * :meth:`on_alert` — wired as a SIEM alert subscriber.
    """

    def __init__(self, clock: SimClock, *,
                 registry: SessionRegistry,
                 pipeline: RevocationPipeline,
                 pdp: PolicyDecisionPoint,
                 guard: AuthzGuard,
                 audit: Optional[AuditLog] = None,
                 config: Optional[AuthzConfig] = None) -> None:
        self.clock = clock
        self.registry = registry
        self.pipeline = pipeline
        self.pdp = pdp
        self.guard = guard
        self.audit = audit
        self.config = config if config is not None else AuthzConfig()
        self._risk: Dict[str, float] = {}    # uid -> SOC risk score
        self._loa: Dict[str, int] = {}       # uid -> current assurance
        self._started = False
        self.ticks = 0
        self.reevaluations = 0
        self.revocations_triggered = 0

    # ------------------------------------------------------------- loop
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.clock.call_later(self.config.reeval_interval, self._tick)

    def _tick(self) -> None:
        self.ticks += 1
        if self.pdp.up:
            self.guard.heartbeat()
            self.pipeline.drive_pending()
            self.reevaluate_all()
        self.clock.call_later(self.config.reeval_interval, self._tick)

    def reevaluate_all(self) -> int:
        """One sweep over every identity with live grants."""
        revoked = 0
        for spiffe in self.registry.identities_with_live_grants():
            if self._reevaluate_identity(spiffe):
                revoked += 1
        return revoked

    def _reevaluate_identity(self, spiffe_id: str) -> bool:
        uid = self.registry.graph.uid_of(spiffe_id)
        ctx = AccessContext(
            subject=uid, role="user", capability="session.continue",
            resource="live-session",
            loa=self._loa.get(uid, self.config.min_loa),
            risk_score=self._risk.get(uid, 0.0),
            time=self.clock.now(),
            attrs={"continuous": True, "spiffe_id": spiffe_id},
        )
        try:
            decision = self.pdp.decide(ctx)
        except ServiceUnavailable:
            return False  # picked up again once the PDP heals
        self.reevaluations += 1
        if decision.allowed:
            return False
        self.revocations_triggered += 1
        if self.audit is not None:
            self.audit.record(
                self.clock.now(), "continuous-authorizer", uid,
                "authz.reevaluation", spiffe_id, Outcome.DENIED,
                rule=decision.rule or "default-deny",
                reason=decision.reason, spiffe_id=spiffe_id,
            )
        self.pipeline.revoke(
            spiffe_id=spiffe_id,
            reason=f"policy:{decision.rule or 'default-deny'}",
            by="continuous-authorizer",
        )
        return True

    # ---------------------------------------------------------- signals
    def set_threat_score(self, uid: str, score: float) -> None:
        """SOC page / threat-score jump: re-evaluate immediately."""
        self._risk[uid] = score
        self._maybe_reevaluate(uid)

    def assurance_changed(self, uid: str, loa: int) -> None:
        """IdP assurance change (step-down, credential expiry)."""
        self._loa[uid] = loa
        self._maybe_reevaluate(uid)

    def note_containment(self, uid: str) -> None:
        """Kill-switch hook: pin the risk score at contained WITHOUT an
        immediate re-evaluation (the kill switch already drove the
        pipeline); keeps the deny sticky for later re-admissions."""
        self._risk[uid] = 1.0

    def on_alert(self, alert) -> None:
        """SIEM alert subscriber: an alert about an actor maxes their
        threat score, which the policy pack's containment rule denies."""
        actor = getattr(alert, "actor", "") or ""
        if actor and actor != "?":
            self.set_threat_score(actor, 1.0)

    def _maybe_reevaluate(self, uid: str) -> None:
        if not self.pdp.up:
            return  # the tick after heal converges this identity
        spiffe = self.registry.graph.identity_of(uid)
        if self.registry.live_grants(spiffe):
            self._reevaluate_identity(spiffe)
