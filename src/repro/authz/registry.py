"""The session registry: every live grant, keyed by canonical identity.

The paper's zero-trust co-design demands that trust be *continuously*
verified — which is only possible if the system knows what it has
granted.  :class:`SessionRegistry` is that ledger: RBAC tokens, issued
SSH certificates, open SSH sessions, Zenith tunnel routes and web
sessions, Jupyter servers and Slurm jobs are all tracked as
:class:`Grant` records keyed by the owning principal's (or workload's)
SPIFFE id, grouped under the four enforcement surfaces the revocation
pipeline fans out to.

The registry is intentionally *not* durable: it is a cached index of
state the enforcement points themselves own durably (the broker journals
its tokens, the CA its serials, the portal its memberships).  What must
survive a crash is the revocation *intent*, and that lives in the
pipeline's journaled outbox.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.clock import SimClock
from repro.errors import ConfigurationError

from repro.authz.config import SURFACES
from repro.authz.identity import IdentityGraph

__all__ = ["Grant", "SessionRegistry"]


@dataclass
class Grant:
    """One live authorisation artefact at one enforcement surface."""

    grant_id: str
    kind: str          # rbac-token | ssh-cert | ssh-session | tunnel |
                       # web-session | jupyter | slurm-job
    surface: str       # tokens | ssh | tunnels | compute
    spiffe_id: str
    subject: str       # the surface's own subject dialect (uid/account/...)
    resource: str      # jti, serial, session id, service name, job id
    project: Optional[str] = None
    granted_at: float = 0.0
    expires_at: Optional[float] = None
    revoked_at: Optional[float] = None
    revoke_reason: str = ""

    def live(self, now: float) -> bool:
        if self.revoked_at is not None:
            return False
        return self.expires_at is None or now < self.expires_at


class SessionRegistry:
    """Tracks every live grant; the revocation pipeline's working set."""

    def __init__(self, clock: SimClock, *,
                 graph: Optional[IdentityGraph] = None,
                 trust_domain: str = "isambard.example") -> None:
        self.clock = clock
        self.graph = graph if graph is not None else IdentityGraph(trust_domain)
        self._grants: Dict[str, Grant] = {}
        # (kind, resource) -> grant_id, so re-registrations (tunnel
        # heartbeats) update in place instead of duplicating
        self._by_resource: Dict[Tuple[str, str], str] = {}
        self._next = 0
        self.tracked = 0
        self.closed = 0

    # ------------------------------------------------------------- tracking
    def track(self, kind: str, surface: str, subject: str, resource: str, *,
              project: Optional[str] = None,
              expires_at: Optional[float] = None,
              workload: bool = False) -> Grant:
        """Record (or refresh) one grant.  ``subject`` may be any dialect
        the surface speaks — the graph resolves it to the canonical id."""
        if surface not in SURFACES:
            raise ConfigurationError(
                f"unknown enforcement surface {surface!r}; "
                f"expected one of {SURFACES}")
        spiffe = self.graph.identity_of(subject, workload=workload)
        existing_id = self._by_resource.get((kind, resource))
        if existing_id is not None:
            grant = self._grants[existing_id]
            # refresh, and un-revoke only if re-granted by a new actor
            # flow (a heartbeat after a kill stays dead until restored)
            if grant.revoked_at is None:
                grant.expires_at = expires_at
                return grant
        self._next += 1
        grant = Grant(
            grant_id=f"grant-{self._next}",
            kind=kind, surface=surface, spiffe_id=spiffe, subject=subject,
            resource=resource, project=project,
            granted_at=self.clock.now(), expires_at=expires_at,
        )
        self._grants[grant.grant_id] = grant
        self._by_resource[(kind, resource)] = grant.grant_id
        self.tracked += 1
        return grant

    # ------------------------------------------------------------- closing
    def close(self, kind: str, resource: str, *, reason: str = "") -> bool:
        """Mark one grant revoked (idempotent)."""
        grant_id = self._by_resource.get((kind, resource))
        if grant_id is None:
            return False
        grant = self._grants[grant_id]
        if grant.revoked_at is not None:
            return False
        grant.revoked_at = self.clock.now()
        grant.revoke_reason = reason
        self.closed += 1
        return True

    def close_surface(self, spiffe_id: str, surface: str, *,
                      reason: str = "", project: Optional[str] = None) -> int:
        """Mark every live grant of an identity at one surface revoked."""
        now = self.clock.now()
        n = 0
        for grant in self._grants.values():
            if grant.spiffe_id != spiffe_id or grant.surface != surface:
                continue
            if project is not None and grant.project != project:
                continue
            if not grant.live(now):
                continue
            grant.revoked_at = now
            grant.revoke_reason = reason
            self.closed += 1
            n += 1
        return n

    # -------------------------------------------------------------- queries
    def live_grants(self, spiffe_id: Optional[str] = None, *,
                    surface: Optional[str] = None,
                    project: Optional[str] = None) -> List[Grant]:
        now = self.clock.now()
        return [
            g for g in self._grants.values()
            if g.live(now)
            and (spiffe_id is None or g.spiffe_id == spiffe_id)
            and (surface is None or g.surface == surface)
            and (project is None or g.project == project)
        ]

    def identities_with_live_grants(self) -> List[str]:
        """Sorted for deterministic re-evaluation order."""
        now = self.clock.now()
        return sorted({g.spiffe_id for g in self._grants.values()
                       if g.live(now)})

    def surfaces_of(self, spiffe_id: str) -> List[str]:
        """Which surfaces hold live grants for an identity (SURFACES order)."""
        live = {g.surface for g in self.live_grants(spiffe_id)}
        return [s for s in SURFACES if s in live]

    def grants(self) -> List[Grant]:
        return list(self._grants.values())
