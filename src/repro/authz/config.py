"""Configuration for the continuous-authorization subsystem."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AuthzConfig", "SURFACES"]

# The four enforcement surfaces every revocation intent fans out to, in
# the order the pipeline drives them.  "tokens" first: once the broker's
# tokens and sessions are dead, nothing can mint its way back onto the
# other surfaces while they are being swept.
SURFACES = ("tokens", "ssh", "tunnels", "compute")


@dataclass(frozen=True)
class AuthzConfig:
    """Knobs for the continuous-authorization pipeline.

    Parameters
    ----------
    trust_domain:
        SPIFFE trust domain canonical identities are minted under.
    staleness_bound:
        How long an enforcement surface may keep admitting on the last
        good PDP heartbeat once the PDP goes unreachable.  Past the
        bound every guarded surface *fails closed* (denies) rather than
        serving a stale ALLOW — the same contract as the multi-region
        lag watchdog.
    reeval_interval:
        Cadence of the continuous re-evaluation loop that re-checks
        every live grant against the policy engine.
    retry_interval:
        How often the pipeline re-drives revocation intents whose
        enforcement surfaces failed or are stuck.
    ttr_bound:
        The advertised time-to-revoke bound under no faults: a
        revocation intent must reach all four surfaces within this many
        simulated seconds (benches assert TTR p99 against it).
    min_loa:
        Assurance floor for *continuing* sessions: when a subject's
        level of assurance drops below this, the re-evaluation loop
        tears their live grants down.
    """

    trust_domain: str = "isambard.example"
    staleness_bound: float = 30.0
    reeval_interval: float = 10.0
    retry_interval: float = 2.0
    ttr_bound: float = 60.0
    min_loa: int = 1
