"""The revocation pipeline: one journaled outbox, four enforcement fans.

Before this layer the repro had *three* unrelated teardown paths — the
portal's ``on_revoke`` closure, the SOC kill switch's lever list, and
ad-hoc per-service ``close_sessions_for`` calls — each with its own idea
of which surfaces exist and none of them crash-safe.  The
:class:`RevocationPipeline` replaces them with a single entry point:

* ``revoke(uid=..., reason=...)`` (or by credential / project) resolves
  the canonical SPIFFE id, journals a :class:`RevocationIntent` into a
  write-ahead outbox, *then* fans out to the registered enforcement
  points in :data:`~repro.authz.config.SURFACES` order;
* each surface's enforcement is idempotent, so retries and replays are
  harmless;
* a surface that fails (or is stuck — see the ``teardown_stuck`` fault)
  leaves the intent pending; a retry timer re-drives it until every
  surface confirms;
* a crash between journal publish and enforcement is exactly the outage
  the outbox exists for: ``recover()`` replays the intent and
  ``verify_recovery`` re-drives everything still pending.

Time-to-revoke (TTR) is measured from intent creation to the last
surface confirming, and exported as the ``repro_authz_ttr_seconds``
histogram so benches can hold the p99 against the configured bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.audit import AuditLog, Outcome
from repro.clock import SimClock
from repro.errors import ConfigurationError, ReproError
from repro.resilience.durability import Durable

from repro.authz.config import SURFACES
from repro.authz.registry import SessionRegistry

__all__ = ["RevocationIntent", "RevocationPipeline"]


@dataclass
class RevocationIntent:
    """One journaled revocation: who, why, and how far teardown got."""

    intent_id: str
    spiffe_id: str
    uid: str
    project: str = ""
    credential: str = ""
    reason: str = ""
    by: str = "pipeline"
    requested_at: float = 0.0
    # surface -> number of grants/artefacts torn down there
    done: Dict[str, int] = field(default_factory=dict)
    completed_at: Optional[float] = None

    @property
    def pending(self) -> List[str]:
        return [s for s in SURFACES if s not in self.done]

    @property
    def complete(self) -> bool:
        return not self.pending

    def ttr(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.requested_at


class RevocationPipeline(Durable):
    """Fans revocation intents out to every enforcement surface.

    When the deployment runs with ``durability=True`` the pipeline is
    attached to a journal and its outbox survives crashes; without one,
    ``_jpublish`` is a no-op and the outbox is in-memory only.

    Parameters
    ----------
    clock, registry, audit, telemetry:
        The usual simulation plumbing; registry resolves identities and
        is updated as surfaces confirm.
    retry_interval:
        How long to wait before re-driving intents left pending by a
        failed or stuck surface.
    """

    name = "authz-pipeline"

    def __init__(self, clock: SimClock, *,
                 registry: SessionRegistry,
                 audit: Optional[AuditLog] = None,
                 telemetry=None,
                 retry_interval: float = 2.0) -> None:
        self.clock = clock
        self.registry = registry
        self.audit = audit
        self.telemetry = telemetry
        self.retry_interval = retry_interval
        # surface -> enforcement action(intent) -> count torn down
        self._points: Dict[str, Callable[[RevocationIntent], int]] = {}
        self._intents: Dict[str, RevocationIntent] = {}
        self._next_intent = 0
        self._stuck: Set[str] = set()
        self._retry_armed = False
        # counters for benches / invariants
        self.revocations = 0
        self.enforcements = 0
        self.retries = 0
        self.resumed = 0
        self.storms_coalesced = 0

    # ---------------------------------------------------------- wiring
    def register_point(self, surface: str,
                       action: Callable[[RevocationIntent], int]) -> None:
        """Register the teardown action for one enforcement surface."""
        if surface not in SURFACES:
            raise ConfigurationError(
                f"unknown enforcement surface {surface!r}; "
                f"expected one of {SURFACES}")
        self._points[surface] = action

    # ---------------------------------------------------------- revoke
    def revoke(self, *, uid: str = "", spiffe_id: str = "",
               credential: str = "", project: str = "",
               reason: str, by: str = "pipeline") -> RevocationIntent:
        """Journal and drive one revocation intent.

        Exactly one of ``uid`` / ``spiffe_id`` identifies the subject
        (``credential`` / ``project`` narrow the scope).  Identical
        still-pending intents are coalesced, so a revocation storm
        against one identity does one teardown, not N.
        """
        if spiffe_id and not uid:
            uid = self.registry.graph.uid_of(spiffe_id)
        if uid and not spiffe_id:
            spiffe_id = self.registry.graph.identity_of(uid)
        if not spiffe_id:
            raise ConfigurationError("revoke() needs a uid or spiffe_id")
        # coalesce: an identical teardown already in flight absorbs this one
        for intent in self._iter_intents():
            if (not intent.complete and intent.spiffe_id == spiffe_id
                    and intent.project == project
                    and intent.credential == credential):
                self.storms_coalesced += 1
                self._drive(intent)
                return intent
        self._next_intent += 1
        intent = RevocationIntent(
            intent_id=f"rev-{self._next_intent}",
            spiffe_id=spiffe_id, uid=uid, project=project,
            credential=credential, reason=reason, by=by,
            requested_at=self.clock.now(),
        )
        # write-ahead: the intent hits the outbox BEFORE any enforcement,
        # so a crash mid-teardown resumes instead of orphaning sessions
        self._jpublish(
            "authz.intent",
            intent_id=intent.intent_id, spiffe_id=spiffe_id, uid=uid,
            project=project, credential=credential, reason=reason, by=by,
            requested_at=intent.requested_at,
        )
        self._intents[intent.intent_id] = intent
        self.revocations += 1
        if self.telemetry is not None:
            self.telemetry.authz_revocations.inc(reason=reason)
        self._drive(intent)
        return intent

    # ----------------------------------------------------------- drive
    def _drive(self, intent: RevocationIntent) -> None:
        for surface in SURFACES:
            if surface in intent.done:
                continue  # idempotent: already confirmed
            if surface in self._stuck:
                continue  # chaos: teardown wedged, retry later
            action = self._points.get(surface)
            if action is None:
                continue  # surface not wired in this deployment shape
            try:
                count = int(action(intent))
            except ReproError:
                continue  # enforcement failed; stays pending for retry
            self._jpublish(
                "authz.enforced",
                intent_id=intent.intent_id, surface=surface, count=count,
            )
            intent.done[surface] = count
            self.enforcements += 1
            self.registry.close_surface(
                intent.spiffe_id, surface,
                reason=intent.reason,
                project=intent.project or None,
            )
        if intent.complete and intent.completed_at is None:
            now = self.clock.now()
            self._jpublish("authz.complete",
                           intent_id=intent.intent_id, completed_at=now)
            intent.completed_at = now
            ttr = intent.ttr() or 0.0
            if self.telemetry is not None:
                self.telemetry.authz_ttr.observe(ttr, time=now)
            self._audit(intent, Outcome.SUCCESS, ttr=round(ttr, 6))
        elif not intent.complete:
            self._audit(intent, Outcome.INFO,
                        pending=",".join(intent.pending))
            self._schedule_retry()

    def drive_pending(self) -> int:
        """Re-drive every pending intent (retry tick, unstick, heal)."""
        pending = [i for i in self._iter_intents() if not i.complete]
        for intent in pending:
            self._drive(intent)
        return len(pending)

    def pending_intents(self) -> List[RevocationIntent]:
        return [i for i in self._iter_intents() if not i.complete]

    def _iter_intents(self) -> List[RevocationIntent]:
        """Intents in deterministic (creation) order."""
        return [self._intents[k] for k in
                sorted(self._intents, key=lambda i: int(i.split("-")[1]))]

    def _schedule_retry(self) -> None:
        if self._retry_armed:
            return
        self._retry_armed = True
        self.clock.call_later(self.retry_interval, self._retry_tick)

    def _retry_tick(self) -> None:
        self._retry_armed = False
        self.retries += 1
        if self.drive_pending() and self.pending_intents():
            self._schedule_retry()

    # ----------------------------------------------------------- chaos
    def stick(self, surface: str) -> None:
        """Wedge one surface's teardown (the ``teardown_stuck`` fault)."""
        self._stuck.add(surface)

    def unstick(self, surface: str) -> None:
        self._stuck.discard(surface)
        if self.pending_intents():
            self.drive_pending()

    def inject_storm(self, count: int) -> int:
        """Fire ``count`` revocations across identities with live grants
        (the ``revocation_storm`` fault); duplicates coalesce."""
        identities = self.registry.identities_with_live_grants()
        if not identities:
            return 0
        fired = 0
        for i in range(count):
            spiffe = identities[i % len(identities)]
            self.revoke(spiffe_id=spiffe, reason="chaos-storm", by="chaos")
            fired += 1
        return fired

    # ------------------------------------------------- durable contract
    def durable_state(self) -> Dict[str, object]:
        return {
            "next_intent": self._next_intent,
            "intents": [
                {
                    "intent_id": i.intent_id, "spiffe_id": i.spiffe_id,
                    "uid": i.uid, "project": i.project,
                    "credential": i.credential, "reason": i.reason,
                    "by": i.by, "requested_at": i.requested_at,
                    "done": dict(i.done), "completed_at": i.completed_at,
                }
                for i in self._iter_intents()
            ],
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self._next_intent = int(state.get("next_intent", 0))  # type: ignore[arg-type]
        for rec in state.get("intents", []):  # type: ignore[union-attr]
            intent = RevocationIntent(
                intent_id=str(rec["intent_id"]),
                spiffe_id=str(rec["spiffe_id"]),
                uid=str(rec["uid"]), project=str(rec.get("project", "")),
                credential=str(rec.get("credential", "")),
                reason=str(rec.get("reason", "")),
                by=str(rec.get("by", "pipeline")),
                requested_at=float(rec.get("requested_at", 0.0)),
                done={str(k): int(v) for k, v in rec.get("done", {}).items()},
                completed_at=rec.get("completed_at"),
            )
            self._intents[intent.intent_id] = intent

    def apply_entry(self, kind: str, data: Dict[str, object]) -> None:
        if kind == "authz.intent":
            intent = RevocationIntent(
                intent_id=str(data["intent_id"]),
                spiffe_id=str(data["spiffe_id"]), uid=str(data["uid"]),
                project=str(data.get("project", "")),
                credential=str(data.get("credential", "")),
                reason=str(data.get("reason", "")),
                by=str(data.get("by", "pipeline")),
                requested_at=float(data.get("requested_at", 0.0)),  # type: ignore[arg-type]
            )
            self._intents[intent.intent_id] = intent
            seq = int(intent.intent_id.split("-")[1])
            self._next_intent = max(self._next_intent, seq)
        elif kind == "authz.enforced":
            intent = self._intents.get(str(data["intent_id"]))
            if intent is not None:
                intent.done[str(data["surface"])] = int(data["count"])  # type: ignore[arg-type]
        elif kind == "authz.complete":
            intent = self._intents.get(str(data["intent_id"]))
            if intent is not None:
                intent.completed_at = float(data["completed_at"])  # type: ignore[arg-type]

    def wipe_state(self) -> None:
        self._intents = {}
        self._next_intent = 0
        self._retry_armed = False

    def verify_recovery(self, report) -> None:
        """The outbox guarantee: anything journaled but not confirmed on
        every surface is re-driven now, on restart."""
        pending = self.pending_intents()
        self.resumed += len(pending)
        if pending:
            self.drive_pending()

    # ------------------------------------------------------------ audit
    def _audit(self, intent: RevocationIntent, outcome: str, **attrs) -> None:
        if self.audit is None:
            return
        self.audit.record(
            self.clock.now(), self.name, intent.by, "authz.revoked",
            intent.spiffe_id, outcome,
            intent=intent.intent_id, reason=intent.reason,
            spiffe_id=intent.spiffe_id, **attrs,
        )
