"""Continuous authorization: identity graph, session registry,
revocation pipeline, and the re-evaluation loop.

This package closes the paper's revocation gap: federated SSO makes it
easy to *grant* access across IdP, SSH CA, Zenith and the schedulers,
but until a single pipeline owned teardown, revoking meant chasing each
surface by hand.  Here every live grant is registered under one
canonical SPIFFE identity, one journaled pipeline fans ``revoke()`` out
to all four enforcement surfaces with bounded time-to-revoke, and a
continuous loop re-checks every session against policy — failing closed
when the decision point is unreachable past the staleness bound.
"""

from dataclasses import dataclass

from repro.authz.authorizer import (
    AuthzGuard,
    ContinuousAuthorizer,
    PolicyDecisionPoint,
)
from repro.authz.config import SURFACES, AuthzConfig
from repro.authz.identity import IdentityGraph
from repro.authz.pipeline import RevocationIntent, RevocationPipeline
from repro.authz.registry import Grant, SessionRegistry

__all__ = [
    "SURFACES",
    "AuthzConfig",
    "AuthzGuard",
    "AuthzRuntime",
    "ContinuousAuthorizer",
    "Grant",
    "IdentityGraph",
    "PolicyDecisionPoint",
    "RevocationIntent",
    "RevocationPipeline",
    "SessionRegistry",
]


@dataclass
class AuthzRuntime:
    """Everything the deployment wires for continuous authorization."""

    config: AuthzConfig
    graph: IdentityGraph
    registry: SessionRegistry
    pipeline: RevocationPipeline
    pdp: PolicyDecisionPoint
    guard: AuthzGuard
    authorizer: ContinuousAuthorizer
