"""The identity graph: one canonical SPIFFE id per principal/workload.

"Identity Control Plane: The Unifying Layer for Zero Trust
Infrastructure" argues for exactly one identity graph behind every
enforcement hop.  The repro's enforcement points each speak their own
subject dialect — the broker speaks federated uids, sshd speaks UNIX
accounts, Zenith speaks service-token subjects — and before this layer a
revocation had to know every dialect.  :class:`IdentityGraph` is the
translation table: principals are minted a ``spiffe://<td>/user/<uid>``
id at onboarding, workloads get ``workload/<name>``, and aliases (the
per-project UNIX accounts the portal allocates) are bound to the owning
principal, so ``revoke(identity)`` can reach a live SSH session opened
under ``proj1-alice`` from the federated uid ``alice`` alone.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.federation.spiffe import (
    TrustDomainAuthority,
    principal_id,
    workload_id,
)

__all__ = ["IdentityGraph"]


class IdentityGraph:
    """Canonical-identity minting plus alias resolution.

    Parameters
    ----------
    trust_domain:
        SPIFFE trust domain ids are minted under.
    authority:
        Optional :class:`TrustDomainAuthority`; when present, minted
        principals are also attested there so SVIDs can be issued for
        humans exactly like for workloads.
    """

    def __init__(self, trust_domain: str = "isambard.example", *,
                 authority: Optional[TrustDomainAuthority] = None) -> None:
        self.trust_domain = trust_domain
        self.authority = authority
        self._principals: Dict[str, str] = {}   # uid -> spiffe id
        self._workloads: Dict[str, str] = {}    # name -> spiffe id
        self._accounts: Dict[str, str] = {}     # unix account -> uid

    # ------------------------------------------------------------- minting
    def principal(self, uid: str) -> str:
        """Mint (or fetch) the canonical id of a human principal."""
        spiffe = self._principals.get(uid)
        if spiffe is None:
            spiffe = principal_id(self.trust_domain, uid)
            self._principals[uid] = spiffe
            if self.authority is not None and not self.authority.registered(
                    f"user/{uid}"):
                self.authority.register_principal(uid)
        return spiffe

    def workload(self, name: str) -> str:
        """Mint (or fetch) the canonical id of a workload/service."""
        spiffe = self._workloads.get(name)
        if spiffe is None:
            spiffe = workload_id(self.trust_domain, name)
            self._workloads[name] = spiffe
        return spiffe

    def bind_account(self, account: str, uid: str) -> None:
        """Alias a per-project UNIX account to its owning principal
        (the portal calls this when the account is allocated)."""
        self._accounts[account] = uid

    # ----------------------------------------------------------- resolution
    def identity_of(self, subject: str, *, workload: bool = False) -> str:
        """Canonical id for any subject dialect: a federated uid, a UNIX
        account alias, or a service name (``workload=True``)."""
        if workload:
            return self.workload(subject)
        uid = self._accounts.get(subject, subject)
        return self.principal(uid)

    def uid_of(self, spiffe: str) -> str:
        """The bare subject behind a canonical id (last path segment)."""
        return spiffe.rsplit("/", 1)[-1] if "/" in spiffe else spiffe

    def accounts_of(self, uid: str) -> List[str]:
        """Every UNIX account aliased to ``uid``, sorted for determinism."""
        return sorted(a for a, u in self._accounts.items() if u == uid)

    def known(self, spiffe: str) -> bool:
        return (spiffe in self._principals.values()
                or spiffe in self._workloads.values())
