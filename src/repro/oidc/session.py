"""Server-side SSO sessions with per-session expiry and revocation.

Zero-trust tenet 3 — "access to individual enterprise resources is
granted on a per-session basis" — makes sessions first-class: every
provider in the stack (MyAccessID, the broker, the admin IdP) holds a
:class:`SessionStore`, sessions are time-limited, and the kill switch can
revoke them instantly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.clock import SimClock
from repro.ids import IdFactory

__all__ = ["Session", "SessionStore"]


@dataclass
class Session:
    """An authenticated principal's live session at one provider."""

    sid: str
    subject: str
    claims: Dict[str, object]
    auth_time: float
    expires_at: float
    revoked: bool = False
    amr: List[str] = field(default_factory=list)  # authentication methods used

    def active(self, now: float) -> bool:
        return not self.revoked and now < self.expires_at


class SessionStore:
    """Sessions keyed by unguessable ``sid`` cookie values."""

    def __init__(self, clock: SimClock, ids: IdFactory, *, ttl: float = 3600.0) -> None:
        self.clock = clock
        self.ids = ids
        self.ttl = ttl
        self._sessions: Dict[str, Session] = {}

    def create(
        self,
        subject: str,
        claims: Optional[Dict[str, object]] = None,
        *,
        amr: Optional[List[str]] = None,
        ttl: Optional[float] = None,
    ) -> Session:
        sid = self.ids.secret(24)
        now = self.clock.now()
        session = Session(
            sid=sid,
            subject=subject,
            claims=dict(claims or {}),
            auth_time=now,
            expires_at=now + (ttl if ttl is not None else self.ttl),
            amr=list(amr or []),
        )
        self._sessions[sid] = session
        return session

    def get(self, sid: Optional[str]) -> Optional[Session]:
        """Return the session if it exists and is still active."""
        if sid is None:
            return None
        session = self._sessions.get(sid)
        if session is None or not session.active(self.clock.now()):
            return None
        return session

    def revoke(self, sid: str) -> bool:
        session = self._sessions.get(sid)
        if session is None:
            return False
        session.revoked = True
        return True

    def revoke_subject(self, subject: str) -> int:
        """Sever every session belonging to ``subject`` (kill switch path)."""
        n = 0
        for session in self._sessions.values():
            if session.subject == subject and not session.revoked:
                session.revoked = True
                n += 1
        return n

    def active_sessions(self) -> List[Session]:
        now = self.clock.now()
        return [s for s in self._sessions.values() if s.active(now)]

    # ------------------------------------------------------------------
    # durability support (journal replay at the owning provider)
    # ------------------------------------------------------------------
    def export_sessions(self) -> List[Session]:
        """Every stored session, including revoked/expired ones — the
        journal keeps full fidelity so replay is exact."""
        return list(self._sessions.values())

    def restore(self, session: Session) -> None:
        """Re-insert a session exactly as journaled (sid preserved)."""
        self._sessions[session.sid] = session

    def wipe(self) -> None:
        self._sessions = {}

    def __len__(self) -> int:
        return len(self._sessions)
