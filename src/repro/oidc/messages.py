"""OIDC message helpers: simulated URLs and flow dataclasses.

URLs in the simulation are ``https://<endpoint>/<path>?<query>`` where
``<endpoint>`` is the network endpoint name.  :func:`make_url` /
:func:`parse_url` convert between the string form (what travels in
``Location`` headers and ``redirect_uri`` parameters) and the structured
form the network layer needs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlencode, urlsplit

from repro.crypto.jws import b64url_encode
from repro.errors import ConfigurationError

__all__ = [
    "make_url",
    "parse_url",
    "pkce_challenge",
    "ClientConfig",
    "AuthorizationCode",
]


def make_url(endpoint: str, path: str, /, **params: object) -> str:
    """Build a simulated https URL pointing at a network endpoint."""
    if not path.startswith("/"):
        raise ConfigurationError(f"path must start with '/', got {path!r}")
    query = urlencode({k: str(v) for k, v in params.items() if v is not None})
    return f"https://{endpoint}{path}" + (f"?{query}" if query else "")


def parse_url(url: str) -> Tuple[str, str, Dict[str, str]]:
    """Split a simulated URL into (endpoint, path, params)."""
    parts = urlsplit(url)
    if parts.scheme != "https" or not parts.netloc:
        raise ConfigurationError(f"not a simulated https URL: {url!r}")
    return parts.netloc, parts.path or "/", dict(parse_qsl(parts.query))


def pkce_challenge(verifier: str) -> str:
    """RFC 7636 S256 code challenge for a verifier string."""
    return b64url_encode(hashlib.sha256(verifier.encode("ascii")).digest())


@dataclass
class ClientConfig:
    """A registered OAuth2/OIDC relying party.

    ``confidential`` clients authenticate to the token endpoint with
    ``client_secret``; public clients (the SSH certificate client app on a
    laptop) must use PKCE instead.
    """

    client_id: str
    redirect_uris: Tuple[str, ...]
    client_secret: Optional[str] = None
    require_pkce: bool = True
    allowed_scopes: Tuple[str, ...] = ("openid", "profile", "projects")

    @property
    def confidential(self) -> bool:
        return self.client_secret is not None

    def redirect_uri_valid(self, uri: str) -> bool:
        return uri in self.redirect_uris


@dataclass
class AuthorizationCode:
    """A single-use authorization code and everything bound to it."""

    code: str
    client_id: str
    redirect_uri: str
    subject: str
    claims: Dict[str, object]
    scope: str
    nonce: Optional[str]
    code_challenge: Optional[str]
    auth_time: float
    expires_at: float
    used: bool = False


@dataclass
class DeviceAuthorization:
    """State of one RFC 8628 device-authorization-grant flow."""

    device_code: str
    user_code: str          # short code the human types, e.g. "WDJB-MJHT"
    client_id: str
    scope: str
    created_at: float
    expires_at: float
    interval: float = 5.0   # advisory polling interval
    # filled in when the user approves at the verification page
    subject: Optional[str] = None
    claims: Dict[str, object] = field(default_factory=dict)
    auth_time: float = 0.0
    denied: bool = False
    redeemed: bool = False
    last_poll: float = -1e9

    @property
    def approved(self) -> bool:
        return self.subject is not None and not self.denied
