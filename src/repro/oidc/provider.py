"""A from-scratch OpenID Connect provider (authorization-code + PKCE).

This is the open-protocol workhorse of the reproduction: MyAccessID, the
identity broker, the Identity-Provider-of-Last-Resort and the cloud admin
IdP are all subclasses.  Implemented endpoints:

* ``GET  /.well-known/openid-configuration`` — discovery document
* ``GET  /jwks``          — verification keys (JWKS)
* ``GET  /authorize``     — authorization endpoint (code flow only)
* ``POST /token``         — code exchange, with PKCE and client auth
* ``GET  /userinfo``      — claims for a bearer access token
* ``POST /introspect``    — RFC 7662 token introspection
* ``POST /revoke``        — revocation by ``jti``

Subclasses provide the *login experience*: routes that authenticate the
user however that provider does (federated assertion, password+TOTP,
hardware key) and then call :meth:`OidcProvider.create_session`.  The
``/authorize`` endpoint answers ``401 login_required`` until a session
cookie exists — mirroring the redirect-to-login dance of real OIDC.

Security behaviours implemented because the paper's design depends on
them: single-use codes (replay revokes previously issued tokens), exact
``redirect_uri`` matching, S256 PKCE for public clients, short token
lifetimes, per-session expiry, and audit events for every decision.
"""

from __future__ import annotations

import hmac as _hmac
from dataclasses import asdict
from typing import Dict, List, Optional

from repro.audit import AuditLog, Outcome
from repro.clock import SimClock
from repro.crypto import JwkSet, JwtValidator, encode_jwt
from repro.crypto.keys import generate_signing_key
from repro.errors import ConfigurationError, TokenRevoked
from repro.ids import IdFactory
from repro.net.http import HttpRequest, HttpResponse, Service, route
from repro.oidc.messages import (
    AuthorizationCode,
    ClientConfig,
    DeviceAuthorization,
    make_url,
    pkce_challenge,
)
from repro.oidc.session import Session, SessionStore
from repro.resilience.durability import Durable, ServiceJournal

__all__ = ["OidcProvider"]


def _parse_cookie(header: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for part in header.split(";"):
        if "=" in part:
            k, _, v = part.strip().partition("=")
            out[k] = v
    return out


class OidcProvider(Service, Durable):
    """Base OIDC provider.  See module docstring for the endpoint map.

    When the deployment attaches a journal (``durability=True``), every
    durable mutation — client registrations, SSO sessions, authorization
    codes, issued/revoked token ids, key generations — is committed to
    the write-ahead journal, so a crash recovers losslessly.  Device
    flows and other in-flight login scratch state are deliberately
    transient: a crash aborts them and the user simply retries.
    Signing keys are never serialized — they live in the journal's
    KMS-modelled vault and are re-adopted on recovery.

    Parameters
    ----------
    name:
        Service/endpoint name; the issuer defaults to ``https://<name>``.
    clock, ids, audit:
        Shared simulation plumbing.
    session_ttl:
        SSO session lifetime (seconds).
    code_ttl, access_ttl, id_ttl:
        Authorization-code and token lifetimes.  The paper's design keeps
        these short; defaults are 60 s / 300 s / 300 s.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        ids: IdFactory,
        *,
        audit: Optional[AuditLog] = None,
        issuer: Optional[str] = None,
        session_ttl: float = 3600.0,
        code_ttl: float = 60.0,
        access_ttl: float = 300.0,
        id_ttl: float = 300.0,
    ) -> None:
        super().__init__(name)
        self.clock = clock
        self.ids = ids
        self.audit = audit if audit is not None else AuditLog(f"{name}-audit")
        self.issuer = issuer or f"https://{name}"
        self._key_generation = 1
        self.key = generate_signing_key("EdDSA", kid=f"{name}-k1")
        self.jwks = JwkSet([self.key.public()])
        self.sessions = SessionStore(clock, ids, ttl=session_ttl)
        self.code_ttl = code_ttl
        self.access_ttl = access_ttl
        self.id_ttl = id_ttl
        self._clients: Dict[str, ClientConfig] = {}
        self._codes: Dict[str, AuthorizationCode] = {}
        # jti -> (subject, claims dict, expiry); doubles as the userinfo store
        self._issued: Dict[str, Dict[str, object]] = {}
        self._revoked_jtis: set[str] = set()
        self._code_tokens: Dict[str, List[str]] = {}  # code -> jtis minted from it
        self._device_flows: Dict[str, DeviceAuthorization] = {}  # device_code ->
        self._device_by_user_code: Dict[str, str] = {}
        self.device_code_ttl = 600.0
        # scale-out hooks: the deployment's InvalidationBus (key rotations
        # and revocations fan out to replica caches through it) and the
        # upstream-call counters the cache-efficacy benches read
        self.invalidation_bus = None
        self.jwks_serves = 0
        self.introspections = 0

    # ------------------------------------------------------------------
    # client registry
    # ------------------------------------------------------------------
    def register_client(
        self,
        client_id: str,
        redirect_uris: List[str],
        *,
        confidential: bool = False,
        require_pkce: Optional[bool] = None,
    ) -> ClientConfig:
        """Register a relying party.  Returns its configuration (including
        the generated secret for confidential clients)."""
        if client_id in self._clients:
            raise ConfigurationError(f"client {client_id!r} already registered")
        secret = self.ids.secret(32) if confidential else None
        cfg = ClientConfig(
            client_id=client_id,
            redirect_uris=tuple(redirect_uris),
            client_secret=secret,
            require_pkce=(not confidential) if require_pkce is None else require_pkce,
        )
        self._jpublish("oidc.client", **asdict(cfg))
        self._clients[client_id] = cfg
        return cfg

    def client(self, client_id: str) -> Optional[ClientConfig]:
        return self._clients.get(client_id)

    # ------------------------------------------------------------------
    # key rotation
    # ------------------------------------------------------------------
    def rotate_key(self) -> str:
        """Rotate the signing key: new tokens use the new kid, tokens
        signed before rotation keep verifying (the old public key stays
        in the published JWKS until :meth:`retire_key`).  Returns the new
        kid.  Relying parties that cache the JWKS must re-fetch; local
        validators sharing ``self.jwks`` see the new key immediately.
        """
        new_key = generate_signing_key(
            "EdDSA", kid=f"{self.name}-k{self._key_generation + 1}"
        )
        if self.journal is not None:
            # the key object itself goes to the KMS-modelled vault; only
            # the generation/kid facts enter the journal
            self.journal.seal(f"signing-key:{new_key.kid}", new_key)
        self._jpublish("oidc.key_rotated",
                       generation=self._key_generation + 1, kid=new_key.kid)
        self._key_generation += 1
        self.jwks.add(new_key.public())
        self.key = new_key
        if self.invalidation_bus is not None:
            self.invalidation_bus.publish("jwks.rotated", key=self.name,
                                          kid=new_key.kid)
        self._audit("operator", "key.rotated", new_key.kid, Outcome.INFO)
        return new_key.kid

    def retire_key(self, kid: str) -> None:
        """Drop an old key from the JWKS (end of the grace window):
        anything still signed under it stops verifying."""
        if kid == self.key.kid:
            raise ConfigurationError("cannot retire the active signing key")
        self._jpublish("oidc.key_retired", kid=kid)
        self.jwks.retire(kid)
        self._audit("operator", "key.retired", kid, Outcome.INFO)

    # ------------------------------------------------------------------
    # session plumbing for subclasses
    # ------------------------------------------------------------------
    def create_session(
        self,
        subject: str,
        claims: Dict[str, object],
        *,
        amr: List[str],
        ttl: Optional[float] = None,
    ) -> Session:
        session = self.sessions.create(subject, claims, amr=amr, ttl=ttl)
        self._jpublish("oidc.session", **self._session_dict(session))
        self._audit(subject, "session.create", session.sid, Outcome.SUCCESS, amr=amr)
        return session

    def session_from_request(self, request: HttpRequest) -> Optional[Session]:
        cookies = _parse_cookie(request.headers.get("Cookie", ""))
        return self.sessions.get(cookies.get("sid"))

    @staticmethod
    def set_session_cookie(response: HttpResponse, session: Session) -> HttpResponse:
        response.headers["Set-Cookie"] = f"sid={session.sid}"
        return response

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    @route("GET", "/.well-known/openid-configuration")
    def discovery_document(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json(
            {
                "issuer": self.issuer,
                "authorization_endpoint": make_url(self.name, "/authorize"),
                "token_endpoint": make_url(self.name, "/token"),
                "userinfo_endpoint": make_url(self.name, "/userinfo"),
                "jwks_uri": make_url(self.name, "/jwks"),
                "introspection_endpoint": make_url(self.name, "/introspect"),
                "revocation_endpoint": make_url(self.name, "/revoke"),
                "response_types_supported": ["code"],
                "code_challenge_methods_supported": ["S256"],
                "id_token_signing_alg_values_supported": [self.key.alg],
            }
        )

    @route("GET", "/jwks")
    def jwks_endpoint(self, request: HttpRequest) -> HttpResponse:
        self.jwks_serves += 1
        return HttpResponse.json(self.jwks.to_jwks())

    # ------------------------------------------------------------------
    # authorization endpoint
    # ------------------------------------------------------------------
    @route("GET", "/authorize")
    def authorize(self, request: HttpRequest) -> HttpResponse:
        q = request.query
        client = self._clients.get(q.get("client_id", ""))
        if client is None:
            return HttpResponse.error(400, "unknown client_id")
        redirect_uri = q.get("redirect_uri", "")
        if not client.redirect_uri_valid(redirect_uri):
            # Never redirect to an unregistered URI — open-redirect hardening.
            self._audit(
                q.get("client_id", "?"), "authorize.bad_redirect", redirect_uri,
                Outcome.DENIED,
            )
            return HttpResponse.error(400, "redirect_uri not registered")
        if q.get("response_type") != "code":
            return self._authz_error(redirect_uri, q, "unsupported_response_type")
        scope = q.get("scope", "openid")
        if client.require_pkce and not q.get("code_challenge"):
            return self._authz_error(redirect_uri, q, "pkce_required")
        if q.get("code_challenge") and q.get("code_challenge_method", "S256") != "S256":
            return self._authz_error(redirect_uri, q, "invalid_code_challenge_method")

        session = self.session_from_request(request)
        if session is None:
            return HttpResponse(
                status=401,
                body={
                    "login_required": True,
                    "provider": self.name,
                    "resume": dict(q),
                },
            )

        session_claims = dict(session.claims)
        session_claims.setdefault("amr", list(session.amr))
        code = AuthorizationCode(
            code=self.ids.secret(24),
            client_id=client.client_id,
            redirect_uri=redirect_uri,
            subject=session.subject,
            claims=session_claims,
            scope=scope,
            nonce=q.get("nonce"),
            code_challenge=q.get("code_challenge"),
            auth_time=session.auth_time,
            expires_at=self.clock.now() + self.code_ttl,
        )
        self._jpublish("oidc.code", **asdict(code))
        self._codes[code.code] = code
        self._audit(
            session.subject, "authorize.code_issued", client.client_id, Outcome.SUCCESS,
            scope=scope,
        )
        location = redirect_uri + (
            ("&" if "?" in redirect_uri else "?")
            + f"code={code.code}"
            + (f"&state={q['state']}" if q.get("state") else "")
        )
        return HttpResponse.redirect(location)

    def _authz_error(self, redirect_uri: str, q: Dict[str, str], err: str) -> HttpResponse:
        self._audit(q.get("client_id", "?"), "authorize.error", err, Outcome.DENIED)
        location = redirect_uri + (
            ("&" if "?" in redirect_uri else "?") + f"error={err}"
            + (f"&state={q['state']}" if q.get("state") else "")
        )
        return HttpResponse.redirect(location)

    # ------------------------------------------------------------------
    # device authorization grant (RFC 8628) — headless clients
    # ------------------------------------------------------------------
    @route("POST", "/device_authorization")
    def device_authorization(self, request: HttpRequest) -> HttpResponse:
        """Start a device flow: the headless client shows the user code;
        the user approves it from a browser that *can* log in."""
        client = self._clients.get(str(request.body.get("client_id", "")))
        if client is None:
            return HttpResponse.error(401, "unknown client")
        now = self.clock.now()
        user_code = "-".join(
            self.ids.secret(4).upper() for _ in range(2)
        )
        flow = DeviceAuthorization(
            device_code=self.ids.secret(32),
            user_code=user_code,
            client_id=client.client_id,
            scope=str(request.body.get("scope", "openid")),
            created_at=now,
            expires_at=now + self.device_code_ttl,
        )
        self._device_flows[flow.device_code] = flow
        self._device_by_user_code[flow.user_code] = flow.device_code
        self._audit(client.client_id, "device.start", flow.user_code, Outcome.INFO)
        return HttpResponse.json(
            {
                "device_code": flow.device_code,
                "user_code": flow.user_code,
                "verification_uri": make_url(self.name, "/device"),
                "expires_in": self.device_code_ttl,
                "interval": flow.interval,
            }
        )

    @route("POST", "/device")
    def device_verify(self, request: HttpRequest) -> HttpResponse:
        """The verification page: an authenticated user approves (or
        denies) the code shown on their headless device."""
        session = self.session_from_request(request)
        if session is None:
            return HttpResponse(
                status=401,
                body={"login_required": True, "provider": self.name},
            )
        user_code = str(request.body.get("user_code", "")).strip().upper()
        device_code = self._device_by_user_code.get(user_code)
        flow = self._device_flows.get(device_code or "")
        now = self.clock.now()
        if flow is None or now > flow.expires_at or flow.redeemed:
            self._audit(session.subject, "device.verify", user_code,
                        Outcome.DENIED, reason="unknown-or-expired")
            return HttpResponse.error(400, "unknown or expired user code")
        if request.body.get("approve") is False:
            flow.denied = True
            self._audit(session.subject, "device.deny", user_code, Outcome.INFO)
            return HttpResponse.json({"approved": False})
        flow.subject = session.subject
        flow.claims = dict(session.claims)
        flow.claims.setdefault("amr", list(session.amr))
        flow.auth_time = session.auth_time
        self._audit(session.subject, "device.approve", user_code,
                    Outcome.SUCCESS, client=flow.client_id)
        return HttpResponse.json({"approved": True, "client_id": flow.client_id})

    def _device_token(self, b: Dict[str, str], client: ClientConfig) -> HttpResponse:
        flow = self._device_flows.get(b.get("device_code", ""))
        now = self.clock.now()
        if flow is None or flow.client_id != client.client_id:
            return HttpResponse.error(400, "invalid device_code")
        if now > flow.expires_at:
            return HttpResponse.error(400, "expired_token")
        if flow.denied:
            return HttpResponse.error(403, "access_denied")
        if now - flow.last_poll < flow.interval:
            flow.last_poll = now
            return HttpResponse.error(400, "slow_down")
        flow.last_poll = now
        if not flow.approved:
            return HttpResponse.error(400, "authorization_pending")
        if flow.redeemed:
            return HttpResponse.error(400, "device_code already redeemed")
        flow.redeemed = True
        # mint exactly as the code grant does, via a synthetic AuthorizationCode
        code = AuthorizationCode(
            code=f"device:{flow.device_code}",
            client_id=client.client_id,
            redirect_uri="",
            subject=str(flow.subject),
            claims=dict(flow.claims),
            scope=flow.scope,
            nonce=None,
            code_challenge=None,
            auth_time=flow.auth_time,
            expires_at=now + 1,
        )
        return self._issue_tokens(code, client)

    # ------------------------------------------------------------------
    # token endpoint
    # ------------------------------------------------------------------
    @route("POST", "/token")
    def token(self, request: HttpRequest) -> HttpResponse:
        b = {k: str(v) for k, v in request.body.items()}
        grant = b.get("grant_type")
        if grant == "urn:ietf:params:oauth:grant-type:device_code":
            client = self._clients.get(b.get("client_id", ""))
            if client is None:
                return HttpResponse.error(401, "unknown client")
            if client.confidential and not _hmac.compare_digest(
                b.get("client_secret", ""), client.client_secret or ""
            ):
                return HttpResponse.error(401, "client authentication failed")
            return self._device_token(b, client)
        if grant != "authorization_code":
            return HttpResponse.error(400, "unsupported grant_type")
        client = self._clients.get(b.get("client_id", ""))
        if client is None:
            return HttpResponse.error(401, "unknown client")
        if client.confidential:
            supplied = b.get("client_secret", "")
            if not _hmac.compare_digest(supplied, client.client_secret or ""):
                self._audit(client.client_id, "token.bad_client_secret", "", Outcome.DENIED)
                return HttpResponse.error(401, "client authentication failed")

        code = self._codes.get(b.get("code", ""))
        if code is None:
            return HttpResponse.error(400, "invalid code")
        if code.used:
            # Replay: revoke everything minted from this code (RFC 6749 §4.1.2).
            self._jpublish("oidc.code_replayed", code=code.code)
            for jti in self._code_tokens.get(code.code, []):
                self._revoked_jtis.add(jti)
            self._audit(code.subject, "token.code_replayed", client.client_id, Outcome.DENIED)
            return HttpResponse.error(400, "code already used; issued tokens revoked")
        if self.clock.now() > code.expires_at:
            return HttpResponse.error(400, "code expired")
        if code.client_id != client.client_id:
            return HttpResponse.error(400, "code issued to a different client")
        if code.redirect_uri != b.get("redirect_uri", ""):
            return HttpResponse.error(400, "redirect_uri mismatch")
        if code.code_challenge is not None:
            verifier = b.get("code_verifier", "")
            if not verifier or pkce_challenge(verifier) != code.code_challenge:
                self._audit(code.subject, "token.pkce_failed", client.client_id, Outcome.DENIED)
                return HttpResponse.error(400, "PKCE verification failed")
        elif client.require_pkce:
            return HttpResponse.error(400, "PKCE required for this client")

        return self._issue_tokens(code, client)

    def _issue_tokens(self, code: AuthorizationCode, client: ClientConfig) -> HttpResponse:
        """Shared token-minting tail for the code and device grants."""
        now = self.clock.now()
        jti = self.ids.jti()
        access_claims: Dict[str, object] = {
            "iss": self.issuer,
            "sub": code.subject,
            "aud": client.client_id,
            "iat": now,
            "exp": now + self.access_ttl,
            "jti": jti,
            "scope": code.scope,
        }
        access_claims.update(self.extra_access_claims(code, client))
        access_token = encode_jwt(access_claims, self.key)
        issued_claims = dict(code.claims)
        issued_claims.setdefault("auth_time", code.auth_time)
        record = {
            "subject": code.subject,
            "claims": issued_claims,
            "scope": code.scope,
            "exp": now + self.access_ttl,
        }
        # WAL: the grant is committed before any local state changes, so
        # a fenced ex-primary aborts here with nothing half-issued
        self._jpublish("oidc.tokens_issued",
                       code=code.code, jti=jti, record=record)
        code.used = True
        self._issued[jti] = record
        self._code_tokens.setdefault(code.code, []).append(jti)

        id_claims: Dict[str, object] = {
            "iss": self.issuer,
            "sub": code.subject,
            "aud": client.client_id,
            "iat": now,
            "exp": now + self.id_ttl,
            "auth_time": code.auth_time,
        }
        if code.nonce:
            id_claims["nonce"] = code.nonce
        id_claims.update(code.claims)
        id_token = encode_jwt(id_claims, self.key)

        self._audit(code.subject, "token.issued", client.client_id, Outcome.SUCCESS, jti=jti)
        return HttpResponse.json(
            {
                "access_token": access_token,
                "id_token": id_token,
                "token_type": "Bearer",
                "expires_in": self.access_ttl,
                "scope": code.scope,
            }
        )

    def extra_access_claims(self, code: AuthorizationCode, client: ClientConfig) -> Dict[str, object]:
        """Hook for subclasses (the broker adds roles/projects here)."""
        return {}

    # ------------------------------------------------------------------
    # logout
    # ------------------------------------------------------------------
    @route("POST", "/logout")
    def logout(self, request: HttpRequest) -> HttpResponse:
        """End the SSO session (the cookie's session is revoked server-side;
        later ``/authorize`` calls demand a fresh login)."""
        session = self.session_from_request(request)
        if session is None:
            return HttpResponse.json({"logged_out": False,
                                      "reason": "no active session"})
        self._jpublish("oidc.session_revoked", sid=session.sid)
        self.sessions.revoke(session.sid)
        self._audit(session.subject, "session.logout", session.sid, Outcome.INFO)
        resp = HttpResponse.json({"logged_out": True})
        resp.headers["Set-Cookie"] = "sid="
        return resp

    # ------------------------------------------------------------------
    # userinfo / introspection / revocation
    # ------------------------------------------------------------------
    def _validate_access(self, token: str) -> Dict[str, object]:
        validator = JwtValidator(self.clock, self.issuer, None, self.jwks)
        claims = validator.validate(token)
        jti = str(claims.get("jti", ""))
        if jti in self._revoked_jtis or jti not in self._issued:
            raise TokenRevoked(f"token {jti} is revoked or unknown")
        return claims

    @route("GET", "/userinfo")
    def userinfo(self, request: HttpRequest) -> HttpResponse:
        token = request.bearer_token()
        if token is None:
            return HttpResponse.error(401, "bearer token required")
        claims = self._validate_access(token)  # raises -> 403 via Service.handle
        record = self._issued.get(str(claims.get("jti", "")))
        if record is None:
            # token minted outside the OIDC store (e.g. an RBAC token from
            # a broker subclass): echo its claims
            return HttpResponse.json(dict(claims))
        body = {"sub": record["subject"]}
        body.update(record["claims"])  # type: ignore[arg-type]
        return HttpResponse.json(body)

    @route("POST", "/introspect")
    def introspect(self, request: HttpRequest) -> HttpResponse:
        self.introspections += 1
        token = str(request.body.get("token", ""))
        try:
            claims = self._validate_access(token)
        except Exception:
            return HttpResponse.json({"active": False})
        out: Dict[str, object] = {"active": True}
        out.update(claims)
        return HttpResponse.json(out)

    @route("POST", "/revoke")
    def revoke(self, request: HttpRequest) -> HttpResponse:
        """Revoke by jti.  Requires a confidential client's credentials —
        in the deployment only the SOC/kill-switch holds them."""
        b = request.body
        client = self._clients.get(str(b.get("client_id", "")))
        if client is None or not client.confidential:
            return HttpResponse.error(401, "confidential client required")
        if not _hmac.compare_digest(
            str(b.get("client_secret", "")), client.client_secret or ""
        ):
            return HttpResponse.error(401, "client authentication failed")
        jti = str(b.get("jti", ""))
        self.revoke_jti(jti)
        return HttpResponse.json({"revoked": jti})

    def revoke_jti(self, jti: str) -> None:
        self._jpublish("oidc.jti_revoked", jti=jti)
        self._revoked_jtis.add(jti)
        if self.invalidation_bus is not None:
            self.invalidation_bus.publish("token.revoked", key=jti)
        self._audit("system", "token.revoked", jti, Outcome.INFO, jti=jti)

    def is_revoked(self, jti: str) -> bool:
        return jti in self._revoked_jtis

    # ------------------------------------------------------------------
    # durability: the base provider's durable state and replay
    # ------------------------------------------------------------------
    @staticmethod
    def _session_dict(session: Session) -> Dict[str, object]:
        return {
            "sid": session.sid, "subject": session.subject,
            "claims": dict(session.claims), "auth_time": session.auth_time,
            "expires_at": session.expires_at, "revoked": session.revoked,
            "amr": list(session.amr),
        }

    def seal_keys(self, journal: ServiceJournal) -> None:
        journal.seal(f"signing-key:{self.key.kid}", self.key)
        journal.seal("jwks", self.jwks)

    def adopt_keys(self, journal: ServiceJournal) -> None:
        jwks = journal.unseal("jwks")
        if jwks is not None:
            self.jwks = jwks

    def _adopt_active_key(self, kid: str) -> None:
        if self.journal is None:
            return
        sealed = self.journal.unseal(f"signing-key:{kid}")
        if sealed is not None:
            self.key = sealed

    def durable_state(self) -> Dict[str, object]:
        return {
            "key_generation": self._key_generation,
            "active_kid": self.key.kid,
            "clients": {cid: asdict(cfg) for cid, cfg in self._clients.items()},
            "sessions": [self._session_dict(s)
                         for s in self.sessions.export_sessions()],
            "codes": {c: asdict(code) for c, code in self._codes.items()},
            "issued": dict(self._issued),
            "revoked_jtis": sorted(self._revoked_jtis),
            "code_tokens": {c: list(jtis)
                            for c, jtis in self._code_tokens.items()},
        }

    def wipe_state(self) -> None:
        """Crash: all in-memory state is gone.  Key material survives in
        the vault (KMS model); without a journal the keys also survive in
        this object — real pods re-fetch them from the secret store."""
        self.sessions.wipe()
        self._clients = {}
        self._codes = {}
        self._issued = {}
        self._revoked_jtis = set()
        self._code_tokens = {}
        self._device_flows = {}
        self._device_by_user_code = {}

    def load_state(self, state: Dict[str, object]) -> None:
        self._key_generation = int(state["key_generation"])
        self._adopt_active_key(str(state["active_kid"]))
        self._clients = {
            cid: ClientConfig(
                client_id=d["client_id"],
                redirect_uris=tuple(d["redirect_uris"]),
                client_secret=d["client_secret"],
                require_pkce=d["require_pkce"],
                allowed_scopes=tuple(d["allowed_scopes"]),
            )
            for cid, d in state["clients"].items()
        }
        for d in state["sessions"]:
            self.sessions.restore(Session(**d))
        self._codes = {
            c: AuthorizationCode(**d) for c, d in state["codes"].items()
        }
        self._issued = dict(state["issued"])
        self._revoked_jtis = set(state["revoked_jtis"])
        self._code_tokens = {c: list(j) for c, j in state["code_tokens"].items()}

    def apply_entry(self, kind: str, data: Dict[str, object]) -> None:
        if kind == "oidc.client":
            self._clients[data["client_id"]] = ClientConfig(
                client_id=data["client_id"],
                redirect_uris=tuple(data["redirect_uris"]),
                client_secret=data["client_secret"],
                require_pkce=data["require_pkce"],
                allowed_scopes=tuple(data["allowed_scopes"]),
            )
        elif kind == "oidc.session":
            self.sessions.restore(Session(**data))
        elif kind == "oidc.session_revoked":
            self.sessions.revoke(str(data["sid"]))
        elif kind == "oidc.session_revoke_subject":
            self.sessions.revoke_subject(str(data["subject"]))
        elif kind == "oidc.code":
            code = AuthorizationCode(**data)
            self._codes[code.code] = code
        elif kind == "oidc.tokens_issued":
            code = self._codes.get(str(data["code"]))
            if code is not None:
                code.used = True
            self._issued[str(data["jti"])] = dict(data["record"])
            self._code_tokens.setdefault(str(data["code"]), []).append(
                str(data["jti"]))
        elif kind == "oidc.code_replayed":
            for jti in self._code_tokens.get(str(data["code"]), []):
                self._revoked_jtis.add(jti)
        elif kind == "oidc.jti_revoked":
            self._revoked_jtis.add(str(data["jti"]))
        elif kind == "oidc.key_rotated":
            self._key_generation = int(data["generation"])
            self._adopt_active_key(str(data["kid"]))
            if self.key.kid == data["kid"]:
                self.jwks.add(self.key.public())
        elif kind == "oidc.key_retired":
            self.jwks.retire(str(data["kid"]))

    # ------------------------------------------------------------------
    def _audit(self, actor: str, action: str, resource: str, outcome: str, **attrs) -> None:
        domain = zone = ""
        if self.endpoint is not None:
            domain = str(self.endpoint.domain)
            zone = str(self.endpoint.zone)
        self.audit.record(
            self.clock.now(), self.name, actor, action, resource, outcome,
            domain=domain, zone=zone, **attrs,
        )
