"""From-scratch OpenID Connect: provider, relying party, sessions, PKCE."""

from repro.oidc.client import FlowState, RelyingParty, UserAgent
from repro.oidc.messages import (
    AuthorizationCode,
    ClientConfig,
    make_url,
    parse_url,
    pkce_challenge,
)
from repro.oidc.provider import OidcProvider
from repro.oidc.session import Session, SessionStore

__all__ = [
    "OidcProvider",
    "RelyingParty",
    "UserAgent",
    "FlowState",
    "ClientConfig",
    "AuthorizationCode",
    "Session",
    "SessionStore",
    "make_url",
    "parse_url",
    "pkce_challenge",
]
