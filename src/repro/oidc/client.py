"""OIDC relying-party helper and a browser-like user agent.

:class:`UserAgent` models the user's device: it keeps a cookie jar per
endpoint, follows 302 redirects across services, and is the thing that
physically carries authorization codes between providers — exactly the
role a browser plays in the paper's login flows.

:class:`RelyingParty` is the server-side half used by the portal, the
Zenith auth shim and the SSH CA's web flow: it builds authorization URLs
(with PKCE + nonce + state), redeems codes at the token endpoint over the
simulated network, and validates ID tokens against the provider's JWKS.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.clock import SimClock
from repro.crypto import JwkSet, JwtValidator
from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    ServiceUnavailable,
)
from repro.net.http import HttpRequest, HttpResponse, Service
from repro.oidc.messages import ClientConfig, make_url, parse_url, pkce_challenge
from repro.resilience.overload import Priority
from repro.telemetry.context import TRACEPARENT_HEADER, TraceContext

__all__ = ["UserAgent", "RelyingParty", "FlowState"]


class UserAgent(Service):
    """A simulated browser / native client on a user's device.

    Attach it to the network in the EXTERNAL domain; drive flows with
    :meth:`get` / :meth:`post`.  Redirects are followed automatically
    (up to ``max_hops``) and cookies are scoped per endpoint, so two
    providers cannot see each other's sessions.
    """

    def __init__(self, name: str, *, max_hops: int = 15,
                 priority: str = Priority.INTERACTIVE) -> None:
        super().__init__(name)
        self.cookies: Dict[str, Dict[str, str]] = {}
        self.max_hops = max_hops
        self.history: list[str] = []
        # traffic class this agent's requests carry by default (a human at
        # a browser is interactive; automation agents set batch)
        self.priority = priority
        # optional default absolute deadline applied to every request this
        # agent sends (surge drivers set it to "arrival + patience")
        self.deadline: Optional[float] = None
        # optional repro.telemetry.Tracer: when set, every flow this agent
        # drives runs under a root span and all hops carry its context
        self.tracer = None
        self._trace_ctx: Optional[TraceContext] = None

    # ------------------------------------------------------------------
    @contextmanager
    def trace(self, name: str, **baggage: str) -> Iterator[Optional[TraceContext]]:
        """Run a user flow under one root span.

        Everything the agent sends inside the ``with`` block carries the
        root's context, so a whole login — redirects, broker hops, tunnel
        dispatches — lands in one connected trace.  Nesting is flat: an
        inner ``trace()`` joins the outer trace rather than starting a
        new one.  A no-op when no tracer is attached.
        """
        if self.tracer is None or self._trace_ctx is not None:
            yield self._trace_ctx
            return
        span = self.tracer.start_trace(
            name, service=self.name, kind="internal",
            baggage=baggage or None,
        )
        self._trace_ctx = span.context()
        try:
            yield self._trace_ctx
        except BaseException as exc:
            self.tracer.end(span, error=exc)
            raise
        else:
            self.tracer.end(span)
        finally:
            self._trace_ctx = None

    def call(self, dst: str, request: HttpRequest, **kwargs) -> HttpResponse:
        # the device end of context propagation: requests minted outside
        # any serving stack (this *is* the user's device) join the active
        # flow trace unless the caller already set a context
        if (self._trace_ctx is not None and not self._serving
                and TRACEPARENT_HEADER not in request.headers):
            self._trace_ctx.inject(request.headers)
        return super().call(dst, request, **kwargs)

    # ------------------------------------------------------------------
    def _headers_for(self, endpoint: str) -> Dict[str, str]:
        jar = self.cookies.get(endpoint, {})
        if not jar:
            return {}
        return {"Cookie": "; ".join(f"{k}={v}" for k, v in jar.items())}

    def _store_cookies(self, endpoint: str, response: HttpResponse) -> None:
        set_cookie = response.headers.get("Set-Cookie")
        if set_cookie:
            k, _, v = set_cookie.partition("=")
            self.cookies.setdefault(endpoint, {})[k.strip()] = v.strip()

    def navigate(
        self,
        url: str,
        *,
        method: str = "GET",
        body: Optional[Dict[str, object]] = None,
        headers: Optional[Dict[str, str]] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[HttpResponse, str]:
        """Issue a request and follow redirects; returns (response, final_url).

        Only the first hop carries ``body`` (redirects become GETs, as
        browsers do for 302).  ``priority`` defaults to the agent's own
        traffic class; ``deadline`` (absolute simulated time) rides on
        every hop of the flow, so a multi-redirect login expires as a
        whole rather than per hop.

        With a tracer attached, a navigation outside any explicit
        :meth:`trace` block gets its own root span, so ad-hoc requests
        are traced too.
        """
        if self.tracer is not None and self._trace_ctx is None:
            with self.trace(f"{method} {url}"):
                return self._navigate(
                    url, method=method, body=body, headers=headers,
                    priority=priority, deadline=deadline,
                )
        return self._navigate(
            url, method=method, body=body, headers=headers,
            priority=priority, deadline=deadline,
        )

    def _navigate(
        self,
        url: str,
        *,
        method: str = "GET",
        body: Optional[Dict[str, object]] = None,
        headers: Optional[Dict[str, str]] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[HttpResponse, str]:
        current, current_method, current_body = url, method, body
        for _hop in range(self.max_hops):
            endpoint, path, params = parse_url(current)
            req_headers = self._headers_for(endpoint)
            req_headers.update(headers or {})
            request = HttpRequest(
                method=current_method,
                path=path,
                headers=req_headers,
                query=params,
                body=dict(current_body or {}),
                priority=priority if priority is not None else self.priority,
                deadline=deadline if deadline is not None else self.deadline,
            )
            response = self.call(endpoint, request)
            self.history.append(f"{current_method} {current}")
            self._store_cookies(endpoint, response)
            if response.status == 302 and "Location" in response.headers:
                current = response.headers["Location"]
                current_method, current_body = "GET", None
                continue
            return response, current
        raise ConfigurationError(f"redirect loop after {self.max_hops} hops at {current}")

    def get(self, url: str, **kwargs) -> Tuple[HttpResponse, str]:
        return self.navigate(url, method="GET", **kwargs)

    def post(self, url: str, body: Dict[str, object], **kwargs) -> Tuple[HttpResponse, str]:
        return self.navigate(url, method="POST", body=body, **kwargs)

    def clear_cookies(self, endpoint: Optional[str] = None) -> None:
        if endpoint is None:
            self.cookies.clear()
        else:
            self.cookies.pop(endpoint, None)


@dataclass
class FlowState:
    """Per-login state a relying party must hold between the redirect out
    and the code coming back (CSRF ``state``, PKCE verifier, nonce)."""

    state: str
    verifier: str
    nonce: str
    redirect_uri: str
    scope: str


class RelyingParty:
    """Server-side OIDC client bound to one provider.

    Parameters
    ----------
    owner:
        The service making network calls (portal, Zenith auth, SSH CA).
    provider_endpoint:
        Network endpoint name of the OIDC provider.
    client:
        This RP's registration at the provider.
    clock, ids:
        Simulation plumbing (ids generate state/verifier/nonce).
    jwks_max_age:
        Bounded-staleness window for the cached provider metadata/JWKS.
        ``None`` (default) trusts the cache until a signature failure
        forces a refresh; a number makes :meth:`_discover` re-fetch once
        the cache is older — falling back to the stale cache (degraded
        mode) if the provider is unreachable at that moment.
    jwks_cache:
        Optional shared :class:`repro.scale.cache.TtlCache` keyed by
        provider endpoint.  When set, *all* discovery/JWKS refreshes go
        through its single-flight coalescer: on a key rotation, N
        relying parties demanding a refresh at the same simulated
        instant produce exactly one upstream fetch instead of a fan-out
        of N, and the deployment's invalidation bus can evict the entry
        the moment the provider rotates.
    """

    def __init__(
        self,
        owner: Service,
        provider_endpoint: str,
        client: ClientConfig,
        clock: SimClock,
        ids,
        *,
        jwks_max_age: Optional[float] = None,
        jwks_cache=None,
    ) -> None:
        self.owner = owner
        self.provider = provider_endpoint
        self.client = client
        self.clock = clock
        self.ids = ids
        self.jwks_max_age = jwks_max_age
        self.jwks_cache = jwks_cache
        self._issuer: Optional[str] = None
        self._jwks: Optional[JwkSet] = None
        self._jwks_fetched_at: float = 0.0
        self._pending: Dict[str, FlowState] = {}
        self.degraded_discoveries = 0

    # ------------------------------------------------------------------
    def _fetch_metadata(self):
        """One upstream round: discovery document + JWKS."""
        resp = self.owner.call(
            self.provider,
            HttpRequest("GET", "/.well-known/openid-configuration"),
        )
        if not resp.ok:
            raise AuthenticationError(
                f"OIDC discovery at {self.provider} failed")
        issuer = str(resp.body["issuer"])
        jwks_resp = self.owner.call(
            self.provider, HttpRequest("GET", "/jwks"))
        jwks = JwkSet.from_jwks(jwks_resp.body)  # type: ignore[arg-type]
        return issuer, jwks, self.clock.now()

    def _discover(self, *, force: bool = False) -> None:
        if self.jwks_cache is not None:
            self._discover_shared(force=force)
            return
        if self._issuer is not None and not force:
            age = self.clock.now() - self._jwks_fetched_at
            if self.jwks_max_age is None or age <= self.jwks_max_age:
                return
        try:
            issuer, jwks, fetched_at = self._fetch_metadata()
        except ServiceUnavailable:
            if self._issuer is not None:
                # degraded mode: keep validating against the cached JWKS
                # (bounded staleness); key rotation during the outage will
                # surface as SignatureInvalid and force a retry later
                self.degraded_discoveries += 1
                return
            raise
        self._issuer = issuer
        self._jwks = jwks
        self._jwks_fetched_at = fetched_at

    def _discover_shared(self, *, force: bool) -> None:
        """Read provider metadata through the shared single-flight cache.

        ``force`` demands an entry at least as fresh as *now* — which an
        entry installed by another RP's refresh at this same instant
        already is, so a rotation storm coalesces to one fetch.  The
        per-RP ``jwks_max_age`` maps onto the same freshness floor.
        """
        now = self.clock.now()
        min_fresh: Optional[float] = None
        if force:
            min_fresh = now
        elif self.jwks_max_age is not None:
            min_fresh = now - self.jwks_max_age
        try:
            issuer, jwks, fetched_at = self.jwks_cache.get_or_load(
                self.provider, self._fetch_metadata, min_fresh_at=min_fresh)
        except ServiceUnavailable:
            if self._issuer is not None:
                self.degraded_discoveries += 1
                return
            raise
        self._issuer = issuer
        self._jwks = jwks
        self._jwks_fetched_at = fetched_at

    @property
    def issuer(self) -> str:
        self._discover()
        assert self._issuer is not None
        return self._issuer

    # ------------------------------------------------------------------
    def begin(self, redirect_uri: str, *, scope: str = "openid profile") -> Tuple[str, FlowState]:
        """Create flow state and the authorization URL to send the agent to."""
        flow = FlowState(
            state=self.ids.secret(16),
            verifier=self.ids.secret(43),
            nonce=self.ids.secret(16),
            redirect_uri=redirect_uri,
            scope=scope,
        )
        self._pending[flow.state] = flow
        url = make_url(
            self.provider,
            "/authorize",
            client_id=self.client.client_id,
            redirect_uri=redirect_uri,
            response_type="code",
            scope=scope,
            state=flow.state,
            nonce=flow.nonce,
            code_challenge=pkce_challenge(flow.verifier),
            code_challenge_method="S256",
        )
        return url, flow

    def redeem(self, code: str, state: str) -> Dict[str, object]:
        """Exchange ``code`` for tokens; validates state, PKCE and ID token.

        Returns ``{"access_token", "id_token", "id_claims", ...}``.
        """
        flow = self._pending.pop(state, None)
        if flow is None:
            raise AuthenticationError("unknown or replayed state (CSRF check failed)")
        self._discover()
        body: Dict[str, object] = {
            "grant_type": "authorization_code",
            "code": code,
            "redirect_uri": flow.redirect_uri,
            "client_id": self.client.client_id,
            "code_verifier": flow.verifier,
        }
        if self.client.confidential:
            body["client_secret"] = self.client.client_secret
        resp = self.owner.call(self.provider, HttpRequest("POST", "/token", body=body))
        if not resp.ok:
            raise AuthenticationError(
                f"token exchange failed: {resp.body.get('error', resp.status)}"
            )
        id_token = str(resp.body["id_token"])
        from repro.errors import SignatureInvalid

        try:
            validator = JwtValidator(
                self.clock, self.issuer, self.client.client_id, self._jwks
            )
            id_claims = validator.validate(id_token)
        except SignatureInvalid:
            # the provider may have rotated its keys: refresh the cached
            # JWKS once and retry before treating it as a forgery
            self._discover(force=True)
            validator = JwtValidator(
                self.clock, self.issuer, self.client.client_id, self._jwks
            )
            id_claims = validator.validate(id_token)
        if id_claims.get("nonce") != flow.nonce:
            raise AuthenticationError("ID token nonce mismatch (replay?)")
        out = dict(resp.body)
        out["id_claims"] = id_claims
        return out
