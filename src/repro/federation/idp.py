"""Institutional identity providers (the eduGAIN members).

Each :class:`InstitutionalIdP` stands for a university/institute IdP: it
authenticates its own members by password and issues short-lived signed
assertions about them.  Attribute release honours the R&S entity
category — a non-R&S IdP releases only the opaque ``sub``, which is
precisely why MyAccessID requires R&S of its upstreams.

De-affiliation matters for user story 3 ("authentication will fail if a
user is no longer affiliated with the organisational IdP"), so users can
be deactivated and every later login fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.audit import AuditLog, Outcome
from repro.clock import SimClock
from repro.crypto import encode_jwt
from repro.crypto.keys import generate_signing_key
from repro.errors import AuthenticationError, ConfigurationError
from repro.federation.assurance import EntityCategory, LevelOfAssurance
from repro.ids import IdFactory
from repro.net.http import HttpRequest, HttpResponse, Service, route

__all__ = ["FederatedUser", "InstitutionalIdP"]

ASSERTION_TTL = 300.0


@dataclass
class FederatedUser:
    """A member of an institution, as its IdP knows them."""

    username: str
    password: str
    sub: str  # IdP-local persistent identifier
    display_name: str
    email: str
    affiliation: str = "member"  # eduPersonScopedAffiliation prefix
    active: bool = True


class InstitutionalIdP(Service):
    """A home-organisation IdP issuing signed authentication assertions.

    Parameters
    ----------
    name:
        Network endpoint name (e.g. ``"idp-bristol"``).
    entity_id:
        Federation entity id (e.g. ``"https://idp.bristol.ac.uk"``).
    loa, categories:
        Declared assurance profile and entity categories; consumed by
        MyAccessID's acceptance policy via the eduGAIN metadata.
    """

    def __init__(
        self,
        name: str,
        entity_id: str,
        clock: SimClock,
        ids: IdFactory,
        *,
        loa: LevelOfAssurance = LevelOfAssurance.CAPPUCCINO,
        categories: Tuple[EntityCategory, ...] = (
            EntityCategory.RESEARCH_AND_SCHOLARSHIP,
        ),
        audit: Optional[AuditLog] = None,
    ) -> None:
        super().__init__(name)
        self.entity_id = entity_id
        self.clock = clock
        self.ids = ids
        self.loa = loa
        self.categories = tuple(categories)
        self.audit = audit if audit is not None else AuditLog(f"{name}-audit")
        self.key = generate_signing_key("EdDSA", kid=f"{name}-idp-key")
        self._key_generation = 1
        self._users: Dict[str, FederatedUser] = {}
        self.scope = entity_id.split("//")[-1]  # e.g. idp.bristol.ac.uk

    # ------------------------------------------------------------------
    # user administration (the institution's own registrar)
    # ------------------------------------------------------------------
    def add_user(
        self,
        username: str,
        password: str,
        display_name: str,
        email: str,
        *,
        affiliation: str = "member",
    ) -> FederatedUser:
        if username in self._users:
            raise ConfigurationError(f"user {username!r} already exists at {self.name}")
        user = FederatedUser(
            username=username,
            password=password,
            sub=self.ids.next(f"{self.name}-sub"),
            display_name=display_name,
            email=email,
            affiliation=affiliation,
        )
        self._users[username] = user
        return user

    def deactivate_user(self, username: str) -> None:
        """De-affiliate a member; subsequent logins fail (user story 3)."""
        user = self._users.get(username)
        if user is None:
            raise ConfigurationError(f"no user {username!r} at {self.name}")
        user.active = False
        self.audit.record(
            self.clock.now(), self.name, username, "idp.deaffiliated", user.sub,
            Outcome.INFO,
        )

    def user(self, username: str) -> Optional[FederatedUser]:
        return self._users.get(username)

    def verifier(self):
        """Public key for eduGAIN metadata."""
        return self.key.public()

    def rotate_key(self):
        """Institutional key ceremony: mint a fresh signing key.

        Assertions signed from now on verify only against the *new*
        public key — until the federation metadata is refreshed
        (``refresh_idp`` / a feed delta), relying parties still pin the
        old verifier and logins fail.  Returns the new public key.
        """
        self._key_generation += 1
        self.key = generate_signing_key(
            "EdDSA", kid=f"{self.name}-idp-key-g{self._key_generation}")
        if self.audit is not None:
            self.audit.record(
                self.clock.now(), self.name, "registrar", "idp.key_rotated",
                self.entity_id, Outcome.INFO, generation=self._key_generation,
            )
        return self.key.public()

    # ------------------------------------------------------------------
    # authentication
    # ------------------------------------------------------------------
    @route("POST", "/login")
    def login(self, request: HttpRequest) -> HttpResponse:
        """Password login; returns a signed assertion addressed to ``sp``.

        The assertion is the wire artefact the user agent carries back to
        the MyAccessID proxy.
        """
        username = str(request.body.get("username", ""))
        password = str(request.body.get("password", ""))
        sp = str(request.body.get("sp", ""))
        user = self._users.get(username)
        if user is None or user.password != password:
            self.audit.record(
                self.clock.now(), self.name, username, "idp.login", sp, Outcome.DENIED,
                reason="bad-credentials",
            )
            raise AuthenticationError(f"invalid credentials at {self.entity_id}")
        if not user.active:
            self.audit.record(
                self.clock.now(), self.name, username, "idp.login", sp, Outcome.DENIED,
                reason="deaffiliated",
            )
            raise AuthenticationError(
                f"{username} is no longer affiliated with {self.entity_id}"
            )
        if not sp:
            raise AuthenticationError("assertion requires a service-provider audience")

        now = self.clock.now()
        claims: Dict[str, object] = {
            "iss": self.entity_id,
            "sub": user.sub,
            "aud": sp,
            "iat": now,
            "exp": now + ASSERTION_TTL,
            "loa": int(self.loa),
            "categories": [str(c) for c in self.categories],
        }
        if EntityCategory.RESEARCH_AND_SCHOLARSHIP in self.categories:
            # R&S attribute bundle
            claims.update(
                {
                    "name": user.display_name,
                    "email": user.email,
                    "eduperson_scoped_affiliation": f"{user.affiliation}@{self.scope}",
                    "schac_home_organization": self.scope,
                }
            )
        assertion = encode_jwt(claims, self.key)
        self.audit.record(
            self.clock.now(), self.name, username, "idp.login", sp, Outcome.SUCCESS,
            sub=user.sub,
        )
        return HttpResponse.json({"assertion": assertion, "entity_id": self.entity_id})
