"""Levels of assurance and entity categories (AARC2 / REFEDS model).

The paper's federation design rests on *assurance*: eduGAIN's weakness is
"lack of features for controlling assurance and trust from IdPs", and
MyAccessID's minimum requirement is REFEDS Research & Scholarship (R&S)
compliance.  This module models both axes:

* :class:`LevelOfAssurance` — ordered identity-vetting strength, after the
  REFEDS Assurance Framework profiles (Cappuccino < Espresso) plus a
  "none" floor for unvetted IdPs.
* :class:`EntityCategory` — attribute-release commitments such as R&S.
* :class:`AssurancePolicy` — what a service domain (an ISD, in AARC
  terms) demands before accepting an authentication from an IdP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

from repro.errors import AssuranceTooLow

__all__ = ["LevelOfAssurance", "EntityCategory", "AssurancePolicy"]


class LevelOfAssurance(enum.IntEnum):
    """Ordered identity-vetting strength; higher is stronger."""

    NONE = 0        # no documented vetting
    LOW = 1         # self-asserted identity
    CAPPUCCINO = 2  # REFEDS medium: documented vetting, fresh affiliation
    ESPRESSO = 3    # REFEDS high: in-person/government-ID vetting

    def satisfies(self, minimum: "LevelOfAssurance") -> bool:
        return self >= minimum


class EntityCategory(str, enum.Enum):
    """Federation entity categories (attribute-release commitments)."""

    RESEARCH_AND_SCHOLARSHIP = "refeds-r-and-s"
    SIRTFI = "sirtfi"  # security incident response trust framework
    ANONYMOUS = "anonymous-access"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AssurancePolicy:
    """What an infrastructure service domain requires of upstream IdPs.

    MyAccessID for Isambard requires R&S plus at least Cappuccino; the
    admin IdP path requires Espresso (hardware-vetted identities).
    """

    minimum_loa: LevelOfAssurance = LevelOfAssurance.CAPPUCCINO
    required_categories: FrozenSet[EntityCategory] = frozenset(
        {EntityCategory.RESEARCH_AND_SCHOLARSHIP}
    )

    @classmethod
    def make(
        cls,
        minimum_loa: LevelOfAssurance,
        categories: Iterable[EntityCategory] = (),
    ) -> "AssurancePolicy":
        return cls(minimum_loa=minimum_loa, required_categories=frozenset(categories))

    def check(self, loa: LevelOfAssurance, categories: Iterable[EntityCategory]) -> None:
        """Raise :class:`AssuranceTooLow` unless (loa, categories) satisfy us."""
        if not loa.satisfies(self.minimum_loa):
            raise AssuranceTooLow(
                f"IdP assurance {loa.name} below required {self.minimum_loa.name}"
            )
        missing = self.required_categories - set(categories)
        if missing:
            raise AssuranceTooLow(
                "IdP lacks required entity categories: "
                + ", ".join(sorted(str(c) for c in missing))
            )

    def accepts(self, loa: LevelOfAssurance, categories: Iterable[EntityCategory]) -> bool:
        try:
            self.check(loa, categories)
            return True
        except AssuranceTooLow:
            return False
