"""eduGAIN-style inter-federation metadata registry.

eduGAIN "connects identity federations around the world" — operationally
it is a metadata aggregate: entity ids, endpoints, keys, entity
categories and assurance declarations for thousands of IdPs.  The proxy
(MyAccessID) consumes this registry to validate assertions and to drive
its discovery service.

The paper's noted weakness — eduGAIN "lacks features for controlling
assurance and trust from IdPs" — shows up here as: the registry *records*
what IdPs self-declare, and it is the proxy's :class:`AssurancePolicy`
that must filter, since the federation itself will not.

Metadata is not static: institutions rotate signing keys, rename their
IdPs and move between federations, so the aggregate supports
:meth:`EduGain.refresh_idp` re-registration (version bump + fresh
verifier) alongside the first-publication :meth:`EduGain.register_idp`.
Both :meth:`EduGain.idps` and :meth:`EduGain.federations` serve from
incrementally maintained sorted indices — discovery hits them on every
login, so recomputing a full sort over thousands of entries per call
was a measurable hot spot.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, FederationError
from repro.federation.assurance import EntityCategory, LevelOfAssurance
from repro.federation.idp import InstitutionalIdP

__all__ = ["IdPMetadata", "EduGain"]


@dataclass(frozen=True)
class IdPMetadata:
    """One IdP's entry in the metadata aggregate."""

    entity_id: str
    endpoint_name: str
    display_name: str
    federation: str  # home federation, e.g. "UKAMF", "InCommon"
    loa: LevelOfAssurance
    categories: Tuple[EntityCategory, ...]
    verifier: object  # VerifyingKey for its assertions
    version: int = 1  # bumped by every refresh (key rotation, rename)
    registered_at: float = 0.0
    valid_until: Optional[float] = None  # None = no expiry enforced


class EduGain:
    """The metadata aggregate, keyed by entity id."""

    def __init__(self) -> None:
        self._idps: Dict[str, IdPMetadata] = {}
        # incremental sorted indices: discovery calls idps()/federations()
        # on every login, so they must not re-sort the world each time
        self._sorted_ids: List[str] = []
        self._fed_counts: Dict[str, int] = {}
        self._fed_sorted: List[str] = []

    # ------------------------------------------------------------- indices
    def _index_add(self, entity_id: str, federation: str) -> None:
        insort(self._sorted_ids, entity_id)
        if federation not in self._fed_counts:
            self._fed_counts[federation] = 0
            insort(self._fed_sorted, federation)
        self._fed_counts[federation] += 1

    def _index_drop_federation(self, federation: str) -> None:
        self._fed_counts[federation] -= 1
        if self._fed_counts[federation] == 0:
            del self._fed_counts[federation]
            self._fed_sorted.remove(federation)

    # ------------------------------------------------------------ registry
    def register_idp(
        self,
        idp: InstitutionalIdP,
        *,
        federation: str,
        display_name: Optional[str] = None,
        registered_at: float = 0.0,
        valid_until: Optional[float] = None,
    ) -> IdPMetadata:
        """Publish an IdP's metadata into the aggregate (first time)."""
        if idp.entity_id in self._idps:
            raise ConfigurationError(
                f"entity {idp.entity_id!r} already registered "
                "(use refresh_idp to re-register)")
        md = IdPMetadata(
            entity_id=idp.entity_id,
            endpoint_name=idp.name,
            display_name=display_name or idp.name,
            federation=federation,
            loa=idp.loa,
            categories=idp.categories,
            verifier=idp.verifier(),
            version=1,
            registered_at=registered_at,
            valid_until=valid_until,
        )
        self._idps[idp.entity_id] = md
        self._index_add(md.entity_id, md.federation)
        return md

    def refresh_idp(
        self,
        idp: InstitutionalIdP,
        *,
        federation: Optional[str] = None,
        display_name: Optional[str] = None,
        registered_at: Optional[float] = None,
        valid_until: Optional[float] = None,
    ) -> IdPMetadata:
        """Re-register an already-published IdP: version bump + fresh
        verifier read, the churn operation metadata feeds perform after
        a key rotation, rename or federation move."""
        old = self._idps.get(idp.entity_id)
        if old is None:
            raise FederationError(
                f"entity {idp.entity_id!r} not in eduGAIN metadata "
                "(register_idp it first)")
        new_fed = federation if federation is not None else old.federation
        md = IdPMetadata(
            entity_id=idp.entity_id,
            endpoint_name=idp.name,
            display_name=display_name or old.display_name,
            federation=new_fed,
            loa=idp.loa,
            categories=idp.categories,
            verifier=idp.verifier(),
            version=old.version + 1,
            registered_at=(old.registered_at if registered_at is None
                           else registered_at),
            valid_until=valid_until,
        )
        self._idps[idp.entity_id] = md
        if new_fed != old.federation:
            self._index_drop_federation(old.federation)
            if new_fed not in self._fed_counts:
                self._fed_counts[new_fed] = 0
                insort(self._fed_sorted, new_fed)
            self._fed_counts[new_fed] += 1
        return md

    def get(self, entity_id: str) -> IdPMetadata:
        md = self._idps.get(entity_id)
        if md is None:
            raise FederationError(f"entity {entity_id!r} not in eduGAIN metadata")
        return md

    def has(self, entity_id: str) -> bool:
        return entity_id in self._idps

    def idps(self) -> List[IdPMetadata]:
        return [self._idps[k] for k in self._sorted_ids]

    def federations(self) -> List[str]:
        return list(self._fed_sorted)

    def __len__(self) -> int:
        return len(self._idps)


def populate_edugain(
    edugain: EduGain,
    clock,
    ids,
    *,
    n_federations: int = 20,
    idps_per_federation: int = 10,
    rns_fraction: float = 0.7,
    network=None,
) -> list:
    """Synthesise a large inter-federation (eduGAIN had >80 federations
    and >8000 IdPs at the time of the paper).

    Every ``rns_fraction`` of IdPs declares R&S + Cappuccino (acceptable
    to MyAccessID); the rest are low-assurance with no entity category —
    the population the discovery filter must reject.  When ``network``
    is given, IdPs are attached as live EXTERNAL endpoints so logins
    through them actually work.
    """
    from repro.federation.assurance import EntityCategory, LevelOfAssurance
    from repro.federation.idp import InstitutionalIdP

    created = []
    count = 0
    for f in range(n_federations):
        federation = f"fed-{f:02d}"
        for i in range(idps_per_federation):
            count += 1
            rns = (count % 100) < rns_fraction * 100
            name = f"idp-{federation}-{i:02d}"
            idp = InstitutionalIdP(
                name,
                f"https://{name}.example",
                clock,
                ids,
                loa=(LevelOfAssurance.CAPPUCCINO if rns
                     else LevelOfAssurance.LOW),
                categories=((EntityCategory.RESEARCH_AND_SCHOLARSHIP,)
                            if rns else ()),
            )
            edugain.register_idp(idp, federation=federation,
                                 display_name=name)
            if network is not None:
                from repro.net import OperatingDomain, Zone

                network.attach(idp, OperatingDomain.EXTERNAL, Zone.INTERNET)
            created.append(idp)
    return created
