"""Identity federation: IdPs, eduGAIN, assurance, MFA, MyAccessID proxy."""

from repro.federation.assurance import AssurancePolicy, EntityCategory, LevelOfAssurance
from repro.federation.cloud_idp import AdminAccount, CloudAdminIdP
from repro.federation.edugain import EduGain, IdPMetadata, populate_edugain
from repro.federation.idp import FederatedUser, InstitutionalIdP
from repro.federation.lastresort import LastResortIdP, LastResortUser
from repro.federation.mfa import HardwareKey, HardwareKeyRegistration, TotpDevice
from repro.federation.spiffe import TrustDomainAuthority, WorkloadIdentity
from repro.federation.myaccessid import (
    Account,
    AccountRegistry,
    LinkedIdentity,
    MyAccessID,
)

__all__ = [
    "AssurancePolicy",
    "EntityCategory",
    "LevelOfAssurance",
    "InstitutionalIdP",
    "FederatedUser",
    "EduGain",
    "IdPMetadata",
    "populate_edugain",
    "MyAccessID",
    "Account",
    "AccountRegistry",
    "LinkedIdentity",
    "LastResortIdP",
    "LastResortUser",
    "CloudAdminIdP",
    "AdminAccount",
    "TotpDevice",
    "HardwareKey",
    "HardwareKeyRegistration",
    "TrustDomainAuthority",
    "WorkloadIdentity",
]
