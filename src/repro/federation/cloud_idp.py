"""Public-cloud managed IdP for administrator identities.

User story 2: administrator identities live in a *separate* managed IdP
(AWS Identity Center in the real deployment) with strong guarantees —
hardware-key MFA, invitation-only membership "legally part of the same
institution", at least one human check before activation, and a small
group (~20 people).  Leaving the group revokes access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.audit import AuditLog, Outcome
from repro.clock import SimClock
from repro.errors import (
    AuthenticationError,
    AuthorizationError,
    MFAFailed,
    RegistrationError,
)
from repro.federation.assurance import LevelOfAssurance
from repro.federation.mfa import HardwareKey, HardwareKeyRegistration
from repro.ids import IdFactory
from repro.net.http import HttpRequest, HttpResponse, route
from repro.oidc.provider import OidcProvider

__all__ = ["AdminAccount", "CloudAdminIdP"]


@dataclass
class AdminAccount:
    username: str
    password: str
    email: str
    institution: str
    approved: bool = False
    approved_by: Optional[str] = None
    active: bool = True
    device_id: Optional[str] = None


class CloudAdminIdP(OidcProvider):
    """Managed admin IdP with mandatory hardware-key MFA and human vetting."""

    loa = LevelOfAssurance.ESPRESSO  # in-person vetted staff identities

    def __init__(
        self,
        name: str,
        clock: SimClock,
        ids: IdFactory,
        *,
        audit: Optional[AuditLog] = None,
        institution: str = "bristol.ac.uk",
        max_admins: int = 20,
        session_ttl: float = 3600.0,
    ) -> None:
        super().__init__(name, clock, ids, audit=audit, session_ttl=session_ttl)
        self.institution = institution
        self.max_admins = max_admins
        self._invitations: Dict[str, str] = {}  # code -> email
        self._admins: Dict[str, AdminAccount] = {}
        self.hardware_keys = HardwareKeyRegistration(clock)
        self._login_challenges: Dict[str, bytes] = {}  # username -> pending challenge

    # ------------------------------------------------------------------
    # membership lifecycle
    # ------------------------------------------------------------------
    def invite_admin(self, email: str, *, invited_by: str) -> str:
        """Invite a new admin.  The email domain must match the institution
        (the group is 'legally part of the same institution')."""
        if not email.endswith("@" + self.institution):
            raise RegistrationError(
                f"admin identities must belong to {self.institution}"
            )
        active = [a for a in self._admins.values() if a.active]
        if len(active) >= self.max_admins:
            raise RegistrationError(
                f"admin group is capped at {self.max_admins} members"
            )
        code = self.ids.secret(20)
        self._invitations[code] = email
        self._audit(invited_by, "admin.invite", email, Outcome.INFO)
        return code

    @route("POST", "/register")
    def register(self, request: HttpRequest) -> HttpResponse:
        """Redeem an invitation and enrol a hardware key.

        The account remains *pending* until a human check approves it.
        """
        code = str(request.body.get("invite_code", ""))
        username = str(request.body.get("username", ""))
        password = str(request.body.get("password", ""))
        device_id = str(request.body.get("device_id", ""))
        email = self._invitations.pop(code, None)
        if email is None:
            raise RegistrationError("invalid or already-used admin invitation")
        if username in self._admins:
            raise RegistrationError(f"admin {username!r} already exists")
        if len(password) < 16:
            raise RegistrationError("admin passwords must be at least 16 characters")
        if not device_id or not self.hardware_keys.enrolled(device_id):
            raise RegistrationError(
                "a hardware key must be enrolled before registration"
            )
        self._admins[username] = AdminAccount(
            username=username,
            password=password,
            email=email,
            institution=self.institution,
            device_id=device_id,
        )
        self._audit(username, "admin.register", email, Outcome.SUCCESS, pending=True)
        return HttpResponse.json({"registered": username, "pending_approval": True})

    def enrol_hardware_key(self, device: HardwareKey) -> None:
        """Pre-registration step: record the device's attestation key."""
        self.hardware_keys.enrol(device)

    def approve_admin(self, username: str, *, approver: str) -> None:
        """The human check (user story 2): an existing member confirms
        identity before the account becomes usable."""
        account = self._admins.get(username)
        if account is None:
            raise RegistrationError(f"no pending admin {username!r}")
        if approver == username:
            raise AuthorizationError("admins cannot approve themselves")
        account.approved = True
        account.approved_by = approver
        self._audit(approver, "admin.approve", username, Outcome.SUCCESS)

    def remove_admin(self, username: str, *, removed_by: str) -> int:
        """Access is revoked when an individual leaves the group; returns
        the number of live sessions severed."""
        account = self._admins.get(username)
        if account is None:
            raise RegistrationError(f"no admin {username!r}")
        account.active = False
        severed = self.sessions.revoke_subject(f"{self.name}:{username}")
        self._audit(removed_by, "admin.remove", username, Outcome.INFO, severed=severed)
        return severed

    def admin(self, username: str) -> Optional[AdminAccount]:
        return self._admins.get(username)

    def active_admins(self) -> int:
        return sum(1 for a in self._admins.values() if a.active and a.approved)

    # ------------------------------------------------------------------
    # login: password, then hardware-key challenge/response
    # ------------------------------------------------------------------
    @route("POST", "/login")
    def login(self, request: HttpRequest) -> HttpResponse:
        """First factor.  Success yields a hardware-key challenge, never a
        session — there is no password-only path for admins."""
        username = str(request.body.get("username", ""))
        password = str(request.body.get("password", ""))
        account = self._admins.get(username)
        if account is None or account.password != password:
            self._audit(username, "admin.login", "", Outcome.DENIED, reason="pwd")
            raise AuthenticationError("invalid admin credentials")
        if not account.active:
            self._audit(username, "admin.login", "", Outcome.DENIED, reason="removed")
            raise AuthenticationError("admin account removed from group")
        if not account.approved:
            self._audit(username, "admin.login", "", Outcome.DENIED, reason="pending")
            raise AuthenticationError("admin account awaiting human approval")
        challenge = self.hardware_keys.issue_challenge()
        self._login_challenges[username] = challenge
        return HttpResponse.json(
            {"mfa_required": True, "challenge": challenge.hex()}
        )

    @route("POST", "/login/mfa")
    def login_mfa(self, request: HttpRequest) -> HttpResponse:
        """Second factor: hardware-key assertion over our challenge."""
        username = str(request.body.get("username", ""))
        assertion = request.body.get("assertion")
        account = self._admins.get(username)
        pending = self._login_challenges.pop(username, None)
        if account is None or pending is None:
            raise AuthenticationError("no password-stage login in progress")
        if not isinstance(assertion, dict):
            raise MFAFailed("hardware-key assertion required")
        device_id = self.hardware_keys.verify_assertion(assertion)
        if device_id != account.device_id:
            self._audit(username, "admin.login", "", Outcome.DENIED, reason="wrong-device")
            raise MFAFailed("assertion from an unregistered device for this admin")
        if bytes.fromhex(str(assertion.get("challenge"))) != pending:
            raise MFAFailed("assertion does not answer the issued challenge")
        session = self.create_session(
            f"{self.name}:{username}",
            {
                "name": username,
                "email": account.email,
                "loa": int(self.loa),
                "idp": f"https://{self.name}",
                "admin": True,
            },
            amr=["pwd", "hwk"],
        )
        self._audit(username, "admin.login", "", Outcome.SUCCESS, amr="pwd+hwk")
        resp = HttpResponse.json({"authenticated": True, "sub": session.subject})
        return self.set_session_cookie(resp, session)
