"""The "Identity Provider of Last Resort".

For users whose institutions are not in the MyAccessID federation —
vendors, government entities such as the AI Safety Institute — the
Isambard team operates a public-cloud managed IdP (§III.C).  Membership
is invitation-only (the team creates the invitation when the portal
grants a role), passwords are paired with mandatory TOTP MFA, and the
provider does **not** federate onward — the shortcoming §IV.B calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.audit import AuditLog, Outcome
from repro.clock import SimClock
from repro.errors import (
    AuthenticationError,
    MFAFailed,
    MFARequired,
    RegistrationError,
)
from repro.federation.assurance import LevelOfAssurance
from repro.federation.mfa import TotpDevice
from repro.ids import IdFactory
from repro.net.http import HttpRequest, HttpResponse, route
from repro.oidc.provider import OidcProvider

__all__ = ["LastResortUser", "LastResortIdP"]


@dataclass
class LastResortUser:
    username: str
    password: str
    email: str
    display_name: str
    totp: TotpDevice
    active: bool = True


class LastResortIdP(OidcProvider):
    """Invitation-only managed IdP with mandatory TOTP MFA."""

    loa = LevelOfAssurance.CAPPUCCINO  # team-vetted invitations

    def __init__(
        self,
        name: str,
        clock: SimClock,
        ids: IdFactory,
        *,
        audit: Optional[AuditLog] = None,
        session_ttl: float = 4 * 3600.0,
    ) -> None:
        super().__init__(name, clock, ids, audit=audit, session_ttl=session_ttl)
        self._invitations: Dict[str, str] = {}  # code -> email
        self._users: Dict[str, LastResortUser] = {}

    # ------------------------------------------------------------------
    # administration (Isambard team side)
    # ------------------------------------------------------------------
    def invite(self, email: str) -> str:
        """Create an invitation; returns the code emailed to the user."""
        code = self.ids.secret(20)
        self._jpublish("lastresort.invite", code=code, email=email)
        self._invitations[code] = email
        self._audit("isambard-team", "lastresort.invite", email, Outcome.INFO)
        return code

    def deactivate(self, username: str) -> None:
        user = self._users.get(username)
        if user is not None:
            self._jpublish("lastresort.deactivate", username=username)
            user.active = False
            self.sessions.revoke_subject(f"{self.name}:{username}")

    def user(self, username: str) -> Optional[LastResortUser]:
        return self._users.get(username)

    # ------------------------------------------------------------------
    # registration and login
    # ------------------------------------------------------------------
    @route("POST", "/register")
    def register(self, request: HttpRequest) -> HttpResponse:
        """Redeem an invitation; returns the TOTP secret for enrolment."""
        code = str(request.body.get("invite_code", ""))
        username = str(request.body.get("username", ""))
        password = str(request.body.get("password", ""))
        display_name = str(request.body.get("display_name", username))
        email = self._invitations.pop(code, None)
        if email is None:
            self._audit(username, "lastresort.register", code, Outcome.DENIED)
            raise RegistrationError("invalid or already-used invitation code")
        if username in self._users:
            raise RegistrationError(f"username {username!r} taken")
        if len(password) < 12:
            raise RegistrationError("password must be at least 12 characters")
        secret = self.ids.secret(20).encode()
        user = LastResortUser(
            username=username,
            password=password,
            email=email,
            display_name=display_name,
            totp=TotpDevice(secret=secret),
        )
        self._jpublish("lastresort.register",
                       code=code, **self._user_dict(user))
        self._users[username] = user
        self._audit(username, "lastresort.register", email, Outcome.SUCCESS)
        return HttpResponse.json({"registered": username, "totp_secret": secret.hex()})

    @route("POST", "/login")
    def login(self, request: HttpRequest) -> HttpResponse:
        """Password + TOTP login; both factors are always required."""
        username = str(request.body.get("username", ""))
        password = str(request.body.get("password", ""))
        otp = str(request.body.get("otp", ""))
        user = self._users.get(username)
        if user is None or user.password != password:
            self._audit(username, "lastresort.login", "", Outcome.DENIED, reason="pwd")
            raise AuthenticationError("invalid credentials")
        if not user.active:
            self._audit(username, "lastresort.login", "", Outcome.DENIED, reason="inactive")
            raise AuthenticationError("account deactivated")
        if not otp:
            # the factor is *absent*, not wrong — MFARequired, so clients
            # can prompt for a code instead of treating it as a bad one
            raise MFARequired("TOTP code required")
        if not user.totp.verify(otp, self.clock.now()):
            self._audit(username, "lastresort.login", "", Outcome.DENIED, reason="otp")
            raise MFAFailed("TOTP code incorrect")
        session = self.create_session(
            f"{self.name}:{username}",
            {
                "name": user.display_name,
                "email": user.email,
                "loa": int(self.loa),
                "idp": f"https://{self.name}",
            },
            amr=["pwd", "otp"],
        )
        self._audit(username, "lastresort.login", "", Outcome.SUCCESS)
        resp = HttpResponse.json({"authenticated": True, "sub": session.subject})
        return self.set_session_cookie(resp, session)

    # ------------------------------------------------------------------
    # durability: user directory + invitations ride the provider journal
    # ------------------------------------------------------------------
    @staticmethod
    def _user_dict(user: LastResortUser) -> Dict[str, object]:
        return {
            "username": user.username, "password": user.password,
            "email": user.email, "display_name": user.display_name,
            "totp_secret": user.totp.secret.hex(), "active": user.active,
        }

    @staticmethod
    def _user_from(data: Dict[str, object]) -> LastResortUser:
        return LastResortUser(
            username=str(data["username"]), password=str(data["password"]),
            email=str(data["email"]), display_name=str(data["display_name"]),
            totp=TotpDevice(secret=bytes.fromhex(str(data["totp_secret"]))),
            active=bool(data["active"]),
        )

    def durable_state(self) -> Dict[str, object]:
        state = super().durable_state()
        state["invitations"] = dict(self._invitations)
        state["users"] = {u: self._user_dict(rec)
                          for u, rec in self._users.items()}
        return state

    def wipe_state(self) -> None:
        super().wipe_state()
        self._invitations = {}
        self._users = {}

    def load_state(self, state: Dict[str, object]) -> None:
        super().load_state(state)
        self._invitations = dict(state["invitations"])
        self._users = {u: self._user_from(d)
                       for u, d in state["users"].items()}

    def apply_entry(self, kind: str, data: Dict[str, object]) -> None:
        if kind == "lastresort.invite":
            self._invitations[str(data["code"])] = str(data["email"])
        elif kind == "lastresort.register":
            payload = dict(data)
            code = str(payload.pop("code"))
            self._invitations.pop(code, None)
            user = self._user_from(payload)
            self._users[user.username] = user
        elif kind == "lastresort.deactivate":
            user = self._users.get(str(data["username"]))
            if user is not None:
                user.active = False
            self.sessions.revoke_subject(f"{self.name}:{data['username']}")
        else:
            super().apply_entry(kind, data)
