"""Multi-factor authentication devices: TOTP and hardware keys.

Two factor strengths appear in the paper:

* researchers via the Identity Provider of Last Resort use TOTP-style
  one-time codes;
* administrators must use **hardware-key MFA** ("hardware key MFA
  tokens", §III.C) — modelled as a challenge/response signature from a
  device-resident Ed25519 key that also asserts user presence (touch).

Both verify against the *simulated* clock so expiry semantics are
deterministic and testable.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.clock import SimClock
from repro.crypto.keys import SigningKey, generate_signing_key
from repro.errors import MFAFailed

__all__ = ["TotpDevice", "HardwareKey", "HardwareKeyRegistration"]


@dataclass
class TotpDevice:
    """An RFC-6238-style time-based one-time-password generator.

    The shared secret lives on both the device and the IdP; codes are
    HMAC-SHA1-truncated over the time step counter, 6 digits, 30 s steps.
    """

    secret: bytes
    step_seconds: int = 30
    digits: int = 6

    def code_at(self, t: float) -> str:
        counter = max(0, int(t // self.step_seconds))
        msg = struct.pack(">Q", counter)
        mac = hmac.new(self.secret, msg, hashlib.sha1).digest()
        offset = mac[-1] & 0x0F
        binary = struct.unpack(">I", mac[offset : offset + 4])[0] & 0x7FFFFFFF
        return str(binary % (10 ** self.digits)).zfill(self.digits)

    def verify(self, code: str, t: float, *, window: int = 1) -> bool:
        """Accept the current step ± ``window`` steps of drift."""
        for w in range(-window, window + 1):
            if hmac.compare_digest(self.code_at(t + w * self.step_seconds), code):
                return True
        return False


@dataclass
class HardwareKey:
    """A FIDO2-style hardware authenticator.

    Signs server-issued challenges with a non-exportable device key.  The
    ``touched`` argument models the user-presence test: an attacker with
    remote code execution but no physical access cannot produce a
    presence-asserted signature.
    """

    device_id: str
    _key: SigningKey = field(default_factory=lambda: generate_signing_key("EdDSA", "hwk"))

    def attestation(self):
        """Public key the IdP stores at registration."""
        return self._key.public()

    def sign_challenge(self, challenge: bytes, *, touched: bool = True) -> Dict[str, object]:
        """Produce an assertion over the challenge.

        Refuses without the presence test, as real authenticators do.
        """
        if not touched:
            raise MFAFailed("hardware key requires user presence (touch)")
        return {
            "device_id": self.device_id,
            "challenge": challenge.hex(),
            "signature": self._key.sign(b"presence:" + challenge).hex(),
        }


class HardwareKeyRegistration:
    """Server-side store of enrolled hardware keys and issued challenges.

    Challenges are single-use and expire; replaying an assertion fails.
    """

    def __init__(self, clock: SimClock, *, challenge_ttl: float = 60.0) -> None:
        self.clock = clock
        self.challenge_ttl = challenge_ttl
        self._keys: Dict[str, object] = {}  # device_id -> VerifyingKey
        self._challenges: Dict[bytes, float] = {}  # challenge -> expiry
        self._counter = 0

    def enrol(self, device: HardwareKey) -> None:
        self._keys[device.device_id] = device.attestation()

    def enrolled(self, device_id: str) -> bool:
        return device_id in self._keys

    def issue_challenge(self) -> bytes:
        self._counter += 1
        challenge = hashlib.sha256(
            f"challenge:{self._counter}:{self.clock.now()}".encode()
        ).digest()
        self._challenges[challenge] = self.clock.now() + self.challenge_ttl
        return challenge

    def verify_assertion(self, assertion: Dict[str, object]) -> str:
        """Validate a hardware-key assertion; returns the device_id.

        Raises :class:`MFAFailed` on unknown device, bad signature,
        unknown/expired/replayed challenge.
        """
        device_id = str(assertion.get("device_id", ""))
        key = self._keys.get(device_id)
        if key is None:
            raise MFAFailed(f"hardware key {device_id!r} is not enrolled")
        try:
            challenge = bytes.fromhex(str(assertion["challenge"]))
            signature = bytes.fromhex(str(assertion["signature"]))
        except (KeyError, ValueError) as exc:
            raise MFAFailed("malformed hardware-key assertion") from exc
        expiry = self._challenges.pop(challenge, None)  # single-use
        if expiry is None:
            raise MFAFailed("challenge unknown or already used")
        if self.clock.now() > expiry:
            raise MFAFailed("challenge expired")
        from repro.errors import SignatureInvalid

        try:
            key.verify(b"presence:" + challenge, signature)
        except SignatureInvalid as exc:
            raise MFAFailed("hardware-key signature invalid") from exc
        return device_id
