"""SPIFFE/SPIRE-style workload identity for service-to-service trust.

Zero trust applies to workloads, not only humans: the Zenith client, the
log shipper and the portal are themselves "users" of other services.
This module models a SPIRE-like stack:

* a **trust domain authority** (the SPIRE server) with a signing key;
* **node attestation**: only endpoints the deployment registered (with
  their domain/zone as selectors) can be issued identities;
* **SVIDs** (SPIFFE Verifiable Identity Documents): short-lived signed
  documents carrying a ``spiffe://<trust-domain>/<path>`` id, verified
  by any peer holding the authority's public key;
* **rotation**: SVIDs expire quickly and are re-issued on demand.

The deployment can hand SVIDs to internal callers as a second factor on
top of broker service tokens — and tests show a forged or expired SVID
is rejected anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.clock import SimClock
from repro.crypto.certs import SignedDocument, sign_document, verify_document
from repro.crypto.keys import VerifyingKey, generate_signing_key
from repro.errors import AuthenticationError, ConfigurationError, SignatureInvalid

__all__ = [
    "WorkloadIdentity",
    "TrustDomainAuthority",
    "principal_id",
    "project_id",
    "workload_id",
]


# ----------------------------------------------------------------------
# canonical identity paths
#
# The continuous-authorization layer (repro.authz) keys *everything* —
# live grants, revocation intents, audit stamps — by one canonical
# SPIFFE id per principal, project and workload.  These helpers are the
# single place the path layout is defined, so a token claim, an SSH
# certificate key_id and a tunnel registration all agree on what
# "alice's identity" is spelled like.
# ----------------------------------------------------------------------
def principal_id(trust_domain: str, uid: str) -> str:
    """Canonical identity of a human principal (federated uid)."""
    return f"spiffe://{trust_domain}/user/{uid}"


def project_id(trust_domain: str, project: str) -> str:
    """Canonical identity of a project (the authorisation scope)."""
    return f"spiffe://{trust_domain}/project/{project}"


def workload_id(trust_domain: str, path: str) -> str:
    """Canonical identity of a workload (service subject)."""
    return f"spiffe://{trust_domain}/workload/{path}"


@dataclass(frozen=True)
class WorkloadIdentity:
    """A validated SVID."""

    spiffe_id: str       # spiffe://isambard.example/fds/zenith
    selectors: Tuple[str, ...]
    issued_at: float
    expires_at: float

    def matches(self, prefix: str) -> bool:
        """Does this identity live under ``prefix``?  Used for coarse
        authorisation like "any workload under /sws/"."""
        return self.spiffe_id.startswith(prefix)


class TrustDomainAuthority:
    """The SPIRE-server analogue for one trust domain.

    Parameters
    ----------
    trust_domain:
        DNS-ish name, e.g. ``"isambard.example"``.
    svid_ttl:
        Identity document lifetime; rotation is expected.
    """

    def __init__(
        self,
        trust_domain: str,
        clock: SimClock,
        *,
        svid_ttl: float = 600.0,
    ) -> None:
        self.trust_domain = trust_domain
        self.clock = clock
        self.svid_ttl = svid_ttl
        self._key = generate_signing_key("EdDSA", kid=f"spire-{trust_domain}")
        # attested workloads: path -> selectors (domain/zone/endpoint facts)
        self._registry: Dict[str, Tuple[str, ...]] = {}
        self.issued_count = 0

    # ------------------------------------------------------------------
    def bundle(self) -> VerifyingKey:
        """The trust bundle peers verify against."""
        return self._key.public()

    def register_workload(self, path: str, *selectors: str) -> None:
        """Attest a workload (the deployment's provisioning step).

        ``path`` is the SPIFFE path (``fds/zenith``); selectors record
        the facts attestation verified (endpoint name, domain, zone).
        """
        if not path or path.startswith("/"):
            raise ConfigurationError("workload path must be non-empty, relative")
        self._registry[path] = tuple(selectors)

    def registered(self, path: str) -> bool:
        return path in self._registry

    def register_principal(self, uid: str, *selectors: str) -> str:
        """Attest a human principal at onboarding and return their
        canonical SPIFFE id.  Principals live under ``user/<uid>`` so
        SVIDs can be issued for them exactly like for workloads —
        continuous authorization treats humans and services uniformly."""
        self.register_workload(f"user/{uid}", *selectors)
        return principal_id(self.trust_domain, uid)

    # ------------------------------------------------------------------
    def issue_svid(self, path: str) -> str:
        """Issue a fresh SVID for an attested workload (wire form)."""
        selectors = self._registry.get(path)
        if selectors is None:
            raise AuthenticationError(
                f"workload {path!r} is not attested in {self.trust_domain}"
            )
        now = self.clock.now()
        doc = sign_document(self._key, {
            "spiffe_id": f"spiffe://{self.trust_domain}/{path}",
            "selectors": list(selectors),
            "iat": now,
            "exp": now + self.svid_ttl,
            "type": "svid",
        })
        self.issued_count += 1
        return doc.to_wire()

    def validate_svid(self, wire: str) -> WorkloadIdentity:
        """Peer-side validation against the trust bundle + clock."""
        try:
            doc = SignedDocument.from_wire(wire)
            payload = verify_document(self.bundle(), doc)
        except SignatureInvalid as exc:
            raise AuthenticationError(f"SVID invalid: {exc}") from exc
        if payload.get("type") != "svid":
            raise AuthenticationError("document is not an SVID")
        exp = float(payload.get("exp", 0))  # type: ignore[arg-type]
        if self.clock.now() >= exp:
            raise AuthenticationError("SVID expired; rotate")
        spiffe_id = str(payload.get("spiffe_id", ""))
        prefix = f"spiffe://{self.trust_domain}/"
        if not spiffe_id.startswith(prefix):
            raise AuthenticationError(
                f"SVID from foreign trust domain: {spiffe_id!r}"
            )
        return WorkloadIdentity(
            spiffe_id=spiffe_id,
            selectors=tuple(payload.get("selectors", ())),  # type: ignore[arg-type]
            issued_at=float(payload.get("iat", 0)),  # type: ignore[arg-type]
            expires_at=exp,
        )
