"""MyAccessID-style IdP proxy: discovery, account registry, identity linking.

MyAccessID (GÉANT) is the federated, trusted IdP *proxy* between the
world's institutional IdPs and infrastructure service domains like
Isambard.  Its three jobs, per §II.B of the paper, are implemented here:

1. **Discovery service** — during login the user chooses their home IdP
   from the (policy-filtered) eduGAIN aggregate.
2. **Account registry** — maps external identities to a *unique,
   persistent* user identifier towards connected ISDs, and supports
   linking several institutional identities to one account.
3. **Assurance enforcement** — only IdPs meeting the R&S + LoA policy are
   accepted (the control eduGAIN itself lacks).

Downstream, MyAccessID is an ordinary OIDC provider (it subclasses
:class:`~repro.oidc.provider.OidcProvider`); the Isambard identity broker
is just one of its registered clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.audit import AuditLog, Outcome
from repro.clock import SimClock
from repro.crypto import JwkSet, JwtValidator
from repro.errors import AuthenticationError, FederationError, IdentityNotRegistered
from repro.federation.assurance import AssurancePolicy, LevelOfAssurance
from repro.federation.edugain import EduGain
from repro.ids import IdFactory
from repro.net.http import HttpRequest, HttpResponse, route
from repro.oidc.provider import OidcProvider

__all__ = ["LinkedIdentity", "Account", "AccountRegistry", "MyAccessID"]


@dataclass(frozen=True)
class LinkedIdentity:
    """One external identity: (issuing IdP, IdP-local subject)."""

    entity_id: str
    sub: str


@dataclass
class Account:
    """A MyAccessID account: the persistent identity ISDs see."""

    uid: str  # unique persistent identifier, e.g. "ma-0001@myaccessid"
    linked: List[LinkedIdentity]
    display_name: str
    email: str
    created_at: float
    loa: LevelOfAssurance


class AccountRegistry:
    """Guarantees uniqueness and persistence of user identifiers.

    The same external identity always resolves to the same account; an
    account may have several linked identities (identity linking); no two
    accounts ever share a uid.
    """

    def __init__(self, ids: IdFactory, *, uid_suffix: str = "@myaccessid") -> None:
        self.ids = ids
        self.uid_suffix = uid_suffix
        self._by_identity: Dict[LinkedIdentity, str] = {}
        self._accounts: Dict[str, Account] = {}

    def register_or_get(
        self,
        identity: LinkedIdentity,
        *,
        display_name: str,
        email: str,
        loa: LevelOfAssurance,
        now: float,
    ) -> Account:
        """Idempotently resolve an external identity to its account."""
        uid = self._by_identity.get(identity)
        if uid is not None:
            return self._accounts[uid]
        uid = self.ids.next("ma") + self.uid_suffix
        account = Account(
            uid=uid,
            linked=[identity],
            display_name=display_name,
            email=email,
            created_at=now,
            loa=loa,
        )
        self._by_identity[identity] = uid
        self._accounts[uid] = account
        return account

    def link(self, uid: str, identity: LinkedIdentity) -> Account:
        """Attach a second external identity to an existing account."""
        account = self._accounts.get(uid)
        if account is None:
            raise IdentityNotRegistered(f"no account {uid!r}")
        existing = self._by_identity.get(identity)
        if existing is not None and existing != uid:
            raise FederationError(
                f"identity {identity} is already linked to a different account"
            )
        if existing is None:
            self._by_identity[identity] = uid
            account.linked.append(identity)
        return account

    def find(self, identity: LinkedIdentity) -> Optional[Account]:
        uid = self._by_identity.get(identity)
        return self._accounts.get(uid) if uid else None

    def deprovision(self, uid: str) -> int:
        """Remove an account and all its identity links (data-protection
        erasure).  Returns the number of links removed.  The uid is
        *retired*, never reassigned — `register_or_get` for any of the
        old identities creates a fresh account with a new uid, so audit
        history stays unambiguous."""
        account = self._accounts.pop(uid, None)
        if account is None:
            raise IdentityNotRegistered(f"no account {uid!r}")
        removed = 0
        for identity in account.linked:
            if self._by_identity.pop(identity, None) is not None:
                removed += 1
        return removed

    def account(self, uid: str) -> Optional[Account]:
        return self._accounts.get(uid)

    def __len__(self) -> int:
        return len(self._accounts)


class MyAccessID(OidcProvider):
    """The AAI proxy service.

    Login dance (driven by the user agent):

    1. agent hits broker → broker redirects to our ``/authorize`` →
       ``401 login_required``;
    2. agent GETs ``/discovery``, picks an IdP;
    3. agent POSTs credentials to the IdP's ``/login`` (audience = our
       entity id) and receives a signed assertion;
    4. agent POSTs the assertion to our ``/assert`` — we validate it
       against eduGAIN metadata, enforce the assurance policy, resolve
       the account registry entry, and set a session cookie;
    5. agent retries ``/authorize`` and the normal OIDC code flow runs.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        ids: IdFactory,
        edugain: EduGain,
        *,
        policy: Optional[AssurancePolicy] = None,
        audit: Optional[AuditLog] = None,
        session_ttl: float = 8 * 3600.0,
        registry: Optional[AccountRegistry] = None,
    ) -> None:
        super().__init__(name, clock, ids, audit=audit, session_ttl=session_ttl)
        self.edugain = edugain
        self.policy = policy if policy is not None else AssurancePolicy()
        # any object with the AccountRegistry surface works here — the
        # directory tier passes a ShardedAccountRegistry so the proxy's
        # account resolution rides the hash ring instead of one dict
        self.registry = registry if registry is not None else AccountRegistry(ids)
        self.entity_id = f"https://{name}"

    # ------------------------------------------------------------------
    @route("GET", "/discovery")
    def discovery(self, request: HttpRequest) -> HttpResponse:
        """The 'choose your institution' page: policy-filtered IdP list."""
        choices = []
        for md in self.edugain.idps():
            acceptable = self.policy.accepts(md.loa, md.categories)
            choices.append(
                {
                    "entity_id": md.entity_id,
                    "display_name": md.display_name,
                    "federation": md.federation,
                    "endpoint": md.endpoint_name,
                    "acceptable": acceptable,
                }
            )
        return HttpResponse.json(
            {
                "idps": choices,
                "policy": {
                    "minimum_loa": self.policy.minimum_loa.name,
                    "required_categories": sorted(
                        str(c) for c in self.policy.required_categories
                    ),
                },
            }
        )

    # ------------------------------------------------------------------
    def _validate_assertion(self, entity_id: str, assertion: str) -> Dict[str, object]:
        md = self.edugain.get(entity_id)  # FederationError if unknown
        validator = JwtValidator(
            self.clock,
            issuer=entity_id,
            audience=self.entity_id,
            keys=JwkSet([md.verifier]),
            required_claims=("sub",),
        )
        claims = validator.validate(assertion)
        self.policy.check(md.loa, md.categories)  # AssuranceTooLow if not
        return claims

    @route("POST", "/assert")
    def assert_identity(self, request: HttpRequest) -> HttpResponse:
        """Consume an institutional assertion; establish a proxy session."""
        entity_id = str(request.body.get("entity_id", ""))
        assertion = str(request.body.get("assertion", ""))
        claims = self._validate_assertion(entity_id, assertion)
        identity = LinkedIdentity(entity_id=entity_id, sub=str(claims["sub"]))
        md = self.edugain.get(entity_id)
        account = self.registry.register_or_get(
            identity,
            display_name=str(claims.get("name", "")),
            email=str(claims.get("email", "")),
            loa=md.loa,
            now=self.clock.now(),
        )
        session = self.create_session(
            account.uid,
            {
                "name": account.display_name,
                "email": account.email,
                "home_organization": claims.get("schac_home_organization", ""),
                "loa": int(md.loa),
                "idp": entity_id,
            },
            amr=["federated"],
        )
        self._audit(
            account.uid, "proxy.assert", entity_id, Outcome.SUCCESS,
            linked_identities=len(account.linked),
        )
        resp = HttpResponse.json({"uid": account.uid, "authenticated": True})
        return self.set_session_cookie(resp, session)

    def deprovision_account(self, uid: str, *, on_deprovision=None) -> int:
        """Operator-side erasure: drop the registry entry, sever our
        sessions, and give downstream ISDs the hook to revoke theirs."""
        removed = self.registry.deprovision(uid)
        severed = self.sessions.revoke_subject(uid)
        if on_deprovision is not None:
            on_deprovision(uid)
        self._audit("operator", "proxy.deprovision", uid, Outcome.INFO,
                    links_removed=removed, sessions=severed)
        return removed

    @route("POST", "/link")
    def link_identity(self, request: HttpRequest) -> HttpResponse:
        """Link an additional institutional identity to the session account."""
        session = self.session_from_request(request)
        if session is None:
            raise AuthenticationError("identity linking requires an active session")
        entity_id = str(request.body.get("entity_id", ""))
        assertion = str(request.body.get("assertion", ""))
        claims = self._validate_assertion(entity_id, assertion)
        identity = LinkedIdentity(entity_id=entity_id, sub=str(claims["sub"]))
        account = self.registry.link(session.subject, identity)
        self._audit(session.subject, "proxy.link", entity_id, Outcome.SUCCESS)
        return HttpResponse.json(
            {"uid": account.uid, "linked": [li.entity_id for li in account.linked]}
        )
