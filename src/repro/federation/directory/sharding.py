"""Sharded identity tier: the account registry on a consistent-hash ring.

The paper's north star is a national federation — millions of users
across thousands of IdPs — and a single in-process dict is not a
substrate for that.  This module places the MyAccessID account registry
on the existing :class:`~repro.scale.hashring.BoundedLoadRing`:

* Two key spaces share one ring — identity keys (``id:<entity>\\n<sub>``)
  and uid keys (``uid:<uid>``) — so an account's identity links and its
  row may legitimately live on *different* shards, exactly as they would
  behind a real partitioned store.  Cross-shard invariants (uid
  uniqueness, identity-linking consistency, retired-uid-never-reassigned)
  are therefore properties of the registry's *protocol*, not of any one
  shard, and :meth:`ShardedAccountRegistry.verify_invariants` scans for
  them globally.
* Each shard is :class:`~repro.resilience.durability.Durable`: every
  mutation journals before it applies (WAL discipline), so a shard crash
  recovers losslessly through the deployment's
  :class:`~repro.resilience.DurabilityStore`, shard by shard.
* Shard add/remove is a *stepwise deterministic migration*: the plan is
  the sorted list of keys whose ring owner changed, and until a key's
  batch has moved, lookups probe the new owner, miss, and fall back to
  the source shard — one extra probe, which is what bounds the lookup
  p99 during a migration (at most ``2 × probe_cost``).
* A downed shard fails its key range *closed*
  (:class:`~repro.errors.ShardUnavailable`); the other shards keep
  serving theirs.

Probe costs are modelled as *recorded* simulated latencies
(``lookup_latencies``), not clock advances — a lookup is a read, and
advancing the shared clock per read would perturb every token lifetime
in the deployment.  Benches window the recorded samples instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.audit import Outcome
from repro.errors import (
    ConfigurationError,
    FederationError,
    IdentityNotRegistered,
    RecoveryError,
    ShardUnavailable,
)
from repro.federation.assurance import LevelOfAssurance
from repro.federation.myaccessid import Account, LinkedIdentity
from repro.resilience.durability import Durable, ServiceJournal
from repro.scale.hashring import BoundedLoadRing

__all__ = [
    "DirectoryConfig",
    "DirectoryShard",
    "AccountShard",
    "Migration",
    "ShardedTier",
    "ShardedAccountRegistry",
    "PROBE_COST",
]

# simulated seconds one shard probe costs the caller (network hop +
# partition-local index read); a fallback during migration pays two
PROBE_COST = 0.0004


@dataclass(frozen=True)
class DirectoryConfig:
    """Sizing knobs for the federation directory tier."""

    account_shards: int = 8
    metadata_shards: int = 4
    vnodes: int = 32              # ring vnodes per shard
    probe_cost: float = PROBE_COST
    migration_batch: int = 4096   # keys moved per migration step
    feed_validity: float = 14 * 86400.0  # default metadata validity window


class DirectoryShard(Durable):
    """Common journaled-shard machinery: commit, migration payloads.

    Subclasses define the tables and implement the :class:`Durable`
    contract plus :meth:`ring_keys` / :meth:`extract` / :meth:`install`.
    """

    snapshot_every = 512

    def __init__(self, name: str) -> None:
        self.name = name
        self.up = True

    def commit(self, kind: str, **data: object) -> None:
        """WAL-then-apply: journal the mutation, then mutate."""
        self._jpublish(kind, **data)
        self.apply_entry(kind, data)

    # -------------------------------------------------- migration contract
    def ring_keys(self) -> Iterator[str]:
        raise NotImplementedError

    def extract(self, ring_keys: List[str]) -> Dict[str, object]:
        """Journal + remove the listed keys; return their payload."""
        raise NotImplementedError

    def install(self, payload: Dict[str, object]) -> None:
        """Journal + insert a payload extracted from another shard."""
        raise NotImplementedError


class AccountShard(DirectoryShard):
    """One partition of the account registry.

    Tables: ``idmap`` (identity key -> uid), ``accounts`` (uid -> row),
    ``retired`` (tombstoned uids — never reassigned).  Rows are plain
    JSON dicts; :class:`~repro.federation.myaccessid.Account` objects are
    materialised on read.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.idmap: Dict[str, str] = {}
        self.accounts: Dict[str, Dict[str, object]] = {}
        self.retired: Set[str] = set()

    # ----------------------------------------------------- Durable contract
    def durable_state(self) -> Dict[str, object]:
        return {
            "idmap": {k: self.idmap[k] for k in sorted(self.idmap)},
            "accounts": {u: self.accounts[u] for u in sorted(self.accounts)},
            "retired": sorted(self.retired),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self.idmap = dict(state.get("idmap", {}))
        self.accounts = {u: dict(r) for u, r in state.get("accounts", {}).items()}
        self.retired = set(state.get("retired", []))

    def wipe_state(self) -> None:
        self.idmap = {}
        self.accounts = {}
        self.retired = set()

    def apply_entry(self, kind: str, data: Dict[str, object]) -> None:
        if kind == "idmap.put":
            self.idmap[data["key"]] = data["uid"]
        elif kind == "idmap.put_batch":
            for key, uid in data["pairs"]:
                self.idmap[key] = uid
        elif kind == "idmap.del":
            self.idmap.pop(data["key"], None)
        elif kind == "account.put":
            self.accounts[data["uid"]] = dict(data["row"])
        elif kind == "account.put_batch":
            for row in data["rows"]:
                self.accounts[row["uid"]] = dict(row)
        elif kind == "account.del":
            self.accounts.pop(data["uid"], None)
        elif kind == "retire":
            self.retired.add(data["uid"])
        elif kind == "migrate.in":
            for key, uid in data["idmap"]:
                self.idmap[key] = uid
            for row in data["accounts"]:
                self.accounts[row["uid"]] = dict(row)
            self.retired.update(data["retired"])
        elif kind == "migrate.out":
            for key in data["idmap"]:
                self.idmap.pop(key, None)
            for uid in data["accounts"]:
                self.accounts.pop(uid, None)
            self.retired.difference_update(data["retired"])
        else:
            raise ConfigurationError(
                f"account shard {self.name!r}: unknown journal kind {kind!r}")

    def verify_recovery(self, report) -> None:
        zombie = self.retired & set(self.accounts)
        if zombie:
            raise RecoveryError(
                f"shard {self.name!r} recovered retired uids with live "
                f"accounts: {sorted(zombie)[:3]}")

    # ------------------------------------------------------------ migration
    def ring_keys(self) -> Iterator[str]:
        for key in self.idmap:
            yield "id:" + key
        for uid in self.accounts:
            yield "uid:" + uid
        for uid in self.retired:
            yield "uid:" + uid  # disjoint from accounts (deprovision deletes)

    def extract(self, ring_keys: List[str]) -> Dict[str, object]:
        idmap: List[List[str]] = []
        accounts: List[Dict[str, object]] = []
        retired: List[str] = []
        for rk in ring_keys:
            if rk.startswith("id:"):
                key = rk[3:]
                if key in self.idmap:
                    idmap.append([key, self.idmap[key]])
            else:
                uid = rk[4:]
                if uid in self.accounts:
                    accounts.append(self.accounts[uid])
                if uid in self.retired:
                    retired.append(uid)
        self.commit("migrate.out",
                    idmap=[k for k, _ in idmap],
                    accounts=[row["uid"] for row in accounts],
                    retired=retired)
        return {"idmap": idmap, "accounts": accounts, "retired": retired}

    def install(self, payload: Dict[str, object]) -> None:
        self.commit("migrate.in", **payload)

    def key_count(self) -> int:
        return len(self.idmap) + len(self.accounts) + len(self.retired)


class Migration:
    """One in-flight shard rebalance: a sorted move plan, stepped in batches.

    ``pending`` maps every not-yet-moved ring key to its *source* shard;
    tier lookups consult it to fall back (one extra probe) until the
    key's batch lands.  ``step``/``run`` drive the plan; each step
    journals a ``migrate.out`` on the source and a ``migrate.in`` on the
    destination per (source, destination) group, so a crash mid-migration
    recovers to a consistent cut.
    """

    def __init__(self, tier: "ShardedTier",
                 moves: List[Tuple[str, str, str]]) -> None:
        self.tier = tier
        self.moves = moves  # (ring_key, src, dst), sorted by ring_key
        self.pending: Dict[str, str] = {rk: src for rk, src, _ in moves}
        self.cursor = 0
        self.started_at = tier.clock.now()
        self.finished_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.cursor >= len(self.moves)

    @property
    def total(self) -> int:
        return len(self.moves)

    def step(self, batch: Optional[int] = None) -> int:
        """Move the next ``batch`` keys; returns how many moved."""
        if self.done:
            return 0
        n = self.tier.migration_batch if batch is None else batch
        chunk = self.moves[self.cursor:self.cursor + n]
        groups: Dict[Tuple[str, str], List[str]] = {}
        for rk, src, dst in chunk:
            groups.setdefault((src, dst), []).append(rk)
        for (src, dst) in sorted(groups):
            keys = groups[(src, dst)]
            payload = self.tier.shards[src].extract(keys)
            self.tier.shards[dst].install(payload)
            self.tier.note_migrated(len(keys))
        for rk, _, _ in chunk:
            del self.pending[rk]
        self.cursor += len(chunk)
        if self.done:
            self.finished_at = self.tier.clock.now()
            self.tier._migration_finished(self)
        return len(chunk)

    def run(self, batch: Optional[int] = None) -> int:
        """Drive the plan to completion; returns total keys moved."""
        moved = 0
        while not self.done:
            moved += self.step(batch)
        return moved


class ShardedTier:
    """Ring placement + health + stepwise migration, shared by both tiers."""

    tier = "tier"

    def __init__(self, clock, shard_names: Iterable[str], *,
                 vnodes: int = 32, probe_cost: float = PROBE_COST,
                 migration_batch: int = 4096,
                 telemetry=None, audit=None) -> None:
        names = list(shard_names)
        if not names:
            raise ConfigurationError(f"{self.tier} tier needs >= 1 shard")
        self.clock = clock
        self.probe_cost = probe_cost
        self.migration_batch = migration_batch
        self.telemetry = telemetry
        self.audit = audit
        self.ring = BoundedLoadRing(names, vnodes=vnodes)
        self.shards: Dict[str, DirectoryShard] = {
            name: self._new_shard(name) for name in names}
        # set by the deployment when durable: name -> ServiceJournal for
        # shards added after construction
        self.journal_factory: Optional[Callable[[str], ServiceJournal]] = None
        self._migration: Optional[Migration] = None
        self._draining: Optional[str] = None
        # stats (recorded simulated latencies; never clock advances)
        self.lookups = 0
        self.fallback_probes = 0
        self.unavailable_denials = 0
        self.lookup_latencies: List[float] = []
        self.migrated_keys = 0

    def _new_shard(self, name: str) -> DirectoryShard:
        raise NotImplementedError

    # ------------------------------------------------------------ placement
    def _locate(self, ring_key: str, *, record: bool = True) -> DirectoryShard:
        """Resolve a ring key to its serving shard, modelling probe cost.

        During a migration an unmoved key costs one extra probe: the
        caller asks the new ring owner, misses, and falls back to the
        source shard the pending map still names.
        """
        cost = self.probe_cost
        owner = self.ring.locate(ring_key)
        fell_back = False
        mig = self._migration
        if mig is not None:
            src = mig.pending.get(ring_key)
            if src is not None and src != owner:
                cost += self.probe_cost
                owner = src
                fell_back = True
        shard = self.shards[owner]
        if record:
            self.lookups += 1
            self.lookup_latencies.append(cost)
            if fell_back:
                self.fallback_probes += 1
            if self.telemetry is not None:
                self.telemetry.directory_lookups.inc(
                    tier=self.tier,
                    result="fallback" if fell_back else "ok")
        if not shard.up:
            self.unavailable_denials += 1
            if self.telemetry is not None:
                self.telemetry.directory_lookups.inc(
                    tier=self.tier, result="unavailable")
            raise ShardUnavailable(
                f"{self.tier} shard {shard.name!r} is down "
                f"(key range fails closed)")
        return shard

    # --------------------------------------------------------- shard health
    def shard_down(self, name: str) -> None:
        """Chaos hook: the shard stops serving (state intact)."""
        self._shard(name).up = False

    def shard_up(self, name: str) -> None:
        self._shard(name).up = True

    def _shard(self, name: str) -> DirectoryShard:
        shard = self.shards.get(name)
        if shard is None:
            raise ConfigurationError(
                f"no {self.tier} shard named {name!r}")
        return shard

    # ----------------------------------------------------------- membership
    def add_shard(self, name: str) -> Optional[Migration]:
        """Join a shard and plan the deterministic key migration onto it."""
        if name in self.shards:
            raise ConfigurationError(f"{self.tier} shard {name!r} exists")
        self._check_no_migration()
        shard = self._new_shard(name)
        if self.journal_factory is not None:
            shard.attach_journal(self.journal_factory(name))
        self.shards[name] = shard
        self.ring.add(name)
        return self._plan_migration()

    def remove_shard(self, name: str) -> Optional[Migration]:
        """Leave the ring; the shard keeps serving its keys while the
        migration drains them, then it is dropped."""
        self._shard(name)
        if len(self.shards) == 1:
            raise ConfigurationError(
                f"cannot remove the last {self.tier} shard")
        self._check_no_migration()
        self.ring.remove(name)
        self._draining = name
        migration = self._plan_migration()
        if migration is None:  # nothing stored there: drop immediately
            self._drop_drained()
        return migration

    def _check_no_migration(self) -> None:
        if self._migration is not None and not self._migration.done:
            raise ConfigurationError(
                f"a {self.tier} migration is already in flight "
                f"({self._migration.cursor}/{self._migration.total} moved)")

    def _plan_migration(self) -> Optional[Migration]:
        moves: List[Tuple[str, str, str]] = []
        for name in sorted(self.shards):
            for rk in self.shards[name].ring_keys():
                dst = self.ring.locate(rk)
                if dst != name:
                    moves.append((rk, name, dst))
        moves.sort()
        self._migration = Migration(self, moves) if moves else None
        return self._migration

    def _migration_finished(self, migration: Migration) -> None:
        self._drop_drained()

    def _drop_drained(self) -> None:
        if self._draining is None:
            return
        shard = self.shards[self._draining]
        if shard.key_count() != 0:
            raise RecoveryError(
                f"drained {self.tier} shard {self._draining!r} still holds "
                f"{shard.key_count()} keys")
        del self.shards[self._draining]
        self._draining = None

    @property
    def migration(self) -> Optional[Migration]:
        return self._migration

    def note_migrated(self, n: int) -> None:
        self.migrated_keys += n
        if self.telemetry is not None:
            self.telemetry.directory_migrated.inc(n, tier=self.tier)

    # ---------------------------------------------------------------- stats
    def reset_lookup_stats(self) -> None:
        """Start a fresh latency window (benches bracket phases with this)."""
        self.lookup_latencies = []

    def note_sizes(self) -> Dict[str, int]:
        sizes = {name: self.shards[name].key_count()
                 for name in sorted(self.shards)}
        if self.telemetry is not None:
            for name, count in sizes.items():
                self.telemetry.directory_shard_keys.set(
                    count, tier=self.tier, shard=name)
        return sizes

    def stats(self) -> Dict[str, object]:
        return {
            "shards": len(self.shards),
            "lookups": self.lookups,
            "fallback_probes": self.fallback_probes,
            "unavailable_denials": self.unavailable_denials,
            "migrated_keys": self.migrated_keys,
        }


class ShardedAccountRegistry(ShardedTier):
    """The MyAccessID account registry, partitioned across journaled shards.

    Drop-in for :class:`~repro.federation.myaccessid.AccountRegistry`
    (same surface: ``register_or_get`` / ``link`` / ``find`` /
    ``deprovision`` / ``account`` / ``__len__``), plus
    :meth:`register_batch` for bulk onboarding (one journal entry per
    touched shard per wave, not one per user) and
    :meth:`verify_invariants` for the cross-shard guarantees.
    """

    tier = "accounts"

    def __init__(self, clock, ids, *, shards=8, uid_suffix: str = "@myaccessid",
                 vnodes: int = 32, probe_cost: float = PROBE_COST,
                 migration_batch: int = 4096,
                 telemetry=None, audit=None) -> None:
        names = ([f"acct-{i:02d}" for i in range(shards)]
                 if isinstance(shards, int) else list(shards))
        super().__init__(clock, names, vnodes=vnodes, probe_cost=probe_cost,
                         migration_batch=migration_batch,
                         telemetry=telemetry, audit=audit)
        self.ids = ids
        self.uid_suffix = uid_suffix
        # optional repro.authz.IdentityGraph: interactively registered
        # accounts mint canonical principals (bulk waves stay lazy — the
        # graph mints on first live grant anyway)
        self.graph = None
        self.batched_registrations = 0

    # ---------------------------------------------------------------- keys
    @staticmethod
    def _ikey(identity: LinkedIdentity) -> str:
        return f"{identity.entity_id}\n{identity.sub}"

    def _identity_shard(self, identity: LinkedIdentity, *,
                        record: bool = True) -> AccountShard:
        return self._locate("id:" + self._ikey(identity), record=record)

    def _uid_shard(self, uid: str, *, record: bool = True) -> AccountShard:
        return self._locate("uid:" + uid, record=record)

    def _new_shard(self, name: str) -> AccountShard:
        return AccountShard(name)

    @staticmethod
    def _materialize(row: Dict[str, object]) -> Account:
        return Account(
            uid=row["uid"],
            linked=[LinkedIdentity(entity_id=e, sub=s)
                    for e, s in row["linked"]],
            display_name=row["display_name"],
            email=row["email"],
            created_at=row["created_at"],
            loa=LevelOfAssurance(row["loa"]),
        )

    # ------------------------------------------------------------- registry
    def register_or_get(self, identity: LinkedIdentity, *, display_name: str,
                        email: str, loa: LevelOfAssurance,
                        now: float) -> Account:
        """Idempotently resolve an external identity to its account."""
        ishard = self._identity_shard(identity)
        ikey = self._ikey(identity)
        uid = ishard.idmap.get(ikey)
        if uid is not None:
            return self._materialize(self._uid_shard(uid).accounts[uid])
        uid = self.ids.next("ma") + self.uid_suffix
        ushard = self._uid_shard(uid)
        if uid in ushard.retired or uid in ushard.accounts:
            # IdFactory counters make minted uids globally fresh; a hit
            # here means the tombstone protocol was violated
            raise RecoveryError(f"minted uid {uid!r} already used")
        row = {
            "uid": uid,
            "linked": [[identity.entity_id, identity.sub]],
            "display_name": display_name,
            "email": email,
            "created_at": now,
            "loa": int(loa),
        }
        ishard.commit("idmap.put", key=ikey, uid=uid)
        ushard.commit("account.put", uid=uid, row=row)
        if self.graph is not None:
            self.graph.principal(uid)
        return self._materialize(row)

    def register_batch(self, entries: Iterable[Dict[str, object]], *,
                       now: float) -> List[str]:
        """Bulk onboarding wave: entries are dicts with ``entity_id``,
        ``sub``, ``display_name``, ``email``, ``loa``.

        All placements resolve (and fail closed on a downed shard)
        *before* anything commits; then each touched shard gets one
        ``idmap.put_batch`` / ``account.put_batch`` journal entry — the
        WAL amplification of onboarding 1M users is per-shard-per-wave,
        not per-user.  Existing identities resolve to their current uid.
        """
        id_batches: Dict[str, List[List[str]]] = {}
        row_batches: Dict[str, List[Dict[str, object]]] = {}
        seen: Dict[str, str] = {}
        uids: List[str] = []
        for entry in entries:
            identity = LinkedIdentity(entity_id=str(entry["entity_id"]),
                                      sub=str(entry["sub"]))
            ikey = self._ikey(identity)
            if ikey in seen:
                uids.append(seen[ikey])
                continue
            ishard = self._identity_shard(identity, record=False)
            existing = ishard.idmap.get(ikey)
            if existing is not None:
                seen[ikey] = existing
                uids.append(existing)
                continue
            uid = self.ids.next("ma") + self.uid_suffix
            ushard = self._uid_shard(uid, record=False)
            id_batches.setdefault(ishard.name, []).append([ikey, uid])
            row_batches.setdefault(ushard.name, []).append({
                "uid": uid,
                "linked": [[identity.entity_id, identity.sub]],
                "display_name": str(entry.get("display_name", "")),
                "email": str(entry.get("email", "")),
                "created_at": now,
                "loa": int(entry.get("loa", LevelOfAssurance.CAPPUCCINO)),
            })
            seen[ikey] = uid
            uids.append(uid)
        for name in sorted(id_batches):
            self.shards[name].commit("idmap.put_batch", pairs=id_batches[name])
        for name in sorted(row_batches):
            self.shards[name].commit("account.put_batch",
                                     rows=row_batches[name])
        fresh = sum(len(rows) for rows in row_batches.values())
        self.batched_registrations += fresh
        return uids

    def link(self, uid: str, identity: LinkedIdentity) -> Account:
        """Attach a second external identity to an existing account.

        The identity mapping lands on the *identity's* shard, the
        updated linked-list on the *uid's* shard — the canonical
        cross-shard write this tier must keep consistent.
        """
        ushard = self._uid_shard(uid)
        row = ushard.accounts.get(uid)
        if row is None:
            raise IdentityNotRegistered(f"no account {uid!r}")
        ishard = self._identity_shard(identity)
        ikey = self._ikey(identity)
        existing = ishard.idmap.get(ikey)
        if existing is not None and existing != uid:
            raise FederationError(
                f"identity {identity} is already linked to a different account")
        if existing is None:
            new_row = dict(row)
            new_row["linked"] = (list(row["linked"])
                                 + [[identity.entity_id, identity.sub]])
            ishard.commit("idmap.put", key=ikey, uid=uid)
            ushard.commit("account.put", uid=uid, row=new_row)
            row = new_row
        return self._materialize(row)

    def find(self, identity: LinkedIdentity) -> Optional[Account]:
        ishard = self._identity_shard(identity)
        uid = ishard.idmap.get(self._ikey(identity))
        if uid is None:
            return None
        row = self._uid_shard(uid).accounts.get(uid)
        return self._materialize(row) if row is not None else None

    def account(self, uid: str) -> Optional[Account]:
        row = self._uid_shard(uid).accounts.get(uid)
        return self._materialize(row) if row is not None else None

    def deprovision(self, uid: str) -> int:
        """Erase an account; retire the uid forever.

        Every involved shard (the uid's, plus one per linked identity)
        is resolved and health-checked *before* the first commit, so a
        downed shard fails the whole erasure closed instead of leaving a
        half-severed account behind.
        """
        ushard = self._uid_shard(uid)
        row = ushard.accounts.get(uid)
        if row is None:
            raise IdentityNotRegistered(f"no account {uid!r}")
        targets: List[Tuple[AccountShard, str]] = []
        for entity_id, sub in row["linked"]:
            ishard = self._locate(f"id:{entity_id}\n{sub}")
            targets.append((ishard, f"{entity_id}\n{sub}"))
        ushard.commit("account.del", uid=uid)
        ushard.commit("retire", uid=uid)
        removed = 0
        for ishard, ikey in targets:
            if ishard.idmap.get(ikey) == uid:
                ishard.commit("idmap.del", key=ikey)
                removed += 1
        if self.audit is not None:
            self.audit.record(
                self.clock.now(), "directory", "operator",
                "directory.deprovision", uid, Outcome.INFO,
                links_removed=removed, shard=ushard.name,
            )
        return removed

    def __len__(self) -> int:
        return sum(len(s.accounts) for s in self.shards.values())

    def retired_count(self) -> int:
        return sum(len(s.retired) for s in self.shards.values())

    # ----------------------------------------------------------- invariants
    def verify_invariants(self) -> Dict[str, int]:
        """Full cross-shard scan; raises :class:`RecoveryError` on any
        violation.  Checks: no uid lives on two shards; no retired uid
        has a live account anywhere; every identity link points at an
        existing account that lists it; every key sits on its ring owner
        (or is still pending at its migration source).
        """
        owners: Dict[str, str] = {}
        retired_total = 0
        for name in sorted(self.shards):
            shard = self.shards[name]
            for uid in shard.accounts:
                if uid in owners:
                    raise RecoveryError(
                        f"uid {uid!r} lives on both {owners[uid]!r} "
                        f"and {name!r}")
                owners[uid] = name
            retired_total += len(shard.retired)
        for name in sorted(self.shards):
            shard = self.shards[name]
            for uid in shard.retired:
                if uid in owners:
                    raise RecoveryError(
                        f"retired uid {uid!r} has a live account "
                        f"on {owners[uid]!r}")
        links = 0
        for name in sorted(self.shards):
            shard = self.shards[name]
            for ikey, uid in shard.idmap.items():
                owner = owners.get(uid)
                if owner is None:
                    raise RecoveryError(
                        f"identity {ikey!r} maps to missing account {uid!r}")
                entity_id, sub = ikey.split("\n", 1)
                row = self.shards[owner].accounts[uid]
                if [entity_id, sub] not in [list(li) for li in row["linked"]]:
                    raise RecoveryError(
                        f"account {uid!r} does not list identity {ikey!r}")
                links += 1
        mig = self._migration
        for name in sorted(self.shards):
            for rk in self.shards[name].ring_keys():
                want = self.ring.locate(rk)
                if want != name and not (
                        mig is not None and mig.pending.get(rk) == name):
                    raise RecoveryError(
                        f"key {rk!r} on {name!r}, ring owner {want!r}")
        return {
            "accounts": len(owners),
            "links": links,
            "retired": retired_total,
            "shards": len(self.shards),
        }
