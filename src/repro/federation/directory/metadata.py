"""Sharded federation-metadata store with validity-window enforcement.

The :class:`~repro.federation.edugain.EduGain` aggregate is a single
dict with no notion of document freshness.  At national-federation scale
metadata is a *feed* product: entries are published with validity
windows, refreshed on a cadence, and a consumer cut off from its feed
must eventually stop trusting what it cached.  This store keeps the
EduGain surface (``register_idp`` / ``refresh_idp`` / ``get`` / ``has``
/ ``idps`` / ``federations`` / ``__len__``) so it drops into
:class:`~repro.federation.myaccessid.MyAccessID` unchanged, and adds:

* ring-sharded, journal-durable entry storage
  (:class:`MetadataShard` on the shared :class:`ShardedTier` machinery);
* **validity windows**: :meth:`get` on an entry past ``valid_until``
  raises :class:`~repro.errors.MetadataStale` — the login path fails
  closed on stale metadata rather than validating assertions against
  possibly rotated keys (directly registered IdPs default to no expiry,
  feed-ingested entries always carry one);
* **batched upserts** (:meth:`upsert_batch`): one journal entry per
  touched shard per delta, the write shape of the ingest pipeline;
* a store-level **verifier vault** keyed by ``(entity_id, version)`` —
  key objects never enter a journal (the same KMS discipline as every
  other durable service), and version-skewed replays cannot resurrect a
  rotated-away key.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Iterator, List, Optional, Tuple

from repro.audit import Outcome
from repro.errors import (
    ConfigurationError,
    FederationError,
    MetadataStale,
    RecoveryError,
    ShardUnavailable,
)
from repro.federation.assurance import EntityCategory, LevelOfAssurance
from repro.federation.edugain import IdPMetadata
from repro.federation.directory.sharding import (
    PROBE_COST,
    DirectoryShard,
    ShardedTier,
)

__all__ = ["MetadataShard", "ShardedMetadataStore"]


class MetadataShard(DirectoryShard):
    """One partition of the metadata aggregate: entity id -> row."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.rows: Dict[str, Dict[str, object]] = {}

    # ----------------------------------------------------- Durable contract
    def durable_state(self) -> Dict[str, object]:
        return {"rows": {e: self.rows[e] for e in sorted(self.rows)}}

    def load_state(self, state: Dict[str, object]) -> None:
        self.rows = {e: dict(r) for e, r in state.get("rows", {}).items()}

    def wipe_state(self) -> None:
        self.rows = {}

    def apply_entry(self, kind: str, data: Dict[str, object]) -> None:
        if kind == "md.put":
            row = dict(data["row"])
            self.rows[row["entity_id"]] = row
        elif kind == "md.put_batch":
            for row in data["rows"]:
                self.rows[row["entity_id"]] = dict(row)
        elif kind == "md.del":
            self.rows.pop(data["entity_id"], None)
        elif kind == "migrate.in":
            for row in data["rows"]:
                self.rows[row["entity_id"]] = dict(row)
        elif kind == "migrate.out":
            for entity_id in data["entity_ids"]:
                self.rows.pop(entity_id, None)
        else:
            raise ConfigurationError(
                f"metadata shard {self.name!r}: unknown journal kind {kind!r}")

    # ------------------------------------------------------------ migration
    def ring_keys(self) -> Iterator[str]:
        for entity_id in self.rows:
            yield "md:" + entity_id

    def extract(self, ring_keys: List[str]) -> Dict[str, object]:
        rows = [self.rows[rk[3:]] for rk in ring_keys if rk[3:] in self.rows]
        self.commit("migrate.out",
                    entity_ids=[row["entity_id"] for row in rows])
        return {"rows": rows}

    def install(self, payload: Dict[str, object]) -> None:
        self.commit("migrate.in", **payload)

    def key_count(self) -> int:
        return len(self.rows)


class ShardedMetadataStore(ShardedTier):
    """EduGain-compatible aggregate, sharded + validity-enforcing."""

    tier = "metadata"

    def __init__(self, clock, *, shards=4, vnodes: int = 32,
                 probe_cost: float = PROBE_COST, migration_batch: int = 4096,
                 telemetry=None, audit=None) -> None:
        names = ([f"md-{i:02d}" for i in range(shards)]
                 if isinstance(shards, int) else list(shards))
        super().__init__(clock, names, vnodes=vnodes, probe_cost=probe_cost,
                         migration_batch=migration_batch,
                         telemetry=telemetry, audit=audit)
        # KMS-modelled verifier vault: key objects live here by
        # reference, never in a journal; versioning means a replayed
        # stale row can never resolve a newer entry's key (or vice versa)
        self._verifiers: Dict[Tuple[str, int], object] = {}
        # incremental sorted indices, same rationale as EduGain's
        self._index: List[str] = []
        self._fed_counts: Dict[str, int] = {}
        self._fed_sorted: List[str] = []
        self.stale_denials = 0
        self.upserts = 0

    def _new_shard(self, name: str) -> MetadataShard:
        return MetadataShard(name)

    # -------------------------------------------------------------- indices
    def _index_add(self, entity_id: str, federation: str) -> None:
        insort(self._index, entity_id)
        self._fed_add(federation)

    def _fed_add(self, federation: str) -> None:
        if federation not in self._fed_counts:
            self._fed_counts[federation] = 0
            insort(self._fed_sorted, federation)
        self._fed_counts[federation] += 1

    def _fed_drop(self, federation: str) -> None:
        self._fed_counts[federation] -= 1
        if self._fed_counts[federation] == 0:
            del self._fed_counts[federation]
            self._fed_sorted.remove(federation)

    # -------------------------------------------------------------- upserts
    def _shard_for(self, entity_id: str, *, record: bool = True) -> MetadataShard:
        return self._locate("md:" + entity_id, record=record)

    def upsert_record(self, *, entity_id: str, endpoint_name: str,
                      display_name: str, federation: str,
                      loa, categories, verifier: object,
                      version: int = 1,
                      valid_until: Optional[float] = None,
                      registered_at: Optional[float] = None,
                      _shard: Optional[MetadataShard] = None,
                      _commit: bool = True) -> Optional[Dict[str, object]]:
        """Version-aware upsert of one entry.

        Older versions are ignored (idempotent delta replay); the *same*
        version refreshes the validity window only (a republish); a
        newer version replaces the row and vaults its verifier (a
        rotation).  Returns the row written, or ``None`` if skipped.
        """
        shard = self._shard_for(entity_id, record=False) if _shard is None else _shard
        existing = shard.rows.get(entity_id)
        if existing is not None:
            if version < existing["version"]:
                return None
            if version == existing["version"]:
                row = dict(existing)
                row["valid_until"] = valid_until
                if _commit:
                    shard.commit("md.put", row=row)
                return row
            if federation != existing["federation"]:
                self._fed_drop(existing["federation"])
                self._fed_add(federation)
        else:
            self._index_add(entity_id, federation)
        row = {
            "entity_id": entity_id,
            "endpoint_name": endpoint_name,
            "display_name": display_name,
            "federation": federation,
            "loa": int(loa),
            "categories": [c.value if isinstance(c, EntityCategory) else str(c)
                           for c in categories],
            "version": int(version),
            "registered_at": (self.clock.now() if registered_at is None
                              else registered_at),
            "valid_until": valid_until,
        }
        self._verifiers[(entity_id, int(version))] = verifier
        self.upserts += 1
        if _commit:
            shard.commit("md.put", row=row)
        return row

    def upsert_batch(self, records: List[Dict[str, object]]) -> int:
        """Apply one delta's upserts: group rows per shard and commit a
        single ``md.put_batch`` journal entry per touched shard.

        Each record carries the :meth:`upsert_record` fields (with a
        live ``verifier`` object).  Returns how many rows were written.
        """
        staged: Dict[str, List[Dict[str, object]]] = {}
        for rec in records:
            shard = self._shard_for(rec["entity_id"], record=False)
            row = self.upsert_record(_shard=shard, _commit=False, **rec)
            if row is not None:
                staged.setdefault(shard.name, []).append(row)
        written = 0
        for name in sorted(staged):
            self.shards[name].commit("md.put_batch", rows=staged[name])
            written += len(staged[name])
        return written

    # --------------------------------------------- EduGain-compatible surface
    def register_idp(self, idp, *, federation: str,
                     display_name: Optional[str] = None,
                     valid_for: Optional[float] = None) -> IdPMetadata:
        """First publication of a directly registered IdP.

        Without ``valid_for`` the entry never expires — the bilateral
        trust anchors the deployment builder registers are not feed
        products and must not go stale when no feed refreshes them.
        """
        if self.has(idp.entity_id):
            raise ConfigurationError(
                f"entity {idp.entity_id!r} already registered "
                "(use refresh_idp to re-register)")
        now = self.clock.now()
        row = self.upsert_record(
            entity_id=idp.entity_id, endpoint_name=idp.name,
            display_name=display_name or idp.name, federation=federation,
            loa=idp.loa, categories=idp.categories, verifier=idp.verifier(),
            version=1, registered_at=now,
            valid_until=None if valid_for is None else now + valid_for,
        )
        return self._materialize(row)

    def refresh_idp(self, idp, *, federation: Optional[str] = None,
                    display_name: Optional[str] = None,
                    valid_for: Optional[float] = None) -> IdPMetadata:
        """Re-registration: version bump + fresh verifier read."""
        shard = self._shard_for(idp.entity_id, record=False)
        old = shard.rows.get(idp.entity_id)
        if old is None:
            raise FederationError(
                f"entity {idp.entity_id!r} not in federation metadata "
                "(register_idp it first)")
        now = self.clock.now()
        row = self.upsert_record(
            entity_id=idp.entity_id, endpoint_name=idp.name,
            display_name=display_name or old["display_name"],
            federation=federation or old["federation"],
            loa=idp.loa, categories=idp.categories, verifier=idp.verifier(),
            version=old["version"] + 1, registered_at=old["registered_at"],
            valid_until=None if valid_for is None else now + valid_for,
        )
        return self._materialize(row)

    def remove(self, entity_id: str) -> bool:
        """Drop an entry (IdP left the federation)."""
        shard = self._shard_for(entity_id, record=False)
        row = shard.rows.get(entity_id)
        if row is None:
            return False
        shard.commit("md.del", entity_id=entity_id)
        self._index.remove(entity_id)
        self._fed_drop(row["federation"])
        return True

    def _materialize(self, row: Dict[str, object]) -> IdPMetadata:
        return IdPMetadata(
            entity_id=row["entity_id"],
            endpoint_name=row["endpoint_name"],
            display_name=row["display_name"],
            federation=row["federation"],
            loa=LevelOfAssurance(row["loa"]),
            categories=tuple(EntityCategory(c) for c in row["categories"]),
            verifier=self._verifiers.get((row["entity_id"], row["version"])),
            version=row["version"],
            registered_at=row["registered_at"],
            valid_until=row["valid_until"],
        )

    def get(self, entity_id: str) -> IdPMetadata:
        """Login-path read: unknown entities and *expired* entries both
        refuse — stale metadata fails the login closed."""
        shard = self._shard_for(entity_id)
        row = shard.rows.get(entity_id)
        if row is None:
            raise FederationError(
                f"entity {entity_id!r} not in federation metadata")
        valid_until = row["valid_until"]
        if valid_until is not None and self.clock.now() > valid_until:
            self.stale_denials += 1
            if self.telemetry is not None:
                self.telemetry.metadata_stale_denials.inc(
                    federation=row["federation"])
            if self.audit is not None:
                self.audit.record(
                    self.clock.now(), "directory", entity_id,
                    "metadata.stale", row["federation"], Outcome.DENIED,
                    valid_until=valid_until, version=row["version"],
                )
            raise MetadataStale(
                f"metadata for {entity_id!r} expired at t={valid_until} "
                f"(now t={self.clock.now()}); login fails closed")
        return self._materialize(row)

    def peek(self, entity_id: str) -> Optional[IdPMetadata]:
        """Operator read: no staleness enforcement (``None`` if absent)."""
        shard = self._shard_for(entity_id, record=False)
        row = shard.rows.get(entity_id)
        return self._materialize(row) if row is not None else None

    def has(self, entity_id: str) -> bool:
        shard = self._shard_for(entity_id, record=False)
        return entity_id in shard.rows

    def idps(self, *, include_stale: bool = False) -> List[IdPMetadata]:
        """Discovery listing, sorted by entity id.

        Expired entries are omitted unless ``include_stale`` — stale
        IdPs must not be *offered* either.  Entries on a downed shard
        are skipped (discovery degrades; the login path still fails
        closed via :meth:`get`).
        """
        now = self.clock.now()
        out: List[IdPMetadata] = []
        for entity_id in self._index:
            try:
                shard = self._shard_for(entity_id, record=False)
            except ShardUnavailable:
                continue
            row = shard.rows.get(entity_id)
            if row is None:
                continue
            valid_until = row["valid_until"]
            if (not include_stale and valid_until is not None
                    and now > valid_until):
                continue
            out.append(self._materialize(row))
        return out

    def federations(self) -> List[str]:
        return list(self._fed_sorted)

    def __len__(self) -> int:
        return sum(len(s.rows) for s in self.shards.values())

    def expired_count(self) -> int:
        now = self.clock.now()
        return sum(
            1 for s in self.shards.values() for row in s.rows.values()
            if row["valid_until"] is not None and now > row["valid_until"])

    # ----------------------------------------------------------- invariants
    def verify_invariants(self) -> Dict[str, int]:
        """No entity on two shards; every key on its ring owner (or
        pending at its migration source); index == union of shard rows."""
        owners: Dict[str, str] = {}
        for name in sorted(self.shards):
            for entity_id in self.shards[name].rows:
                if entity_id in owners:
                    raise RecoveryError(
                        f"entity {entity_id!r} on both {owners[entity_id]!r} "
                        f"and {name!r}")
                owners[entity_id] = name
        mig = self._migration
        for name in sorted(self.shards):
            for rk in self.shards[name].ring_keys():
                want = self.ring.locate(rk)
                if want != name and not (
                        mig is not None and mig.pending.get(rk) == name):
                    raise RecoveryError(
                        f"key {rk!r} on {name!r}, ring owner {want!r}")
        if sorted(owners) != self._index:
            raise RecoveryError("metadata index out of sync with shard rows")
        return {"entities": len(owners), "shards": len(self.shards)}
