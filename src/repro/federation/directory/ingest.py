"""Batched metadata ingest: signed delta feeds from federation registrars.

National federations do not push entries into consumers one at a time —
each federation operates a *registrar* that publishes a signed metadata
feed, and consumers (here the Isambard directory tier) poll it, verify
the registrar signature, and apply the delta as one batch.  Three
classes model that supply chain:

* :class:`MetadataFeed` — a registrar endpoint: holds its federation's
  roster, stages changes (new IdPs, key rotations, departures), and
  publishes signed :class:`FeedDelta` documents with monotonically
  increasing sequence numbers.  A full :meth:`MetadataFeed.republish`
  re-signs the whole roster with a fresh validity window — the periodic
  refresh that keeps consumers' entries from expiring.
* :class:`FeedDelta` — one signed publication.  The signature covers a
  canonical-JSON digest of the wire payload; verifier key objects ride
  *out of band*, referenced by ``kid``, exactly as JWKS references keys
  — tampering with any row (say, swapping a verifier kid) breaks the
  signature and the whole delta is rejected.
* :class:`MetadataIngestor` — the consumer side: polls every registered
  feed, verifies signatures against the pinned registrar key, applies
  upserts/removals to the :class:`ShardedMetadataStore` in one
  per-shard-batched write, and tracks per-feed lag.  A feed outage is
  *absorbed*, not propagated: entries stay served until their validity
  window lapses, at which point logins through them fail closed
  (:class:`~repro.errors.MetadataStale`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.audit import Outcome
from repro.crypto.keys import generate_signing_key
from repro.errors import (
    ConfigurationError,
    FederationError,
    ServiceUnavailable,
    SignatureInvalid,
)
from repro.federation.assurance import EntityCategory, LevelOfAssurance

__all__ = ["FeedDelta", "MetadataFeed", "MetadataIngestor", "FEED_VALIDITY"]

FEED_VALIDITY = 14 * 86400.0  # two-week validity window per publication


def _canonical_digest(payload: object) -> bytes:
    """sha256 over canonical JSON — the byte string registrars sign."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).digest()


@dataclass(frozen=True)
class FeedDelta:
    """One signed feed publication (sequence-numbered)."""

    feed: str
    seq: int
    issued_at: float
    valid_for: float
    upserts: Tuple[Dict[str, object], ...]  # wire rows (verifier_kid refs)
    removals: Tuple[str, ...]  # entity ids that left the federation
    signature: bytes
    # out-of-band key material, kid -> verifier object (never signed,
    # never journaled; the signed rows only *name* kids)
    verifiers: Dict[str, object] = field(default_factory=dict)

    def signed_payload(self) -> Dict[str, object]:
        return {
            "feed": self.feed,
            "seq": self.seq,
            "issued_at": self.issued_at,
            "valid_for": self.valid_for,
            "upserts": list(self.upserts),
            "removals": list(self.removals),
        }


class MetadataFeed:
    """A federation registrar publishing signed deltas.

    ``add``/``rotate``/``remove`` stage changes; :meth:`flush` signs and
    publishes them as the next delta.  :meth:`republish` emits the whole
    roster (validity refresh).  ``down`` simulates a registrar outage:
    :meth:`fetch_since` raises until it is cleared.
    """

    def __init__(self, name: str, clock, *,
                 valid_for: float = FEED_VALIDITY,
                 signing_key=None) -> None:
        self.name = name
        self.clock = clock
        self.valid_for = valid_for
        self.key = (signing_key if signing_key is not None
                    else generate_signing_key("EdDSA", kid=f"feed-{name}-registrar"))
        self.down = False
        self.seq = 0
        # entity_id -> wire row (version, verifier_kid, ...)
        self.roster: Dict[str, Dict[str, object]] = {}
        self._verifiers: Dict[str, object] = {}  # kid -> verifier object
        self._staged_upserts: Dict[str, Dict[str, object]] = {}
        self._staged_removals: List[str] = []
        self._published: List[FeedDelta] = []

    def verifying_key(self):
        """The registrar public key consumers pin at registration time."""
        return self.key.public()

    # ------------------------------------------------------------- staging
    @staticmethod
    def _kid_of(verifier: object) -> str:
        return getattr(verifier, "kid", str(verifier))

    def add(self, *, entity_id: str, endpoint_name: str, display_name: str,
            federation: Optional[str] = None, loa, categories,
            verifier: object, version: int = 1) -> None:
        """Stage an IdP entry (new member, or a rotation/update when the
        version exceeds what was previously published)."""
        kid = self._kid_of(verifier)
        row = {
            "entity_id": entity_id,
            "endpoint_name": endpoint_name,
            "display_name": display_name,
            "federation": federation or self.name,
            "loa": int(loa),
            "categories": [c.value if isinstance(c, EntityCategory) else str(c)
                           for c in categories],
            "version": int(version),
            "verifier_kid": kid,
        }
        self._verifiers[kid] = verifier
        self.roster[entity_id] = row
        self._staged_upserts[entity_id] = row

    def add_idp(self, idp, *, federation: Optional[str] = None,
                version: int = 1) -> None:
        """Convenience: stage a live :class:`InstitutionalIdP`."""
        self.add(entity_id=idp.entity_id, endpoint_name=idp.name,
                 display_name=idp.name, federation=federation,
                 loa=idp.loa, categories=idp.categories,
                 verifier=idp.verifier(), version=version)

    def rotate(self, entity_id: str, verifier: object) -> None:
        """Stage a key rotation: version bump + new verifier kid."""
        row = self.roster.get(entity_id)
        if row is None:
            raise ConfigurationError(
                f"feed {self.name!r} has no entity {entity_id!r}")
        kid = self._kid_of(verifier)
        new = dict(row)
        new["version"] = row["version"] + 1
        new["verifier_kid"] = kid
        self._verifiers[kid] = verifier
        self.roster[entity_id] = new
        self._staged_upserts[entity_id] = new

    def remove(self, entity_id: str) -> None:
        """Stage a departure (IdP left the federation)."""
        if self.roster.pop(entity_id, None) is None:
            raise ConfigurationError(
                f"feed {self.name!r} has no entity {entity_id!r}")
        self._staged_upserts.pop(entity_id, None)
        self._staged_removals.append(entity_id)

    # ---------------------------------------------------------- publishing
    def _publish(self, upserts: List[Dict[str, object]],
                 removals: List[str]) -> FeedDelta:
        self.seq += 1
        payload = {
            "feed": self.name,
            "seq": self.seq,
            "issued_at": self.clock.now(),
            "valid_for": self.valid_for,
            "upserts": upserts,
            "removals": removals,
        }
        signature = self.key.sign(_canonical_digest(payload))
        delta = FeedDelta(
            feed=self.name, seq=self.seq, issued_at=payload["issued_at"],
            valid_for=self.valid_for, upserts=tuple(upserts),
            removals=tuple(removals), signature=signature,
            verifiers={row["verifier_kid"]: self._verifiers[row["verifier_kid"]]
                       for row in upserts},
        )
        self._published.append(delta)
        return delta

    def flush(self) -> Optional[FeedDelta]:
        """Publish staged changes as one delta (``None`` if nothing staged)."""
        if not self._staged_upserts and not self._staged_removals:
            return None
        upserts = [self._staged_upserts[e] for e in sorted(self._staged_upserts)]
        removals = sorted(self._staged_removals)
        self._staged_upserts = {}
        self._staged_removals = []
        return self._publish(upserts, removals)

    def republish(self) -> FeedDelta:
        """Sign and publish the *entire* roster with a fresh validity
        window — the periodic refresh cycle.  Staged changes ride along."""
        self._staged_upserts = {}
        removals = sorted(self._staged_removals)
        self._staged_removals = []
        upserts = [self.roster[e] for e in sorted(self.roster)]
        return self._publish(upserts, removals)

    def fetch_since(self, seq: int) -> List[FeedDelta]:
        """Consumer poll: deltas newer than ``seq`` (outage-aware)."""
        if self.down:
            raise ServiceUnavailable(f"metadata feed {self.name!r} unreachable")
        return [d for d in self._published if d.seq > seq]


class MetadataIngestor:
    """Polls registered feeds and applies verified deltas to the store."""

    def __init__(self, clock, store, *, audit=None, telemetry=None) -> None:
        self.clock = clock
        self.store = store
        self.audit = audit
        self.telemetry = telemetry
        self.feeds: Dict[str, MetadataFeed] = {}
        self._pinned: Dict[str, object] = {}  # feed -> registrar verifier
        self._last_seq: Dict[str, int] = {}
        self._applied_at: Dict[str, float] = {}
        self.applied_deltas = 0
        self.applied_entries = 0
        self.rejected_deltas = 0
        self.failed_polls = 0

    def register_feed(self, feed: MetadataFeed) -> None:
        """Pin the registrar's verifying key (trust-on-first-registration,
        as consumers pin federation signing certs out of band)."""
        if feed.name in self.feeds:
            raise ConfigurationError(f"feed {feed.name!r} already registered")
        self.feeds[feed.name] = feed
        self._pinned[feed.name] = feed.verifying_key()
        self._last_seq[feed.name] = 0
        self._applied_at[feed.name] = self.clock.now()

    # -------------------------------------------------------------- polling
    def _count(self, feed: str, result: str, entries: int = 0) -> None:
        if self.telemetry is not None:
            self.telemetry.metadata_ingest_batches.inc(feed=feed, result=result)
            if entries:
                self.telemetry.metadata_ingest_entries.inc(entries, feed=feed)

    def _apply(self, delta: FeedDelta) -> int:
        try:
            self._pinned[delta.feed].verify(
                _canonical_digest(delta.signed_payload()), delta.signature)
        except SignatureInvalid:
            self.rejected_deltas += 1
            self._count(delta.feed, "rejected")
            if self.audit is not None:
                self.audit.record(
                    self.clock.now(), "directory", delta.feed,
                    "metadata.delta_rejected", f"seq={delta.seq}",
                    Outcome.DENIED, reason="bad-signature")
            raise FederationError(
                f"delta seq={delta.seq} from feed {delta.feed!r} failed "
                "signature verification")
        valid_until = delta.issued_at + delta.valid_for
        records = []
        for row in delta.upserts:
            rec = {k: v for k, v in row.items() if k != "verifier_kid"}
            rec["verifier"] = delta.verifiers.get(row["verifier_kid"])
            rec["valid_until"] = valid_until
            records.append(rec)
        written = self.store.upsert_batch(records)
        for entity_id in delta.removals:
            self.store.remove(entity_id)
        self._last_seq[delta.feed] = delta.seq
        self._applied_at[delta.feed] = self.clock.now()
        self.applied_deltas += 1
        self.applied_entries += written + len(delta.removals)
        self._count(delta.feed, "applied", written + len(delta.removals))
        return written

    def poll(self) -> Dict[str, int]:
        """Poll every feed once; returns entries applied per feed.

        A downed feed is recorded and skipped (entries age toward their
        validity horizon); a bad signature stops *that feed's* delta
        stream without advancing its sequence — later deltas are not
        applied over an unverified gap.
        """
        applied: Dict[str, int] = {}
        for name in sorted(self.feeds):
            feed = self.feeds[name]
            try:
                deltas = feed.fetch_since(self._last_seq[name])
            except ServiceUnavailable:
                self.failed_polls += 1
                self._count(name, "unavailable")
                self._gauge_age(name)
                continue
            total = 0
            for delta in deltas:
                try:
                    total += self._apply(delta)
                except FederationError:
                    break  # do not apply past an unverifiable delta
            applied[name] = total
            self._gauge_age(name)
        return applied

    # ------------------------------------------------------------- health
    def _gauge_age(self, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.metadata_feed_age.set(self.feed_age(name), feed=name)

    def feed_age(self, name: str) -> float:
        """Seconds since this feed's content was last applied."""
        if name not in self._applied_at:
            raise ConfigurationError(f"no feed {name!r} registered")
        return self.clock.now() - self._applied_at[name]

    def set_feed_down(self, name: str, down: bool) -> None:
        """Chaos hook target: force/clear a registrar outage."""
        feed = self.feeds.get(name)
        if feed is None:
            raise ConfigurationError(f"no feed {name!r} registered")
        feed.down = down

    def stats(self) -> Dict[str, object]:
        return {
            "feeds": len(self.feeds),
            "applied_deltas": self.applied_deltas,
            "applied_entries": self.applied_entries,
            "rejected_deltas": self.rejected_deltas,
            "failed_polls": self.failed_polls,
            "last_seq": dict(sorted(self._last_seq.items())),
        }
