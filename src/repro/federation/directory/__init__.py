"""Federation directory: the sharded identity + metadata tier.

One MyAccessID account registry dict and one eduGAIN metadata dict are
fine for a 45-user RSECon tutorial; a national federation is 1M+ users
across 10k IdPs, and that working set has to be *partitioned*, *durable
per partition*, and *refreshable in bulk*.  This package provides:

* :mod:`~repro.federation.directory.sharding` — the generic
  consistent-hash shard tier (:class:`ShardedTier`), its journal-durable
  shard base, deterministic key migration on shard add/remove, and the
  :class:`ShardedAccountRegistry` (drop-in for
  :class:`~repro.federation.myaccessid.AccountRegistry`);
* :mod:`~repro.federation.directory.metadata` — the
  :class:`ShardedMetadataStore` (drop-in for
  :class:`~repro.federation.edugain.EduGain`) with validity windows:
  stale metadata fails logins closed;
* :mod:`~repro.federation.directory.ingest` — signed delta feeds from
  federation registrars and the batched :class:`MetadataIngestor`.

``build_isambard(directory=True)`` wires all three into the deployment
and exposes them as the :class:`FederationDirectory` runtime handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.federation.directory.ingest import (
    FEED_VALIDITY,
    FeedDelta,
    MetadataFeed,
    MetadataIngestor,
)
from repro.federation.directory.metadata import MetadataShard, ShardedMetadataStore
from repro.federation.directory.sharding import (
    PROBE_COST,
    AccountShard,
    DirectoryConfig,
    DirectoryShard,
    Migration,
    ShardedAccountRegistry,
    ShardedTier,
)

__all__ = [
    "PROBE_COST",
    "FEED_VALIDITY",
    "DirectoryConfig",
    "DirectoryShard",
    "AccountShard",
    "MetadataShard",
    "Migration",
    "ShardedTier",
    "ShardedAccountRegistry",
    "ShardedMetadataStore",
    "FeedDelta",
    "MetadataFeed",
    "MetadataIngestor",
    "FederationDirectory",
]


@dataclass
class FederationDirectory:
    """Runtime handle bundling the directory tier's moving parts."""

    config: DirectoryConfig
    accounts: ShardedAccountRegistry
    metadata: ShardedMetadataStore
    ingestor: MetadataIngestor

    def verify_invariants(self) -> dict:
        """Cross-shard invariant sweep over both tiers."""
        return {
            "accounts": self.accounts.verify_invariants(),
            "metadata": self.metadata.verify_invariants(),
        }

    def stats(self) -> dict:
        return {
            "accounts": self.accounts.stats(),
            "metadata": self.metadata.stats(),
            "ingest": self.ingestor.stats(),
        }
