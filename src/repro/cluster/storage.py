"""Project storage in the Data Storage zone.

Each project gets a directory on the parallel filesystem with a quota;
access is by UNIX account and scoped to the account's own project — the
storage-plane expression of "a unique UNIX username ... for each user's
access to each project".  (The paper notes filesystem-level encryption
is future work; the ``encrypted_at_rest`` flag models that roadmap item
and is asserted off in the CAF assessment.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import AuthorizationError, QuotaExceeded

__all__ = ["ProjectVolume", "ParallelFilesystem"]


@dataclass
class ProjectVolume:
    project_id: str
    quota_bytes: int
    used_bytes: int = 0
    files: Dict[str, int] = field(default_factory=dict)  # path -> size


class ParallelFilesystem:
    """A quota-enforcing project filesystem.

    Parameters
    ----------
    account_project:
        Callable ``unix_account -> project_id | None`` backed by the
        cluster user database; the filesystem's only authorisation input.
    """

    def __init__(
        self,
        account_project: Callable[[str], Optional[str]],
        *,
        default_quota: int = 10 * 2**40,  # 10 TiB
        encrypted_at_rest: bool = False,
    ) -> None:
        self.account_project = account_project
        self.default_quota = default_quota
        self.encrypted_at_rest = encrypted_at_rest
        self._volumes: Dict[str, ProjectVolume] = {}

    def provision(self, project_id: str, *, quota_bytes: Optional[int] = None) -> ProjectVolume:
        vol = self._volumes.get(project_id)
        if vol is None:
            vol = ProjectVolume(
                project_id=project_id,
                quota_bytes=quota_bytes or self.default_quota,
            )
            self._volumes[project_id] = vol
        return vol

    def _authorise(self, account: str, project_id: str) -> ProjectVolume:
        owner = self.account_project(account)
        if owner != project_id:
            raise AuthorizationError(
                f"account {account!r} may not touch project {project_id!r} storage"
            )
        vol = self._volumes.get(project_id)
        if vol is None:
            raise AuthorizationError(f"project {project_id!r} has no volume")
        return vol

    def write(self, account: str, project_id: str, path: str, size: int) -> None:
        vol = self._authorise(account, project_id)
        delta = size - vol.files.get(path, 0)
        if vol.used_bytes + delta > vol.quota_bytes:
            raise QuotaExceeded(
                f"project {project_id} quota exceeded "
                f"({vol.used_bytes + delta} > {vol.quota_bytes} bytes)"
            )
        vol.files[path] = size
        vol.used_bytes += delta

    def read(self, account: str, project_id: str, path: str) -> int:
        vol = self._authorise(account, project_id)
        if path not in vol.files:
            raise AuthorizationError(f"no file {path!r} in project {project_id}")
        return vol.files[path]

    def usage(self, project_id: str) -> ProjectVolume:
        vol = self._volumes.get(project_id)
        if vol is None:
            raise AuthorizationError(f"project {project_id!r} has no volume")
        return vol

    def purge_project(self, project_id: str) -> int:
        """Remove a closed project's data; returns bytes freed."""
        vol = self._volumes.pop(project_id, None)
        return vol.used_bytes if vol else 0
