"""A Slurm-style job scheduler for the simulated cluster.

Login nodes run "essential services such as Slurm (job management and
resource scheduler)".  The scheduler here implements the pieces the IAM
co-design touches:

* jobs are submitted **by a UNIX account within an SSH session** — no
  session, no job;
* each job is charged to its project's allocation via the portal
  (time- and resource-limited projects, user story 1);
* FIFO backfill over a :class:`~repro.cluster.nodes.NodePool`, with
  completions driven by simulated-clock events;
* revoked accounts' pending jobs are cancellable in one sweep (the
  kill-switch follow-through on the batch plane).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.audit import AuditLog, Outcome
from repro.clock import SimClock
from repro.cluster.nodes import NodePool
from repro.errors import QuotaExceeded, RateLimited, SchedulerError
from repro.ids import IdFactory

__all__ = ["JobState", "Job", "SlurmScheduler"]


class JobState(str, enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    FAILED = "failed"


@dataclass
class Job:
    job_id: str
    account: str        # unix account (per-project)
    project_id: str
    nodes: int
    walltime: float     # seconds
    state: JobState = JobState.PENDING
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def gpu_hours(self, gpus_per_node: int = 4) -> float:
        return self.nodes * gpus_per_node * self.walltime / 3600.0


class SlurmScheduler:
    """FIFO scheduler with allocation accounting.

    Parameters
    ----------
    charge:
        Callable ``(project_id, gpu_hours) -> None`` that raises
        :class:`~repro.errors.QuotaExceeded` when the allocation cannot
        cover the job — wired to the portal's ``record_usage``.
    max_pending:
        Bound on the pending queue.  A real scheduler with an unbounded
        queue is an overload amplifier (submissions during an incident
        pile up and replay); overflow raises
        :class:`~repro.errors.RateLimited` whose ``retry_after`` points
        at the earliest running-job completion.
    """

    def __init__(
        self,
        clock: SimClock,
        ids: IdFactory,
        pool: NodePool,
        charge: Callable[[str, float], None],
        *,
        audit: Optional[AuditLog] = None,
        max_walltime: float = 24 * 3600.0,
        charge_units_per_node: int = 4,
        max_pending: int = 512,
    ) -> None:
        self.clock = clock
        self.ids = ids
        self.pool = pool
        self.charge = charge
        self.audit = audit if audit is not None else AuditLog("slurm-audit")
        self.max_walltime = max_walltime
        # allocation units consumed per node-hour: GPUs on Isambard-AI
        # (Grace-Hopper), plain node-hours on Isambard 3 (Grace-Grace)
        self.charge_units_per_node = charge_units_per_node
        if max_pending < 1:
            raise SchedulerError("max_pending must be at least 1")
        self.max_pending = max_pending
        self.submissions_shed = 0
        self._jobs: Dict[str, Job] = {}
        self._queue: List[str] = []
        # continuous authorization: pending/running jobs tracked as
        # grants; submissions fail closed when the PDP is unreachable
        # past the staleness bound
        self.session_registry = None
        self.authz_guard = None

    # ------------------------------------------------------------------
    def submit(
        self, account: str, project_id: str, *, nodes: int = 1, walltime: float = 3600.0
    ) -> Job:
        """Queue a job; charges the allocation up front (reservation)."""
        if self.authz_guard is not None:
            self.authz_guard.check("compute", actor=account)
        if nodes < 1:
            raise SchedulerError("a job needs at least one node")
        if walltime <= 0 or walltime > self.max_walltime:
            raise SchedulerError(
                f"walltime must be in (0, {self.max_walltime}] seconds"
            )
        if nodes > len(self.pool.nodes()):
            raise SchedulerError(
                f"requested {nodes} nodes; cluster has {len(self.pool.nodes())}"
            )
        if self.queue_length() >= self.max_pending:
            self.submissions_shed += 1
            retry_after = self._earliest_completion()
            self.audit.record(
                self.clock.now(), "slurm", account, "job.submit", "queue-full",
                Outcome.SHED, project=project_id,
                pending=self.queue_length(), max_pending=self.max_pending,
                retry_after=retry_after,
            )
            raise RateLimited(
                f"pending queue full ({self.queue_length()}/{self.max_pending})",
                retry_after=retry_after, service="slurm",
            )
        job = Job(
            job_id=self.ids.next("job"),
            account=account,
            project_id=project_id,
            nodes=nodes,
            walltime=walltime,
            submitted_at=self.clock.now(),
        )
        # reserve allocation before the job is ever eligible to run
        self.charge(project_id, job.gpu_hours(self.charge_units_per_node))
        self._jobs[job.job_id] = job
        self._queue.append(job.job_id)
        if self.session_registry is not None:
            self.session_registry.track(
                "slurm-job", "compute", account, job.job_id,
                project=project_id)
        self.audit.record(
            self.clock.now(), "slurm", account, "job.submit", job.job_id,
            Outcome.SUCCESS, project=project_id, nodes=nodes, walltime=walltime,
        )
        self._schedule()
        return job

    def _earliest_completion(self) -> float:
        """Seconds until the soonest running job frees its nodes — the
        most honest retry hint a full queue can give.  With nothing
        running the queue will drain as soon as the pool frees up, so
        suggest a token backoff instead."""
        now = self.clock.now()
        finishes = [
            j.started_at + j.walltime - now
            for j in self._jobs.values()
            if j.state == JobState.RUNNING and j.started_at is not None
        ]
        if not finishes:
            return 1.0
        return max(min(finishes), 0.0)

    def _schedule(self) -> None:
        """Start queued jobs while nodes are free (FIFO, no skip)."""
        while self._queue:
            job = self._jobs[self._queue[0]]
            if job.state != JobState.PENDING:
                self._queue.pop(0)
                continue
            if len(self.pool.free_nodes()) < job.nodes:
                return
            self._queue.pop(0)
            self.pool.allocate(job.nodes, job.job_id)
            job.state = JobState.RUNNING
            job.started_at = self.clock.now()
            self.clock.call_later(job.walltime, lambda j=job: self._complete(j))
            self.audit.record(
                self.clock.now(), "slurm", job.account, "job.start", job.job_id,
                Outcome.INFO,
            )

    def _complete(self, job: Job) -> None:
        if job.state != JobState.RUNNING:
            return
        job.state = JobState.COMPLETED
        job.finished_at = self.clock.now()
        self.pool.release(job.job_id)
        if self.session_registry is not None:
            self.session_registry.close("slurm-job", job.job_id,
                                        reason="completed")
        self.audit.record(
            self.clock.now(), "slurm", job.account, "job.complete", job.job_id,
            Outcome.SUCCESS,
        )
        self._schedule()

    # ------------------------------------------------------------------
    def cancel(self, job_id: str, *, by: str = "user") -> bool:
        job = self._jobs.get(job_id)
        if job is None or job.state not in (JobState.PENDING, JobState.RUNNING):
            return False
        if job.state == JobState.RUNNING:
            self.pool.release(job.job_id)
        job.state = JobState.CANCELLED
        job.finished_at = self.clock.now()
        if self.session_registry is not None:
            self.session_registry.close("slurm-job", job.job_id,
                                        reason="cancelled")
        self.audit.record(
            self.clock.now(), "slurm", by, "job.cancel", job.job_id, Outcome.INFO,
        )
        self._schedule()
        return True

    def cancel_account(self, account: str, *, by: str = "killswitch") -> int:
        """Cancel everything belonging to one UNIX account."""
        n = 0
        for job in list(self._jobs.values()):
            if job.account == account and job.state in (JobState.PENDING, JobState.RUNNING):
                self.cancel(job.job_id, by=by)
                n += 1
        return n

    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self, state: Optional[JobState] = None) -> List[Job]:
        return [j for j in self._jobs.values() if state is None or j.state == state]

    def queue_length(self) -> int:
        return sum(1 for j in self._jobs.values() if j.state == JobState.PENDING)
