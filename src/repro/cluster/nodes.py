"""Cluster hardware model and the management-plane node service.

Isambard-AI phase 1 is 168 Grace-Hopper superchips; Isambard 3 is 384
Grace-Grace superchips.  The simulation models nodes as schedulable
resources (for Slurm and the Jupyter spawner) plus a management node in
the Management zone that accepts privileged operations **only** from the
tailnet, with an admin RBAC token, per user story 5: "it establishes
segmentation and enforces policies at each level for accessing the
management plane of a cluster".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.audit import AuditLog, Outcome
from repro.broker.rbac import require_capability
from repro.broker.tokens import RbacTokenValidator
from repro.clock import SimClock
from repro.errors import AuthenticationError, AuthorizationError, SchedulerError
from repro.net.http import HttpRequest, HttpResponse, Service, route
from repro.tunnels.tailnet import NODE_HEADER

__all__ = ["ComputeNode", "NodePool", "ManagementNode"]


@dataclass
class ComputeNode:
    """One superchip node."""

    node_id: str
    kind: str  # "grace-hopper" (AI) or "grace-grace" (HPC)
    gpus: int
    up: bool = True
    allocated_to: Optional[str] = None  # job or jupyter session id

    @property
    def free(self) -> bool:
        return self.up and self.allocated_to is None


class NodePool:
    """The cluster's node inventory with allocate/release bookkeeping."""

    def __init__(self, prefix: str, kind: str, count: int, *, gpus_per_node: int = 4) -> None:
        self._nodes: Dict[str, ComputeNode] = {
            f"{prefix}-{i:04d}": ComputeNode(
                node_id=f"{prefix}-{i:04d}", kind=kind, gpus=gpus_per_node
            )
            for i in range(count)
        }

    def nodes(self) -> List[ComputeNode]:
        return list(self._nodes.values())

    def node(self, node_id: str) -> Optional[ComputeNode]:
        return self._nodes.get(node_id)

    def free_nodes(self) -> List[ComputeNode]:
        return [n for n in self._nodes.values() if n.free]

    def allocate(self, count: int, owner: str) -> List[ComputeNode]:
        """Grab ``count`` free nodes for ``owner`` or raise SchedulerError."""
        free = self.free_nodes()
        if len(free) < count:
            raise SchedulerError(
                f"requested {count} nodes, only {len(free)} free"
            )
        taken = free[:count]
        for node in taken:
            node.allocated_to = owner
        return taken

    def release(self, owner: str) -> int:
        n = 0
        for node in self._nodes.values():
            if node.allocated_to == owner:
                node.allocated_to = None
                n += 1
        return n

    def set_up(self, node_id: str, up: bool) -> None:
        node = self._nodes.get(node_id)
        if node is None:
            raise SchedulerError(f"no node {node_id!r}")
        node.up = up

    def utilisation(self) -> float:
        nodes = self.nodes()
        busy = sum(1 for n in nodes if n.allocated_to is not None)
        return busy / len(nodes) if nodes else 0.0


class ManagementNode(Service):
    """The cluster's admin plane.

    Requests must (a) arrive via the tailnet relay — the segmented
    network makes any other path impossible, and the relay header proves
    which enrolled device originated it — and (b) carry an admin RBAC
    token with ``mgmt.access`` scoped to this node's audience.  Two
    independent layers, per the paper's "separate access control list on
    the cluster level and additional controls".
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        validator: RbacTokenValidator,
        pool: NodePool,
        *,
        audit: Optional[AuditLog] = None,
        policy=None,
    ) -> None:
        super().__init__(name)
        self.clock = clock
        self.validator = validator
        self.pool = pool
        self.audit = audit if audit is not None else AuditLog(f"{name}-audit")
        # optional dynamic-policy engine (tenet 4): evaluated on top of
        # token validation, so posture rules can deny a formally valid token
        self.policy = policy
        self.operations_log: List[Dict[str, object]] = []

    def _authorise(self, request: HttpRequest) -> Dict[str, object]:
        node = request.headers.get(NODE_HEADER)
        if not node:
            self.log_event("unknown", "mgmt.access", "",
                Outcome.DENIED, reason="not-via-tailnet",
            )
            raise AuthenticationError(
                "management plane is reachable only through the admin tailnet"
            )
        token = request.bearer_token()
        if token is None:
            raise AuthenticationError("management operations require an RBAC token")
        claims = self.validator.validate(token)
        require_capability(claims, "mgmt.access")
        if self.policy is not None:
            from repro.policy.engine import AccessContext

            self.policy.enforce(AccessContext(
                subject=str(claims["sub"]),
                role=str(claims.get("role", "")),
                capability="mgmt.access",
                resource=self.name,
                zone="management",
                domain="mdc",
                device_trusted=bool(node),
                mfa_methods=tuple(claims.get("amr", []) or ()),
                loa=int(claims.get("loa", 0) or 0),
                time=self.clock.now(),
            ))
        return claims

    @route("POST", "/operate")
    def operate(self, request: HttpRequest) -> HttpResponse:
        """Perform a privileged operation (drain/resume a node, etc.)."""
        claims = self._authorise(request)
        operation = str(request.body.get("operation", ""))
        target = str(request.body.get("target", ""))
        actor = str(claims["sub"])
        if operation == "drain_node":
            self.pool.set_up(target, False)
        elif operation == "resume_node":
            self.pool.set_up(target, True)
        elif operation == "status":
            pass
        else:
            raise AuthorizationError(f"unknown privileged operation {operation!r}")
        entry = {
            "time": self.clock.now(), "actor": actor,
            "operation": operation, "target": target,
            "via_node": request.headers.get(NODE_HEADER, ""),
        }
        self.operations_log.append(entry)
        self.log_event(actor, f"mgmt.{operation}",
            target or "*", Outcome.SUCCESS,
            via=request.headers.get(NODE_HEADER, ""),
        )
        return HttpResponse.json(
            {
                "operation": operation,
                "target": target,
                "nodes_up": sum(1 for n in self.pool.nodes() if n.up),
                "nodes_total": len(self.pool.nodes()),
                "utilisation": self.pool.utilisation(),
            }
        )
