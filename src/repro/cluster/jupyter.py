"""Jupyter authenticator and spawner on the cluster (user story 6).

"The Jupyter authenticator validates this token against the OpenID
Connect endpoint from the identity broker in FDS.  If successful, a
Jupyter user session is spawned on a compute node."

The authenticator therefore performs **two** checks on the RBAC token it
receives in the ``X-Isambard-Token`` header:

1. local validation — signature (broker JWKS provisioned at build time),
   issuer, audience, expiry, capability;
2. a live round-trip to the broker's introspection endpoint (MDC → FDS,
   an allowed outbound flow), which also catches revocation — per-session
   enforcement, tenet 6.

The spawner then places the session on a free compute node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.audit import AuditLog, Outcome
from repro.broker.rbac import require_capability
from repro.broker.tokens import RbacTokenValidator
from repro.clock import SimClock
from repro.cluster.nodes import NodePool
from repro.errors import AuthenticationError, SchedulerError, TokenRevoked
from repro.ids import IdFactory
from repro.net.http import HttpRequest, HttpResponse, Service, route
from repro.tunnels.zenith import TOKEN_HEADER

__all__ = ["JupyterSession", "JupyterService"]


@dataclass
class JupyterSession:
    session_id: str
    subject: str
    unix_account: str
    node_id: str
    started_at: float
    expires_at: float
    closed: bool = False

    def active(self, now: float) -> bool:
        return not self.closed and now < self.expires_at


class JupyterService(Service):
    """Authenticator + spawner, fronted by the Zenith tunnel.

    Parameters
    ----------
    validator:
        Local RBAC validator for this service's audience.
    broker_endpoint:
        Where to introspect tokens (set to ``None`` to disable the
        round-trip — used by the ablation bench to show what it buys).
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        ids: IdFactory,
        validator: RbacTokenValidator,
        pool: NodePool,
        *,
        audit: Optional[AuditLog] = None,
        broker_endpoint: Optional[str] = "broker",
        session_ttl: float = 4 * 3600.0,
    ) -> None:
        super().__init__(name)
        self.clock = clock
        self.ids = ids
        self.validator = validator
        self.pool = pool
        self.audit = audit if audit is not None else AuditLog(f"{name}-audit")
        self.broker_endpoint = broker_endpoint
        self.session_ttl = session_ttl
        self._sessions: Dict[str, JupyterSession] = {}
        self.spawns = 0

    # ------------------------------------------------------------------
    def _introspect(self, token: str) -> None:
        """Round-trip to the broker's OIDC endpoint (catches revocation)."""
        if self.broker_endpoint is None:
            return
        resp = self.call(
            self.broker_endpoint,
            HttpRequest("POST", "/introspect", body={"token": token}),
        )
        if not resp.ok or resp.body.get("active") is not True:
            raise TokenRevoked("broker introspection reports token inactive")

    @route("GET", "/")
    def open_notebook(self, request: HttpRequest) -> HttpResponse:
        """The authenticated entry point: validate the header token and
        spawn (or reuse) the user's notebook session."""
        token = request.headers.get(TOKEN_HEADER)
        now = self.clock.now()
        if not token:
            self.log_event("anonymous", "jupyter.auth", "",
                              Outcome.DENIED, reason="no-token")
            raise AuthenticationError(
                "Jupyter requires the broker token header via Zenith"
            )
        claims = self.validator.validate(token)
        require_capability(claims, "jupyter.use")
        self._introspect(token)
        subject = str(claims["sub"])
        account = str(claims.get("unix_account", ""))

        session = self._live_session(subject)
        if session is None:
            free = self.pool.free_nodes()
            if not free:
                self.log_event(subject, "jupyter.spawn", "",
                                  Outcome.ERROR, reason="no-free-nodes")
                raise SchedulerError("no free compute node for the notebook")
            node = free[0]
            session = JupyterSession(
                session_id=self.ids.next("jup"),
                subject=subject,
                unix_account=account,
                node_id=node.node_id,
                started_at=now,
                expires_at=min(now + self.session_ttl, float(claims["exp"])
                               + self.session_ttl),
            )
            node.allocated_to = session.session_id
            self._sessions[session.session_id] = session
            self.spawns += 1
            self.log_event(subject, "jupyter.spawn",
                              session.session_id, Outcome.SUCCESS,
                              node=node.node_id, account=account)
        return HttpResponse.json(
            {
                "notebook": "ready",
                "session_id": session.session_id,
                "node": session.node_id,
                "unix_account": session.unix_account,
                "expires_at": session.expires_at,
            }
        )

    # ------------------------------------------------------------------
    def _live_session(self, subject: str) -> Optional[JupyterSession]:
        now = self.clock.now()
        for s in self._sessions.values():
            if s.subject == subject and s.active(now):
                return s
        return None

    def sessions(self, *, active_only: bool = True) -> List[JupyterSession]:
        now = self.clock.now()
        return [s for s in self._sessions.values()
                if not active_only or s.active(now)]

    def close_session(self, session_id: str) -> bool:
        s = self._sessions.get(session_id)
        if s is None or s.closed:
            return False
        s.closed = True
        self.pool.release(s.session_id)
        return True

    def close_sessions_for(self, subject: str) -> int:
        n = 0
        for s in list(self._sessions.values()):
            if s.subject == subject and not s.closed:
                self.close_session(s.session_id)
                n += 1
        return n
