"""Jupyter authenticator and spawner on the cluster (user story 6).

"The Jupyter authenticator validates this token against the OpenID
Connect endpoint from the identity broker in FDS.  If successful, a
Jupyter user session is spawned on a compute node."

The authenticator therefore performs **two** checks on the RBAC token it
receives in the ``X-Isambard-Token`` header:

1. local validation — signature (broker JWKS provisioned at build time),
   issuer, audience, expiry, capability;
2. a live round-trip to the broker's introspection endpoint (MDC → FDS,
   an allowed outbound flow), which also catches revocation — per-session
   enforcement, tenet 6.

The spawner then places the session on a free compute node.

**Graceful degradation** (resilience layer): when the broker is
unreachable, the authenticator falls back to its local cached-JWKS
validation *plus* the most recent introspection verdict for that exact
token — accepted only while the verdict is younger than
``staleness_window``.  A token never introspected, or whose cached
verdict has gone stale, is refused (fail closed).  The window bounds the
security cost: a token revoked at time *T* can be accepted in degraded
mode only until *T + staleness_window*, because any introspection after
*T* caches the revocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.audit import AuditLog, Outcome
from repro.broker.rbac import require_capability
from repro.broker.tokens import RbacTokenValidator
from repro.clock import SimClock
from repro.cluster.nodes import NodePool
from repro.errors import (
    AuthenticationError,
    SchedulerError,
    ServiceUnavailable,
    TokenRevoked,
)
from repro.ids import IdFactory
from repro.net.http import HttpRequest, HttpResponse, Service, route
from repro.tunnels.zenith import TOKEN_HEADER

__all__ = ["JupyterSession", "JupyterService"]


@dataclass
class JupyterSession:
    session_id: str
    subject: str
    unix_account: str
    node_id: str
    started_at: float
    expires_at: float
    closed: bool = False

    def active(self, now: float) -> bool:
        return not self.closed and now < self.expires_at


class JupyterService(Service):
    """Authenticator + spawner, fronted by the Zenith tunnel.

    Parameters
    ----------
    validator:
        Local RBAC validator for this service's audience.
    broker_endpoint:
        Where to introspect tokens (set to ``None`` to disable the
        round-trip — used by the ablation bench to show what it buys).
    staleness_window:
        How long a cached per-token introspection verdict may substitute
        for a live round-trip while the broker is unreachable.  The
        documented availability/security trade-off: larger windows ride
        longer broker outages but widen the post-revocation acceptance
        bound by the same amount.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        ids: IdFactory,
        validator: RbacTokenValidator,
        pool: NodePool,
        *,
        audit: Optional[AuditLog] = None,
        broker_endpoint: Optional[str] = "broker",
        session_ttl: float = 4 * 3600.0,
        staleness_window: float = 60.0,
    ) -> None:
        super().__init__(name)
        self.clock = clock
        self.ids = ids
        self.validator = validator
        self.pool = pool
        self.audit = audit if audit is not None else AuditLog(f"{name}-audit")
        self.broker_endpoint = broker_endpoint
        self.session_ttl = session_ttl
        self.staleness_window = staleness_window
        self._sessions: Dict[str, JupyterSession] = {}
        # jti -> (introspection time, active?) for degraded-mode validation
        self._introspection_cache: Dict[str, Tuple[float, bool]] = {}
        self.spawns = 0
        self.degraded_validations = 0
        self.degraded_rejections = 0
        # scale mode: a repro.scale.cache.TtlCache of *positive*
        # introspection verdicts, keyed and tagged by jti and bound to
        # the deployment's "token.revoked" invalidation topic.  Unlike
        # the local-validation caches, the network round-trip being
        # amortised here IS the revocation check — safety rests on the
        # bus evicting the jti synchronously inside the revocation call,
        # plus the short TTL as a backstop for unsubscribed operation.
        # Negative verdicts are never cached: TokenRevoked propagates
        # uncached so a refusal is always a fresh broker verdict.
        self.introspection_cache = None
        self.introspection_hit = False
        # continuous authorization: notebook sessions tracked as grants;
        # spawns fail closed when the PDP is unreachable too long
        self.session_registry = None
        self.authz_guard = None

    # ------------------------------------------------------------------
    def _introspect(self, token: str, jti: str, subject: str) -> None:
        """Round-trip to the broker's OIDC endpoint (catches revocation).

        Falls back to the cached verdict for this ``jti`` — bounded by
        ``staleness_window`` — when the broker is unreachable.
        """
        if self.broker_endpoint is None:
            return
        self.introspection_hit = False
        if self.introspection_cache is not None:
            try:
                self.introspection_cache.get_or_load(
                    jti,
                    lambda: self._introspect_upstream(token, jti),
                    tags_of=lambda _verdict: (jti,),
                )
            except ServiceUnavailable as exc:
                self._validate_degraded(jti, subject, exc)
                return
            self.introspection_hit = self.introspection_cache.last_hit
            return
        try:
            self._introspect_upstream(token, jti)
        except ServiceUnavailable as exc:
            self._validate_degraded(jti, subject, exc)

    def _introspect_upstream(self, token: str, jti: str) -> bool:
        """The actual broker round-trip; also feeds the degraded-mode
        verdict store so stale-window fallback keeps working when the
        scale cache is in front."""
        resp = self.call(
            self.broker_endpoint,
            HttpRequest("POST", "/introspect", body={"token": token}),
        )
        active = resp.ok and resp.body.get("active") is True
        self._introspection_cache[jti] = (self.clock.now(), active)
        if not active:
            raise TokenRevoked("broker introspection reports token inactive")
        return True

    def _validate_degraded(self, jti: str, subject: str,
                           cause: ServiceUnavailable) -> None:
        """Broker unreachable: accept only a fresh cached 'active' verdict."""
        now = self.clock.now()
        cached = self._introspection_cache.get(jti)
        if cached is not None:
            verdict_at, active = cached
            if active and now - verdict_at <= self.staleness_window:
                self.degraded_validations += 1
                self.log_event(subject, "jupyter.introspect.degraded", jti,
                               Outcome.INFO, reason=str(cause),
                               verdict_age=round(now - verdict_at, 6))
                return
        self.degraded_rejections += 1
        self.log_event(subject, "jupyter.introspect.unavailable", jti,
                       Outcome.DENIED, reason=str(cause))
        raise ServiceUnavailable(
            "broker introspection unreachable and no fresh cached verdict "
            f"for this token (staleness window {self.staleness_window:.0f}s)"
        ) from cause

    @route("GET", "/")
    def open_notebook(self, request: HttpRequest) -> HttpResponse:
        """The authenticated entry point: validate the header token and
        spawn (or reuse) the user's notebook session."""
        token = request.headers.get(TOKEN_HEADER)
        now = self.clock.now()
        if not token:
            self.log_event("anonymous", "jupyter.auth", "",
                              Outcome.DENIED, reason="no-token")
            raise AuthenticationError(
                "Jupyter requires the broker token header via Zenith"
            )
        claims = self.validator.validate(token)
        require_capability(claims, "jupyter.use")
        subject = str(claims["sub"])
        if self.authz_guard is not None:
            self.authz_guard.check("compute", actor=subject)
        self._introspect(token, str(claims["jti"]), subject)
        account = str(claims.get("unix_account", ""))
        # scale mode: flag decisions that rode a replica cache (local
        # signature cache or the shared introspection-verdict cache) so
        # the SOC staleness oracle can cross-check them; seed mode never
        # emits this event
        if getattr(self.validator, "last_hit", False) or self.introspection_hit:
            self.log_event(subject, "jupyter.auth", str(claims["jti"]),
                           Outcome.CACHED, jti=str(claims["jti"]))

        session = self._live_session(subject)
        if session is None:
            free = self.pool.free_nodes()
            if not free:
                self.log_event(subject, "jupyter.spawn", "",
                                  Outcome.ERROR, reason="no-free-nodes")
                raise SchedulerError("no free compute node for the notebook")
            node = free[0]
            session = JupyterSession(
                session_id=self.ids.next("jup"),
                subject=subject,
                unix_account=account,
                node_id=node.node_id,
                started_at=now,
                expires_at=min(now + self.session_ttl, float(claims["exp"])
                               + self.session_ttl),
            )
            node.allocated_to = session.session_id
            self._sessions[session.session_id] = session
            self.spawns += 1
            extra_audit: Dict[str, object] = {}
            if self.session_registry is not None:
                grant = self.session_registry.track(
                    "jupyter", "compute", subject, session.session_id,
                    expires_at=session.expires_at)
                extra_audit["spiffe_id"] = grant.spiffe_id
            self.log_event(subject, "jupyter.spawn",
                              session.session_id, Outcome.SUCCESS,
                              node=node.node_id, account=account,
                              **extra_audit)
        return HttpResponse.json(
            {
                "notebook": "ready",
                "session_id": session.session_id,
                "node": session.node_id,
                "unix_account": session.unix_account,
                "expires_at": session.expires_at,
            }
        )

    # ------------------------------------------------------------------
    def _live_session(self, subject: str) -> Optional[JupyterSession]:
        now = self.clock.now()
        for s in self._sessions.values():
            if s.subject == subject and s.active(now):
                return s
        return None

    def sessions(self, *, active_only: bool = True) -> List[JupyterSession]:
        now = self.clock.now()
        return [s for s in self._sessions.values()
                if not active_only or s.active(now)]

    def close_session(self, session_id: str) -> bool:
        s = self._sessions.get(session_id)
        if s is None or s.closed:
            return False
        s.closed = True
        self.pool.release(s.session_id)
        if self.session_registry is not None:
            self.session_registry.close("jupyter", s.session_id,
                                        reason="closed")
        return True

    def close_sessions_for(self, subject: str) -> int:
        n = 0
        for s in list(self._sessions.values()):
            if s.subject == subject and not s.closed:
                self.close_session(s.session_id)
                n += 1
        return n
