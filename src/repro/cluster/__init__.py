"""Cluster substrate: nodes, Slurm-style scheduler, Jupyter, storage."""

from repro.cluster.dcim import DcimMonitor, DcimSample
from repro.cluster.jupyter import JupyterService, JupyterSession
from repro.cluster.nodes import ComputeNode, ManagementNode, NodePool
from repro.cluster.slurm import Job, JobState, SlurmScheduler
from repro.cluster.storage import ParallelFilesystem, ProjectVolume

__all__ = [
    "DcimMonitor",
    "DcimSample",
    "ComputeNode",
    "NodePool",
    "ManagementNode",
    "SlurmScheduler",
    "Job",
    "JobState",
    "JupyterService",
    "JupyterSession",
    "ParallelFilesystem",
    "ProjectVolume",
]
