"""Data Centre Inventory Manager (DCIM): environmental telemetry.

§III.B: SWS gathers "all system specific logs from the HPE environments
... and environmental monitors such as the Data Centre Inventory Manager
(DCIM)".  The simulated MDC is a self-contained pod with power and
liquid cooling; the monitor samples:

* per-pod **power draw**, derived from node-pool utilisation (idle vs.
  busy wattage; Isambard-AI's envelope is "under 5 MW");
* **coolant supply temperature**, tracking load with noise;
* **coolant flow**, which faults can drop.

Samples are emitted into the MDC audit stream on a timer, so they ride
the same forwarder pipeline to the SOC as security events; threshold
breaches emit ``dcim.threshold`` records that the SOC's environment rule
alerts on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.audit import AuditLog, Outcome
from repro.clock import SimClock
from repro.cluster.nodes import NodePool

__all__ = ["DcimSample", "DcimMonitor"]


@dataclass(frozen=True)
class DcimSample:
    time: float
    power_mw: float
    coolant_supply_c: float
    coolant_flow_lpm: float
    utilisation: float


class DcimMonitor:
    """Environmental telemetry for one modular data centre.

    Parameters
    ----------
    pool:
        The node pool whose utilisation drives the power model.
    idle_kw, busy_kw:
        Per-node draw when free vs. allocated (Grace-Hopper superchips
        draw on the order of single-digit kW under load).
    power_budget_mw:
        The pod's envelope; exceeding it is a threshold breach.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        pool: NodePool,
        *,
        audit: Optional[AuditLog] = None,
        rng: Optional[random.Random] = None,
        idle_kw: float = 0.8,
        busy_kw: float = 2.8,
        overhead_mw: float = 0.35,       # cooling pumps, network, storage
        power_budget_mw: float = 5.0,
        coolant_base_c: float = 24.0,
        coolant_max_c: float = 45.0,
        nominal_flow_lpm: float = 3_000.0,
        sample_interval: float = 60.0,
    ) -> None:
        self.name = name
        self.clock = clock
        self.pool = pool
        self.audit = audit if audit is not None else AuditLog(f"{name}-audit")
        self.rng = rng if rng is not None else random.Random(0)
        self.idle_kw = idle_kw
        self.busy_kw = busy_kw
        self.overhead_mw = overhead_mw
        self.power_budget_mw = power_budget_mw
        self.coolant_base_c = coolant_base_c
        self.coolant_max_c = coolant_max_c
        self.nominal_flow_lpm = nominal_flow_lpm
        self.sample_interval = sample_interval
        self.samples: List[DcimSample] = []
        self.breaches: List[str] = []
        self._flow_fault = False
        self._running = False

    # ------------------------------------------------------------------
    def inject_flow_fault(self) -> None:
        """Simulate a coolant pump failure (for detection tests)."""
        self._flow_fault = True

    def clear_flow_fault(self) -> None:
        self._flow_fault = False

    # ------------------------------------------------------------------
    def sample(self) -> DcimSample:
        """Take one reading and audit it (plus any threshold breach)."""
        nodes = self.pool.nodes()
        busy = sum(1 for n in nodes if n.allocated_to is not None)
        idle = len(nodes) - busy
        power_mw = (busy * self.busy_kw + idle * self.idle_kw) / 1000.0 \
            + self.overhead_mw
        power_mw *= 1.0 + self.rng.uniform(-0.02, 0.02)
        utilisation = busy / len(nodes) if nodes else 0.0
        flow = (0.25 if self._flow_fault else 1.0) * self.nominal_flow_lpm \
            * (1.0 + self.rng.uniform(-0.03, 0.03))
        # supply temperature rises with load, and sharply when flow drops
        temp = self.coolant_base_c + 12.0 * utilisation
        if self._flow_fault:
            temp += 15.0
        temp *= 1.0 + self.rng.uniform(-0.01, 0.01)

        s = DcimSample(
            time=self.clock.now(),
            power_mw=power_mw,
            coolant_supply_c=temp,
            coolant_flow_lpm=flow,
            utilisation=utilisation,
        )
        self.samples.append(s)
        self.audit.record(
            s.time, self.name, "dcim", "dcim.sample", self.pool.nodes()[0].kind
            if nodes else "empty",
            Outcome.INFO, power_mw=round(power_mw, 3),
            coolant_c=round(temp, 1), flow_lpm=round(flow),
            utilisation=round(utilisation, 3),
        )
        self._check_thresholds(s)
        return s

    def _check_thresholds(self, s: DcimSample) -> None:
        breaches = []
        if s.power_mw > self.power_budget_mw:
            breaches.append(
                f"power {s.power_mw:.2f} MW exceeds budget "
                f"{self.power_budget_mw:.1f} MW")
        if s.coolant_supply_c > self.coolant_max_c:
            breaches.append(
                f"coolant supply {s.coolant_supply_c:.1f}C exceeds "
                f"{self.coolant_max_c:.0f}C")
        if s.coolant_flow_lpm < 0.5 * self.nominal_flow_lpm:
            breaches.append(
                f"coolant flow {s.coolant_flow_lpm:.0f} lpm below half nominal")
        for breach in breaches:
            self.breaches.append(breach)
            self.audit.record(
                s.time, self.name, "dcim", "dcim.threshold", breach,
                Outcome.ERROR,
            )

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm periodic sampling on the simulated clock."""
        if self._running:
            return
        self._running = True
        self.clock.call_later(self.sample_interval, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self.sample()
        self.clock.call_later(self.sample_interval, self._tick)

    def stop(self) -> None:
        self._running = False

    def peak_power_mw(self) -> float:
        return max((s.power_mw for s in self.samples), default=0.0)
