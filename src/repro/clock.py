"""Simulated time source for the whole infrastructure.

Every component in the reproduction takes a :class:`SimClock` instead of
reading the wall clock.  This keeps the entire system deterministic: token
expiry, certificate validity windows, kill-switch reaction times and the
concurrency benchmarks all advance the same simulated clock explicitly.

The clock also carries a tiny discrete-event scheduler.  Components may
register callbacks to fire at a future simulated time (e.g. the SOC's
detection pipeline firing some seconds after a log line arrives); the
callbacks run when :meth:`SimClock.advance` or :meth:`SimClock.run_until`
crosses their deadline.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["SimClock", "ScheduledEvent"]


@dataclass(order=True)
class ScheduledEvent:
    """A callback registered to fire at simulated time ``when``.

    Events are ordered by ``(when, seq)`` so that two events scheduled for
    the same instant fire in registration order — important for
    reproducibility of the audit stream.
    """

    when: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from running when its deadline is reached."""
        self.cancelled = True


class SimClock:
    """A monotonic simulated clock measured in seconds.

    Parameters
    ----------
    start:
        Initial simulated timestamp (seconds).  Defaults to ``0.0`` but a
        realistic epoch may be injected for nicer audit output.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: List[ScheduledEvent] = []
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # reading time
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(self, when: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to run when simulated time reaches ``when``.

        Scheduling in the past raises ``ValueError`` — a component that
        wants "now" should just call the function.
        """
        if when < self._now:
            raise ValueError(
                f"cannot schedule event at t={when} before current t={self._now}"
            )
        event = ScheduledEvent(when=when, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def call_later(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, callback)

    def pending_events(self) -> int:
        """Number of scheduled events that have not yet fired or been cancelled."""
        return sum(1 for e in self._queue if not e.cancelled)

    # ------------------------------------------------------------------
    # advancing time
    # ------------------------------------------------------------------
    def advance(self, dt: float) -> None:
        """Move time forward by ``dt`` seconds, firing due events in order."""
        if dt < 0:
            raise ValueError(f"cannot move time backwards (dt={dt})")
        self.run_until(self._now + dt)

    def run_until(self, deadline: float) -> None:
        """Advance to ``deadline``, firing every due event at its own timestamp.

        Callbacks observe ``now()`` equal to their scheduled time, so an
        event may itself schedule follow-up events inside the window.
        """
        if deadline < self._now:
            raise ValueError(
                f"cannot run to t={deadline} before current t={self._now}"
            )
        while self._queue and self._queue[0].when <= deadline:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.when
            event.callback()
        self._now = deadline

    def run_all(self, limit: int = 100_000) -> None:
        """Fire every scheduled event, however far in the future.

        ``limit`` guards against callback chains that reschedule forever.
        """
        fired = 0
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.when
            event.callback()
            fired += 1
            if fired > limit:
                raise RuntimeError("run_all exceeded event limit; runaway reschedule?")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(t={self._now:.3f}, pending={self.pending_events()})"
