"""W3C-traceparent-style trace context carried in ``HttpRequest.headers``.

One login in the paper's system crosses four operating domains (device →
edge → broker/OIDC → MDC); the only thing all of those hops share is the
request headers, so — exactly like the deadline/priority plumbing — the
trace context rides there.  The encoding follows the W3C Trace Context
shape (``00-<32 hex trace id>-<16 hex span id>-01``) plus a ``baggage``
header of ``key=value`` pairs, so the format is recognisable to anyone
who has read a real traceparent.

The context is immutable; each hop derives a child context
(:meth:`TraceContext.child_of`) naming its own span as the parent of
whatever the handler calls next.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["TraceContext", "TRACEPARENT_HEADER", "BAGGAGE_HEADER",
           "trace_id_from_headers"]

TRACEPARENT_HEADER = "traceparent"
BAGGAGE_HEADER = "baggage"

_HEX = set("0123456789abcdef")


def _is_hex(value: str, width: int) -> bool:
    return len(value) == width and set(value) <= _HEX


@dataclass(frozen=True)
class TraceContext:
    """One position in a trace: (trace id, current span, its parent).

    ``trace_id`` is 32 lowercase hex chars, ``span_id`` 16; ``baggage``
    is small flow-scoped metadata (never secrets) that propagates to
    every downstream hop unchanged.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    baggage: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------ encode
    def to_traceparent(self) -> str:
        return f"00-{self.trace_id}-{self.span_id}-01"

    def inject(self, headers: Dict[str, str]) -> None:
        """Write this context onto a request's headers."""
        headers[TRACEPARENT_HEADER] = self.to_traceparent()
        if self.baggage:
            headers[BAGGAGE_HEADER] = ",".join(
                f"{k}={v}" for k, v in sorted(self.baggage.items())
            )

    # ------------------------------------------------------------ decode
    @classmethod
    def from_traceparent(
        cls, header: str, *, baggage: Optional[Mapping[str, str]] = None
    ) -> Optional["TraceContext"]:
        """Parse a traceparent value; ``None`` for anything malformed
        (a malformed header must degrade to "untraced", never raise)."""
        parts = header.strip().split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, _flags = parts
        if version != "00":
            return None
        if not _is_hex(trace_id, 32) or not _is_hex(span_id, 16):
            return None
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id=trace_id, span_id=span_id,
                   baggage=dict(baggage or {}))

    @classmethod
    def extract(cls, headers: Mapping[str, str]) -> Optional["TraceContext"]:
        """Read a context out of request headers (``None`` when absent)."""
        header = headers.get(TRACEPARENT_HEADER)
        if not header:
            return None
        baggage: Dict[str, str] = {}
        raw = headers.get(BAGGAGE_HEADER, "")
        if raw:
            for part in raw.split(","):
                key, sep, value = part.strip().partition("=")
                if sep and key:
                    baggage[key] = value
        return cls.from_traceparent(header, baggage=baggage)

    # ------------------------------------------------------------- derive
    def child_of(self, span_id: str) -> "TraceContext":
        """The context downstream work should carry once ``span_id`` is
        the active span at this hop."""
        return TraceContext(trace_id=self.trace_id, span_id=span_id,
                            parent_id=self.span_id, baggage=self.baggage)


def trace_id_from_headers(headers: Mapping[str, str]) -> Optional[str]:
    """Cheap trace-id peek (for audit stamping) without full validation."""
    ctx = TraceContext.extract(headers)
    return ctx.trace_id if ctx is not None else None
