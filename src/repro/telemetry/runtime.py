"""The deployment-wide telemetry runtime.

One :class:`Telemetry` instance per deployment owns the tracer, the span
store, the metrics registry, and the SLO monitors, and exposes the hook
points the rest of the library calls:

* ``observe_hop`` — the network transport reports every message outcome
  here (the RED metrics and availability SLOs are fed from this single
  choke point, which is also why they cannot disagree with the audit
  trail: both are emitted from the same code path);
* ``on_breaker_transition`` — circuit breakers report state changes;
* ``record_recovery`` / ``record_failover`` — WAL replays and standby
  promotions become retroactive spans plus domain counters;
* ``watch_audit`` — a never-raising bridge that derives domain metrics
  (tokens, certs, tunnels, sheds) from the audit stream itself.

Everything here *observes*: no method advances the simulated clock,
draws randomness, or mints ids from the deployment's seeded streams, so
enabling telemetry cannot change any simulated behaviour or number.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.clock import SimClock
from repro.telemetry.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.telemetry.pipeline import BoundedSpanStore, PipelineConfig
from repro.telemetry.provenance import Decision, ProvenanceLedger
from repro.telemetry.slo import BurnRateAlert, SloMonitor
from repro.telemetry.tracing import SpanStatus, SpanStore, Tracer

__all__ = ["Telemetry", "ERROR_OUTCOMES"]

# hop outcomes that count against an availability SLO: policy refusals
# ("denied", "blocked") are the system working as intended; overload and
# infrastructure failures are not.
ERROR_OUTCOMES = ("error", "unavailable", "shed", "expired")

_BREAKER_STATE_VALUE = {"closed": 0.0, "half-open": 0.5, "open": 1.0}


class Telemetry:
    """Tracer + metrics registry + SLO monitors for one deployment."""

    def __init__(self, clock: SimClock,
                 pipeline: Optional[PipelineConfig] = None) -> None:
        self.clock = clock
        self.pipeline = pipeline
        if pipeline is not None:
            self.tracer = Tracer(clock, BoundedSpanStore(pipeline))
        else:
            self.tracer = Tracer(clock)
        self.store: SpanStore = self.tracer.store
        self.registry = MetricsRegistry()
        # every admission decision's provenance, queryable by identity
        # and by trace (bounded alongside the span store when the
        # pipeline is on)
        self.provenance = ProvenanceLedger(
            max_records=pipeline.max_decisions if pipeline is not None
            else 8192)
        self.bridge_errors = 0  # audit-bridge exceptions swallowed

        r = self.registry
        # RED metrics on the serving stack (labelled by destination)
        self.hop_requests = r.counter(
            "repro_http_requests_total",
            "Messages offered to the transport, by destination and outcome")
        self.hop_errors = r.counter(
            "repro_http_request_errors_total",
            "Messages that failed for non-policy reasons (error/unavailable/"
            "shed/expired)")
        self.hop_duration = r.histogram(
            "repro_http_request_duration_seconds",
            "Wall-clock (simulated) seconds from transport accept to "
            "response, with trace exemplars", buckets=DEFAULT_BUCKETS)
        # domain metrics
        self.tokens_issued = r.counter(
            "repro_tokens_issued_total", "Access tokens minted by the broker")
        self.tokens_revoked = r.counter(
            "repro_tokens_revoked_total", "Access tokens revoked")
        self.certs_signed = r.counter(
            "repro_ssh_certs_signed_total", "SSH certificates signed by the CA")
        self.tunnels_enrolled = r.counter(
            "repro_tunnels_enrolled_total", "Zenith tunnel registrations")
        self.sheds = r.counter(
            "repro_admission_shed_total", "Requests shed by admission control")
        self.deadline_expired = r.counter(
            "repro_deadline_expired_total", "Requests abandoned past deadline")
        self.journal_replays = r.counter(
            "repro_journal_replays_total", "recover() runs, by service")
        self.journal_entries_replayed = r.counter(
            "repro_journal_entries_replayed_total",
            "WAL entries replayed across all recoveries")
        self.failovers = r.counter(
            "repro_failover_promotions_total", "Standby promotions")
        self.breaker_transitions = r.counter(
            "repro_breaker_transitions_total",
            "Circuit breaker state transitions, by breaker and target state")
        self.breaker_state = r.gauge(
            "repro_breaker_state",
            "Breaker state (0 closed, 0.5 half-open, 1 open)")
        # scale-out subsystem
        self.cache_events = r.counter(
            "repro_cache_events_total",
            "Distributed-cache traffic by cache and event "
            "(hit/negative_hit/miss/load/coalesced/invalidation)")
        self.pool_size = r.gauge(
            "repro_replica_pool_size", "Live replicas per pool")
        self.autoscale_decisions = r.counter(
            "repro_autoscale_decisions_total",
            "Autoscaler actions, by pool and direction")
        # multi-region tier
        self.region_lag = r.gauge(
            "repro_region_replication_lag_seconds",
            "Measured revocation-replication lag into each region")
        self.region_state = r.gauge(
            "repro_region_state",
            "Region serving state (1 active, 0.5 stale/fail-closed, 0 down)")
        self.region_reroutes = r.counter(
            "repro_region_reroutes_total",
            "Requests the geo-router moved off a client's home region")
        self.region_bus_events = r.counter(
            "repro_region_bus_events_total",
            "Cross-region bus traffic, by origin/dest and event "
            "(replicated/parked/flushed/fenced)")
        # tail-tolerance layer
        self.tail_attempt_timeouts = r.counter(
            "repro_tail_attempt_timeouts_total",
            "Attempts abandoned at their adaptive per-attempt deadline")
        self.tail_hedges = r.counter(
            "repro_tail_hedges_total",
            "Speculative hedged attempts issued, by pool")
        self.tail_hedge_wins = r.counter(
            "repro_tail_hedge_wins_total",
            "Hedged calls whose speculative attempt answered first")
        self.tail_ejections = r.counter(
            "repro_tail_ejections_total",
            "Latency/error-outlier ejections, by pool and member")
        self.tail_reinstatements = r.counter(
            "repro_tail_reinstatements_total",
            "Ejected members reinstated on probation, by pool")
        self.tail_ejected = r.gauge(
            "repro_tail_ejected",
            "1 while a member sits ejected, 0 once reinstated")
        self.retry_budget_exhausted = r.counter(
            "repro_retry_budget_exhausted_total",
            "Retries refused by the retry-storm budget, by client->dest key")
        self.gray_detours = r.counter(
            "repro_region_gray_detours_total",
            "Requests routed away from a gray (slow-but-alive) home region")
        # continuous-authorization layer
        self.authz_revocations = r.counter(
            "repro_authz_revocations_total",
            "Revocation intents journaled by the pipeline, by reason")
        self.authz_ttr = r.histogram(
            "repro_authz_ttr_seconds",
            "Time-to-revoke: intent creation to last surface confirming")
        self.authz_fail_closed = r.counter(
            "repro_authz_fail_closed_total",
            "Admissions denied fail-closed with the PDP unreachable past "
            "the staleness bound, by surface")
        self.tracewatch_skips = r.counter(
            "repro_tracewatch_skipped_spans_total",
            "Spans the trace watcher could not check against current "
            "topology (previously dropped silently)")
        # federation-directory layer
        self.directory_lookups = r.counter(
            "repro_directory_lookups_total",
            "Directory key lookups, by tier and result "
            "(ok/fallback/unavailable)")
        self.directory_migrated = r.counter(
            "repro_directory_migrated_keys_total",
            "Keys moved between shards by rebalancing migrations, by tier")
        self.directory_shard_keys = r.gauge(
            "repro_directory_shard_keys",
            "Keys resident per directory shard, by tier and shard")
        self.metadata_ingest_batches = r.counter(
            "repro_metadata_ingest_batches_total",
            "Feed polls/deltas processed, by feed and result "
            "(applied/rejected/unavailable)")
        self.metadata_ingest_entries = r.counter(
            "repro_metadata_ingest_entries_total",
            "Metadata entries upserted or removed via feed deltas, by feed")
        self.metadata_stale_denials = r.counter(
            "repro_metadata_stale_denials_total",
            "Logins refused because the IdP's metadata validity window "
            "lapsed, by federation")
        self.metadata_feed_age = r.gauge(
            "repro_metadata_feed_age_seconds",
            "Seconds since each feed's content was last applied")

        if pipeline is not None:
            # the pre-registered families get the configured cardinality
            # budget; families registered later opt in explicitly
            r.set_series_budget(pipeline.max_series_per_family)

        self._slos: Dict[str, SloMonitor] = {}
        self._slos_by_service: Dict[str, List[SloMonitor]] = {}
        self._slo_callbacks: List[Callable[[BurnRateAlert], None]] = []

    # ------------------------------------------------------------ serving
    def observe_hop(self, *, src: str, dst: str, outcome: str, duration: float,
                    path: str = "", trace_id: Optional[str] = None) -> None:
        """One transport-level message finished with ``outcome``
        (ok/denied/blocked/unavailable/error/shed/expired)."""
        self.hop_requests.inc(dst=dst, outcome=outcome)
        failed = outcome in ERROR_OUTCOMES
        if failed:
            self.hop_errors.inc(dst=dst, outcome=outcome)
        self.hop_duration.observe(
            duration, trace_id=trace_id, time=self.clock.now(), dst=dst)
        for monitor in self._slos_by_service.get(dst, ()):
            monitor.record(self.clock.now(), not failed)

    def observe_cache(self, cache: str, event: str, n: int = 1) -> None:
        """A distributed-cache lookup resolved as ``event`` (see
        :class:`repro.scale.cache.TtlCache`)."""
        self.cache_events.inc(n, cache=cache, event=event)

    # --------------------------------------------------------- resilience
    def on_breaker_transition(self, name: str, from_state: str, to_state: str,
                              now: float) -> None:
        self.breaker_transitions.inc(breaker=name, to=to_state)
        self.breaker_state.set(
            _BREAKER_STATE_VALUE.get(to_state, -1.0), breaker=name)

    def record_recovery(self, report, *, started: float) -> None:
        """A ``Durable.recover()`` completed: count it and back-fill a span
        covering the replay window (reports carry simulated times)."""
        self.journal_replays.inc(service=report.service)
        if report.entries_replayed:
            self.journal_entries_replayed.inc(
                report.entries_replayed, service=report.service)
        self.tracer.record(
            f"recover {report.service}", start=started,
            end=report.recovered_at, service=report.service, kind="internal",
            status=SpanStatus.OK, entries_replayed=report.entries_replayed,
            snapshot_seq=report.snapshot_seq, epoch=report.epoch,
        )

    def record_failover(self, name: str, report, *,
                        down_since: Optional[float] = None) -> None:
        """A standby promotion completed; the span covers detected-down
        through serving-again (the availability gap the SOC cares about)."""
        self.failovers.inc(service=name)
        start = down_since if down_since is not None \
            else report.recovered_at - report.duration
        self.tracer.record(
            f"failover.promote {name}", start=start, end=report.recovered_at,
            service=name, kind="internal", status=SpanStatus.OK,
            standby=report.service, epoch=report.epoch,
            entries_replayed=report.entries_replayed,
        )

    # -------------------------------------------------------- audit bridge
    def watch_audit(self, log) -> None:
        """Derive domain metrics from an audit log's live stream.

        The bridge swallows its own exceptions: :class:`AuditLog` detaches
        subscribers that raise, and losing telemetry must never cost the
        deployment its metrics silently mid-run.
        """
        log.subscribe(self._on_audit_event)

    # action -> (counter attribute, label key) for simple count-throughs
    _AUDIT_COUNTERS = {
        "rbac.mint": ("tokens_issued", "source"),
        "rbac.revoke": ("tokens_revoked", "source"),
        "rbac.revoke_subject": ("tokens_revoked", "source"),
        "ca.sign": ("certs_signed", "source"),
        "ca.sign_host": ("certs_signed", "source"),
        "zenith.register": ("tunnels_enrolled", "source"),
        "admission.shed": ("sheds", "source"),
        "deadline.expired": ("deadline_expired", "source"),
    }

    # decision-bearing audit actions -> enforcement surface.  Every one
    # of these becomes a DecisionRecord in the provenance ledger; the
    # decision itself derives from the event outcome.
    _AUDIT_DECISIONS = {
        "rbac.mint": "tokens",
        "rbac.denied": "tokens",
        "rbac.stepup_required": "tokens",
        "oidc.session": "tokens",
        "oidc.tokens_issued": "tokens",
        "region.introspect": "tokens",
        "ssh.session": "ssh",
        "ssh.cert_issued": "ssh",
        "ssh.cert_denied": "ssh",
        "login.success": "ssh",
        "login.denied": "ssh",
        "zenith.register": "tunnels",
        "zenith.route": "tunnels",
        "zenith.denied": "tunnels",
        "jupyter.auth": "compute",
        "jupyter.introspect.unavailable": "compute",
        "job.submit": "compute",
        "admission.shed": "admission",
        "authz.fail_closed": "",   # surface carried in event.resource
    }

    _OUTCOME_DECISIONS = {
        "success": Decision.ALLOW,
        "cached": Decision.CACHED,
        "denied": Decision.DENY,
        "shed": Decision.SHED,
    }

    # extra event attributes worth preserving as decision inputs
    _DECISION_ATTRS = ("jti", "audience", "role", "serial", "key_id",
                       "project", "capability")

    # actions whose traces a post-mortem will replay: revocations,
    # containments, continuous-authz enforcement.  The pipeline pins
    # these traces against tail-sampling eviction.
    _PROTECT_PREFIXES = (
        "rbac.revoke", "token.revok", "authz.", "killswitch.",
        "oidc.session_revok", "oidc.jti_revoked", "zenith.sessions_revoked",
        "zenith.kill", "ssh.sessions_closed",
    )

    def _on_audit_event(self, event) -> None:
        try:
            entry = self._AUDIT_COUNTERS.get(event.action)
            if entry is not None:
                counter_name, label = entry
                getattr(self, counter_name).inc(
                    **{label: getattr(event, label, "")})
            surface = self._AUDIT_DECISIONS.get(event.action)
            if surface is not None:
                self._record_decision(surface, event)
            if event.action.startswith(self._PROTECT_PREFIXES):
                trace_id = event.attrs.get("trace_id", "")
                if trace_id and hasattr(self.store, "protect"):
                    self.store.protect(trace_id)
        except Exception:
            self.bridge_errors += 1

    def _record_decision(self, surface: str, event) -> None:
        """Turn one decision-bearing audit event into provenance."""
        if event.action == "authz.fail_closed":
            decision = Decision.FAIL_CLOSED
            surface = event.resource or "pdp"
        else:
            decision = self._OUTCOME_DECISIONS.get(event.outcome)
            if decision is None:
                return  # info/error events are not admission decisions
        attrs = event.attrs
        epoch = attrs.get("epoch", -1)
        staleness = attrs.get("age", -1.0)
        # rule attribution: an explicit rule attr wins; otherwise, for
        # grants, the surface-native grant basis (the RBAC role, the
        # capability) IS the matched rule on that surface.  Denials keep
        # their reason instead — a role that failed to match is not a
        # matched rule.
        rule = str(attrs.get("rule", ""))
        if not rule and decision in Decision.GRANTS:
            if attrs.get("role"):
                rule = f"role:{attrs['role']}"
            elif attrs.get("capability"):
                rule = f"capability:{attrs['capability']}"
        self.provenance.record(
            event.time, surface, decision, event.actor,
            spiffe_id=str(attrs.get("spiffe_id", "")),
            trace_id=str(attrs.get("trace_id", "")),
            resource=event.resource,
            rule=rule,
            reason=str(attrs.get("reason", "")),
            cached=decision == Decision.CACHED,
            region=str(attrs.get("region", "")),
            epoch=epoch if isinstance(epoch, int) else -1,
            pdp_staleness=float(staleness)
            if isinstance(staleness, (int, float)) else -1.0,
            attrs={k: attrs[k] for k in self._DECISION_ATTRS if k in attrs},
        )

    # ---------------------------------------------------------------- SLO
    def slo(self, name: str, *, service: str, objective: float = 0.99,
            **kwargs) -> SloMonitor:
        """Create (or fetch) a burn-rate monitor over ``service``'s hops."""
        monitor = self._slos.get(name)
        if monitor is None:
            monitor = SloMonitor(name, service=service, objective=objective,
                                 **kwargs)
            monitor.subscribe(self._dispatch_slo_alert)
            self._slos[name] = monitor
            self._slos_by_service.setdefault(service, []).append(monitor)
        return monitor

    def slos(self) -> Dict[str, SloMonitor]:
        return dict(self._slos)

    def on_slo_alert(self, callback: Callable[[BurnRateAlert], None]) -> None:
        """Subscribe (e.g. the SOC) to every monitor's pages."""
        self._slo_callbacks.append(callback)

    def _dispatch_slo_alert(self, alert: BurnRateAlert) -> None:
        for callback in list(self._slo_callbacks):
            callback(alert)

    # ---------------------------------------------------------- exposition
    def exposition(self) -> str:
        """The whole registry in Prometheus-style text."""
        return self.registry.expose()
