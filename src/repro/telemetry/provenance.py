"""Decision provenance: the *why* behind every admission decision.

The telemetry layer (PR 4) records *that* things happened; the SIEM
records *what* was allowed or denied.  Neither answers the federation
operator's question — "why did this principal get in?" — after the
fact.  This module does: every ALLOW / DENY / CACHED / SHED /
fail-closed decision on the four enforcement surfaces (broker
RBAC/OIDC tokens, sshd, Zenith tunnels, Jupyter/Slurm compute) becomes
one :class:`DecisionRecord` carrying the matched policy rule and pack
version, the assurance tier and threat score that fed the decision,
whether it was served from cache or freshly validated, the region and
fencing epoch that served it, and how stale the PDP heartbeat was at
decision time.

Records land in a :class:`ProvenanceLedger` keyed by identity
(SPIFFE id *and* plain subject) and by trace id, with the two queries
the SOC and kill-switch post-mortems consume:

* :meth:`ProvenanceLedger.explain` — everything we ever decided about
  one identity, in decision order;
* :meth:`ProvenanceLedger.explain_trace` — every decision taken while
  serving one traced request.

Retention is bounded but *never* loses the records that matter: the
latest ALLOW/CACHED per (identity, surface) — the record that explains
a currently-live grant — and every DENY / fail-closed / SHED record
are pinned; only superseded plain allows are evicted (into per-surface
rollup counters) when the ledger exceeds its budget.

Determinism: the ledger never reads a clock or draws randomness —
timestamps come from the caller, sequence numbers from a counter.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

__all__ = ["Decision", "DecisionRecord", "ProvenanceLedger"]


class Decision:
    """The five ways an admission decision can go."""

    ALLOW = "allow"
    DENY = "deny"
    CACHED = "cached"          # allow served from a replica cache
    SHED = "shed"              # dropped by overload protection, not policy
    FAIL_CLOSED = "fail_closed"  # denied because the PDP was unreachable

    ALL = (ALLOW, DENY, CACHED, SHED, FAIL_CLOSED)
    # decisions that explain a live grant (pinned per identity+surface)
    GRANTS = (ALLOW, CACHED)
    # decisions that must survive retention for post-mortems
    PINNED = (DENY, SHED, FAIL_CLOSED)


# sentinel defaults meaning "not observed" — the enricher only fills
# fields still holding these, never overwrites what the caller supplied
_UNSET_INT = -1
_UNSET_FLOAT = -1.0


@dataclass(frozen=True)
class DecisionRecord:
    """One admission decision, with everything that fed it."""

    time: float
    surface: str          # tokens | ssh | tunnels | compute | pdp | admission
    decision: str         # one of Decision.ALL
    subject: str          # principal / actor the decision is about
    spiffe_id: str = ""   # canonical workload/user identity, when known
    trace_id: str = ""    # the request that carried the decision
    resource: str = ""    # what was being accessed
    rule: str = ""        # matched policy rule name ("" = not rule-driven)
    reason: str = ""      # human-readable grounds for the decision
    pack_version: str = ""  # policy pack version the rule came from
    loa: int = _UNSET_INT        # assurance tier at decision time
    threat_score: float = _UNSET_FLOAT  # SOC risk score at decision time
    cached: bool = False         # served from cache vs fresh validation
    region: str = ""             # region that served the decision
    epoch: int = _UNSET_INT      # fencing epoch of that region/journal
    pdp_staleness: float = _UNSET_FLOAT  # PDP heartbeat age at decision
    attrs: Mapping[str, object] = field(default_factory=dict)

    def is_grant(self) -> bool:
        return self.decision in Decision.GRANTS

    def describe(self) -> str:
        """One post-mortem line: who, what, why."""
        why = self.rule or self.reason or "unattributed"
        extra = f" [{self.pack_version}]" if self.pack_version else ""
        return (f"t={self.time:.3f} {self.surface}/{self.decision} "
                f"{self.subject} -> {self.resource or '-'}: {why}{extra}")


# enrichable fields and the sentinel that marks them unset
_ENRICHABLE = {
    "rule": "", "reason": "", "pack_version": "", "spiffe_id": "",
    "region": "", "loa": _UNSET_INT, "epoch": _UNSET_INT,
    "threat_score": _UNSET_FLOAT, "pdp_staleness": _UNSET_FLOAT,
}


class ProvenanceLedger:
    """Bounded, queryable store of every admission decision.

    Parameters
    ----------
    max_records:
        Retention budget.  Past it, superseded plain allows are evicted
        oldest-first into :attr:`evicted` rollup counters; pinned
        records (latest grant per identity+surface, every deny /
        fail-closed / shed) are kept even if that means exceeding the
        budget — losing the explanation for a live grant or a refusal
        would defeat the ledger's purpose, and the overshoot is
        reported honestly via :meth:`stats`.
    """

    def __init__(self, max_records: int = 8192) -> None:
        if max_records < 1:
            raise ValueError("max_records must be at least 1")
        self.max_records = max_records
        # called with the subject; returns field defaults (loa, threat
        # score, pack version, PDP staleness...) applied to fields the
        # caller left unset.  Set by the deployment wiring.
        self.enricher: Optional[Callable[[str], Dict[str, object]]] = None
        self._records: "OrderedDict[int, DecisionRecord]" = OrderedDict()
        self._seq = 0
        self._by_identity: Dict[str, List[int]] = {}
        self._by_trace: Dict[str, List[int]] = {}
        # (identity key, surface) -> seq of the latest grant record
        self._latest_grant: Dict[Tuple[str, str], int] = {}
        self.recorded = 0
        self.counts: Dict[Tuple[str, str], int] = {}   # (surface, decision)
        self.evicted: Dict[Tuple[str, str], int] = {}  # rollup of drops
        self.compactions = 0

    # ------------------------------------------------------------ record
    def record(self, time: float, surface: str, decision: str, subject: str,
               **fields: object) -> DecisionRecord:
        """Append one decision; unset context fields are filled by the
        enricher (policy pack version, assurance, threat score, PDP
        staleness) so call sites only pass what they directly know."""
        if decision not in Decision.ALL:
            raise ValueError(f"unknown decision {decision!r}")
        if self.enricher is not None:
            try:
                enriched = self.enricher(subject)
            except Exception:
                enriched = {}
            for key, sentinel in _ENRICHABLE.items():
                if fields.get(key, sentinel) == sentinel and key in enriched:
                    fields[key] = enriched[key]
        rec = DecisionRecord(time=time, surface=surface, decision=decision,
                             subject=subject, **fields)  # type: ignore[arg-type]
        seq = self._seq
        self._seq += 1
        self._records[seq] = rec
        for identity in {rec.subject, rec.spiffe_id} - {""}:
            self._by_identity.setdefault(identity, []).append(seq)
            if rec.is_grant():
                self._latest_grant[(identity, surface)] = seq
        if rec.trace_id:
            self._by_trace.setdefault(rec.trace_id, []).append(seq)
        self.recorded += 1
        key = (surface, decision)
        self.counts[key] = self.counts.get(key, 0) + 1
        if len(self._records) > self.max_records:
            self._compact()
        return rec

    # ----------------------------------------------------------- queries
    def explain(self, identity: str) -> List[DecisionRecord]:
        """Every decision about one identity (SPIFFE id or plain
        subject), oldest first — the post-mortem's first question."""
        return [self._records[s]
                for s in self._by_identity.get(identity, ())
                if s in self._records]

    def explain_trace(self, trace_id: str) -> List[DecisionRecord]:
        """Every decision taken while serving one traced request."""
        return [self._records[s]
                for s in self._by_trace.get(trace_id, ())
                if s in self._records]

    def latest(self, identity: str,
               surface: Optional[str] = None) -> Optional[DecisionRecord]:
        """The most recent decision about an identity (optionally on one
        surface)."""
        for seq in reversed(self._by_identity.get(identity, ())):
            rec = self._records.get(seq)
            if rec is not None and (surface is None or rec.surface == surface):
                return rec
        return None

    def grant_record(self, identity: str,
                     surface: str) -> Optional[DecisionRecord]:
        """The pinned record explaining the identity's current grant on
        ``surface`` (None when it never held one)."""
        seq = self._latest_grant.get((identity, surface))
        rec = self._records.get(seq) if seq is not None else None
        return rec

    def denials(self, identity: Optional[str] = None) -> List[DecisionRecord]:
        """All DENY / fail-closed records, optionally for one identity."""
        pool = (self.explain(identity) if identity is not None
                else list(self._records.values()))
        return [r for r in pool
                if r.decision in (Decision.DENY, Decision.FAIL_CLOSED)]

    def identities(self) -> List[str]:
        return sorted(self._by_identity)

    def __len__(self) -> int:
        return len(self._records)

    # --------------------------------------------------------- retention
    def _pinned(self) -> set:
        pinned = set(self._latest_grant.values())
        for seq, rec in self._records.items():
            if rec.decision in Decision.PINNED:
                pinned.add(seq)
        return pinned

    def _compact(self) -> None:
        """Evict superseded plain grants, oldest first, down to 90% of
        budget (hysteresis so one record over the line does not trigger
        a compaction per insert)."""
        target = max(1, int(self.max_records * 0.9))
        pinned = self._pinned()
        doomed: List[int] = []
        for seq in self._records:              # OrderedDict: oldest first
            if len(self._records) - len(doomed) <= target:
                break
            if seq in pinned:
                continue
            doomed.append(seq)
        if not doomed:
            return                             # everything left is pinned
        for seq in doomed:
            rec = self._records.pop(seq)
            key = (rec.surface, rec.decision)
            self.evicted[key] = self.evicted.get(key, 0) + 1
        dead = set(doomed)
        for index in (self._by_identity, self._by_trace):
            for key in list(index):
                kept = [s for s in index[key] if s not in dead]
                if kept:
                    index[key] = kept
                else:
                    del index[key]
        self.compactions += 1

    # ------------------------------------------------------------- stats
    def stats(self) -> Dict[str, object]:
        """Retention and decision totals for the SOC scoreboard."""
        by_surface: Dict[str, Dict[str, int]] = {}
        for (surface, decision), n in sorted(self.counts.items()):
            by_surface.setdefault(surface, {})[decision] = n
        return {
            "recorded": self.recorded,
            "retained": len(self._records),
            "evicted": sum(self.evicted.values()),
            "over_budget": max(0, len(self._records) - self.max_records),
            "compactions": self.compactions,
            "decisions": by_surface,
            "fail_closed": sum(
                n for (_, d), n in self.counts.items()
                if d == Decision.FAIL_CLOSED),
        }
