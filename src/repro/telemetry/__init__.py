"""In-system observability: distributed tracing, metrics, SLOs.

The paper's zero-trust posture requires the SEC domain to *see* every
cross-zone interaction (continuous monitoring, NIST SP 800-207 tenet 7).
This package supplies the in-system half of that visibility:

* :mod:`repro.telemetry.context` — W3C-traceparent-style trace context
  carried in request headers, propagated like deadlines/priorities;
* :mod:`repro.telemetry.tracing` — spans, the in-process span store, and
  the deterministic tracer;
* :mod:`repro.telemetry.metrics` — Counter/Gauge/Histogram with labelled
  series, exemplars, and Prometheus-style exposition;
* :mod:`repro.telemetry.slo` — multi-window burn-rate SLO monitors;
* :mod:`repro.telemetry.analysis` — span trees, critical paths;
* :mod:`repro.telemetry.provenance` — the decision provenance ledger:
  why every admission decision went the way it did, queryable by
  identity and by trace;
* :mod:`repro.telemetry.pipeline` — bounded retention at production
  scale: tail-based trace sampling, RED rollups of evicted spans, and
  per-family metric cardinality budgets;
* :mod:`repro.telemetry.runtime` — the per-deployment facade wiring the
  above into the network, resilience, durability and SIEM layers.
"""

from repro.telemetry.analysis import (
    PathStep,
    SpanTree,
    build_tree,
    critical_path,
    critical_path_breakdown,
    render_tree,
)
from repro.telemetry.context import (
    BAGGAGE_HEADER,
    TRACEPARENT_HEADER,
    TraceContext,
    trace_id_from_headers,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.pipeline import (
    BoundedSpanStore,
    PipelineConfig,
    RedAggregate,
    trace_sampled,
)
from repro.telemetry.provenance import (
    Decision,
    DecisionRecord,
    ProvenanceLedger,
)
from repro.telemetry.runtime import ERROR_OUTCOMES, Telemetry
from repro.telemetry.slo import BurnRateAlert, SloMonitor, burn_rate
from repro.telemetry.tracing import Span, SpanStatus, SpanStore, Tracer

__all__ = [
    "BAGGAGE_HEADER",
    "BoundedSpanStore",
    "BurnRateAlert",
    "Counter",
    "DEFAULT_BUCKETS",
    "Decision",
    "DecisionRecord",
    "ERROR_OUTCOMES",
    "Exemplar",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PathStep",
    "PipelineConfig",
    "ProvenanceLedger",
    "RedAggregate",
    "Span",
    "SpanStatus",
    "SpanStore",
    "SpanTree",
    "SloMonitor",
    "Telemetry",
    "TraceContext",
    "TRACEPARENT_HEADER",
    "Tracer",
    "build_tree",
    "burn_rate",
    "critical_path",
    "critical_path_breakdown",
    "render_tree",
    "trace_id_from_headers",
    "trace_sampled",
]
