"""Multi-window burn-rate SLO monitors.

The classic SRE-workbook construction: an SLO declares an objective
(e.g. 99% of broker requests succeed); its *error budget* is
``1 - objective``.  The burn rate over a window is

    burn = error_rate(window) / (1 - objective)

i.e. how many times faster than "exactly on budget" we are spending.
A page fires only when **both** a fast and a slow window exceed the
threshold — the fast window gives low detection latency, the slow
window stops a brief blip from paging.  With the default threshold of
14.4 and a 1-hour slow window, a page means ~2% of a 30-day budget
burned in one hour.

Monitors are fed per-event by the telemetry runtime; time comes from
the shared simulated clock value stamped on each event.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

__all__ = ["SloMonitor", "BurnRateAlert", "burn_rate"]


def burn_rate(error_rate: float, objective: float) -> float:
    """How fast the error budget is being spent (1.0 = exactly on budget)."""
    budget = 1.0 - objective
    if budget <= 0:
        raise ValueError("objective must leave a non-zero error budget")
    return error_rate / budget


@dataclass(frozen=True)
class BurnRateAlert:
    """One SLO page: both windows over threshold at ``time``."""

    time: float
    slo: str
    service: str
    fast_burn: float
    slow_burn: float
    threshold: float
    fast_window: float
    slow_window: float
    events_in_slow_window: int

    def summary(self) -> str:
        return (f"SLO {self.slo} burning {self.fast_burn:.1f}x budget "
                f"over {self.fast_window:.0f}s "
                f"({self.slow_burn:.1f}x over {self.slow_window:.0f}s) "
                f"on {self.service}")


class SloMonitor:
    """Event-fed availability SLO with multi-window burn-rate alerting.

    ``record(time, ok)`` is called once per qualifying request; when the
    burn condition trips, every subscribed callback receives a
    :class:`BurnRateAlert`.  ``min_events`` avoids paging off a handful
    of early samples, ``cooldown`` rate-limits repeat pages.
    """

    def __init__(self, name: str, *, service: str = "", objective: float = 0.99,
                 fast_window: float = 300.0, slow_window: float = 3600.0,
                 threshold: float = 14.4, min_events: int = 20,
                 cooldown: float = 600.0) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if fast_window >= slow_window:
            raise ValueError("fast window must be shorter than slow window")
        self.name = name
        self.service = service
        self.objective = objective
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.threshold = threshold
        self.min_events = min_events
        self.cooldown = cooldown
        # (time, ok) events; slow window is a superset of fast, so one
        # deque bounded by the slow window serves both.
        self._events: Deque[Tuple[float, bool]] = deque()
        self._subscribers: List[Callable[[BurnRateAlert], None]] = []
        self._last_alert: Optional[float] = None
        self.alerts: List[BurnRateAlert] = []

    # --------------------------------------------------------------- feed
    def subscribe(self, callback: Callable[[BurnRateAlert], None]) -> None:
        self._subscribers.append(callback)

    def record(self, time: float, ok: bool) -> Optional[BurnRateAlert]:
        self._events.append((time, ok))
        self._trim(time)
        alert = self._evaluate(time)
        if alert is not None:
            self.alerts.append(alert)
            for callback in list(self._subscribers):
                callback(alert)
        return alert

    # ---------------------------------------------------------- internals
    def _trim(self, now: float) -> None:
        horizon = now - self.slow_window
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def error_rate(self, now: float, window: float) -> float:
        horizon = now - window
        total = errors = 0
        for when, ok in self._events:
            if when >= horizon:
                total += 1
                if not ok:
                    errors += 1
        return errors / total if total else 0.0

    def burn(self, now: float, window: float) -> float:
        return burn_rate(self.error_rate(now, window), self.objective)

    def _evaluate(self, now: float) -> Optional[BurnRateAlert]:
        if len(self._events) < self.min_events:
            return None
        if self._last_alert is not None and now - self._last_alert < self.cooldown:
            return None
        fast = self.burn(now, self.fast_window)
        slow = self.burn(now, self.slow_window)
        if fast < self.threshold or slow < self.threshold:
            return None
        self._last_alert = now
        return BurnRateAlert(
            time=now, slo=self.name, service=self.service,
            fast_burn=fast, slow_burn=slow, threshold=self.threshold,
            fast_window=self.fast_window, slow_window=self.slow_window,
            events_in_slow_window=len(self._events),
        )
