"""The telemetry pipeline: observation that survives production scale.

PR 4's :class:`~repro.telemetry.tracing.SpanStore` retains every span
forever — correct for a 45-user RSECon story, hopeless for the
million-user federation the ROADMAP targets.  This module bounds it
without losing anything security-relevant, via **tail-based sampling**:
the keep/drop decision is taken per *trace*, after the trace has
finished, when its outcome is known.

Retention classes, in priority order:

1. **Protected** — any trace containing an ERROR / SHED / EXPIRED
   span, and any trace explicitly pinned via :meth:`BoundedSpanStore.
   protect` (the audit bridge pins every revocation-, containment- and
   fail-closed-linked trace).  Kept at 100%, always.
2. **Slowest-k** — per retention window, the k slowest completed OK
   traces (the tail the latency post-mortems need).
3. **Hash-sampled** — a deterministic fraction of ordinary OK traces,
   chosen by hashing the trace id (same trace id → same verdict on
   every run and every node; no RNG, no clock).
4. Everything else is evicted — but not silently: evicted spans roll
   up into RED aggregates per (service, status), so request counts,
   error counts and duration sums survive even when the spans do not.

In-flight traces (any unfinished span) are never evicted.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.telemetry.tracing import Span, SpanStatus, SpanStore

__all__ = ["PipelineConfig", "RedAggregate", "BoundedSpanStore",
           "trace_sampled"]

# span statuses that make a whole trace security/incident-relevant
_PROTECTED_STATUSES = (SpanStatus.ERROR, SpanStatus.SHED, SpanStatus.EXPIRED)


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs for the bounded pipeline.  Frozen: retention policy must
    not drift mid-run or the keep/drop decisions stop being auditable."""

    max_spans: int = 4000        # span budget before compaction triggers
    target_fill: float = 0.8     # compact down to this fraction of budget
    window: float = 30.0         # slowest-k bucketing window (sim seconds)
    slowest_k: int = 3           # slowest OK traces kept per window
    sample_rate: float = 0.05    # fraction of ordinary OK traces kept
    max_series_per_family: int = 64   # metric cardinality budget
    max_decisions: int = 8192    # provenance ledger retention budget

    def __post_init__(self) -> None:
        if self.max_spans < 1:
            raise ValueError("max_spans must be at least 1")
        if not 0.0 < self.target_fill <= 1.0:
            raise ValueError("target_fill must be in (0, 1]")
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if self.window <= 0:
            raise ValueError("window must be positive")


def trace_sampled(trace_id: str, rate: float) -> bool:
    """Deterministic keep/drop verdict for an ordinary OK trace.

    Hashes the trace id (sha256, first 8 hex digits) onto [0, 1); keeps
    it when that lands under ``rate``.  Every node that sees the trace
    reaches the same verdict with no coordination — the property that
    makes distributed tail sampling workable.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    h = int(hashlib.sha256(trace_id.encode("utf-8")).hexdigest()[:8], 16)
    return h / float(0x100000000) < rate


@dataclass
class RedAggregate:
    """Rate/Errors/Duration rollup of evicted spans for one
    (service, status) pair — what remains once the spans are gone."""

    count: int = 0
    duration_sum: float = 0.0
    max_duration: float = 0.0

    def fold(self, span: Span) -> None:
        self.count += 1
        self.duration_sum += span.duration
        if span.duration > self.max_duration:
            self.max_duration = span.duration


class BoundedSpanStore(SpanStore):
    """A :class:`SpanStore` with tail-sampled, bounded retention.

    Drop-in: the tracer, the SIEM trace correlation and the analysis
    helpers all see the normal store API; only retention changes.
    """

    def __init__(self, config: PipelineConfig) -> None:
        super().__init__()
        self.config = config
        self._protected: Set[str] = set()
        self.rollups: Dict[Tuple[str, str], RedAggregate] = {}
        self.evicted_spans = 0
        self.evicted_traces = 0
        self.compactions = 0

    # ---------------------------------------------------------- pinning
    def protect(self, trace_id: str) -> None:
        """Pin a trace against eviction (revocations, containments,
        fail-closed denials — anything a post-mortem will replay)."""
        if trace_id:
            self._protected.add(trace_id)

    def protected_ids(self) -> Set[str]:
        return set(self._protected)

    def trace_protected(self, trace_id: str) -> bool:
        if trace_id in self._protected:
            return True
        return any(s.status in _PROTECTED_STATUSES
                   for s in self._by_trace.get(trace_id, ()))

    # --------------------------------------------------------- ingestion
    def add(self, span: Span) -> Span:
        super().add(span)
        if len(self._spans) > self.config.max_spans:
            self.compact()
        return span

    # --------------------------------------------------------- sampling
    def _trace_duration(self, spans: List[Span]) -> float:
        """Duration of the root span when present, else the envelope of
        the trace — the number slowest-k ranks by."""
        for s in spans:
            if s.parent_id is None:
                return s.duration
        start = min(s.start for s in spans)
        end = max(s.end for s in spans if s.end is not None)
        return end - start

    def compact(self) -> None:
        """Apply the retention classes and evict the remainder into RED
        rollups, oldest trace first, down to the target fill."""
        target = max(1, int(self.config.max_spans * self.config.target_fill))
        excess = len(self._spans) - target
        if excess <= 0:
            return
        # classify completed traces; unfinished traces are untouchable
        candidates: List[Tuple[float, str, List[Span]]] = []
        windows: Dict[int, List[Tuple[float, str]]] = {}
        for tid, spans in self._by_trace.items():
            if any(not s.finished for s in spans):
                continue
            if self.trace_protected(tid):
                continue
            if trace_sampled(tid, self.config.sample_rate):
                continue
            start = min(s.start for s in spans)
            duration = self._trace_duration(spans)
            candidates.append((start, tid, spans))
            windows.setdefault(int(start // self.config.window), []).append(
                (duration, tid))
        # slowest-k per window survive even though they sampled out
        slow: Set[str] = set()
        for bucket in windows.values():
            bucket.sort(reverse=True)
            slow.update(tid for _, tid in bucket[:self.config.slowest_k])
        doomed: List[str] = []
        evicting = 0
        for start, tid, spans in sorted(candidates,
                                        key=lambda c: (c[0], c[1])):
            if evicting >= excess:
                break
            if tid in slow:
                continue
            doomed.append(tid)
            evicting += len(spans)
            for span in spans:
                key = (span.service or span.name, span.status)
                agg = self.rollups.get(key)
                if agg is None:
                    agg = self.rollups[key] = RedAggregate()
                agg.fold(span)
        if doomed:
            self.evicted_spans += self._drop_traces(doomed)
            self.evicted_traces += len(doomed)
        self.compactions += 1

    # ------------------------------------------------------------- stats
    def stats(self) -> Dict[str, object]:
        return {
            "retained_spans": len(self._spans),
            "retained_traces": len(self._by_trace),
            "evicted_spans": self.evicted_spans,
            "evicted_traces": self.evicted_traces,
            "protected_traces": len(self._protected),
            "compactions": self.compactions,
            "budget": self.config.max_spans,
            "rolled_up": sum(a.count for a in self.rollups.values()),
        }
