"""Counter / Gauge / Histogram primitives with labelled series.

The registry is Prometheus-shaped: a metric has a name, a help string,
and a family of series keyed by sorted ``(label, value)`` tuples.
Histograms keep cumulative bucket counts plus an *exemplar* per bucket —
the trace id of the most recent observation that landed there — which is
what lets the exposition link a p99 tail bucket back to the exact slow
login that produced it.

Exposition follows the OpenMetrics text format closely enough to be
read by anyone who has scraped ``/metrics``:

    repro_http_request_duration_seconds_bucket{dst="broker",le="0.5"} 12 # {trace_id="00…"} 0.41 107.2
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "Exemplar", "DEFAULT_BUCKETS", "OVERFLOW_LABEL",
           "DROPPED_LABELS_METRIC"]

LabelKey = Tuple[Tuple[str, str], ...]

# label value that absorbs new series past a family's cardinality budget
OVERFLOW_LABEL = "__overflow__"
# registry-level counter of label sets folded into the overflow series
DROPPED_LABELS_METRIC = "repro_metrics_dropped_labels_total"

# Seconds-scale buckets sized for the simulated control plane: hops cost
# ~5-40 ms, a full federated login O(0.1-10 s) under load.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """OpenMetrics label-value escaping: backslash, double-quote and
    newline must be escaped or the exposition stops being parseable."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _render_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _fmt(value: float) -> str:
    """Render a sample value the way Prometheus does: integers bare."""
    if value == int(value):
        return str(int(value))
    return repr(round(value, 9))


@dataclass(frozen=True)
class Exemplar:
    """A trace id attached to one histogram observation."""

    trace_id: str
    value: float
    time: float

    def render(self) -> str:
        return (f'# {{trace_id="{self.trace_id}"}} '
                f"{_fmt(self.value)} {_fmt(self.time)}")


class Metric:
    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 max_series: Optional[int] = None) -> None:
        self.name = name
        self.help = help
        # cardinality budget: past this many series, new label sets fold
        # into one OVERFLOW_LABEL series instead of growing the family
        # unboundedly (None = unbudgeted, the PR-4 behaviour)
        self.max_series = max_series
        self.dropped_labels = 0
        self.on_overflow: Optional[Callable[[str], None]] = None

    def _bound_key(self, key: LabelKey, series: Mapping[LabelKey, object]) -> LabelKey:
        """Fold a *new* label set into the overflow series when the
        family is at budget; existing series keep exact labels."""
        if (self.max_series is None or not key
                or key in series or len(series) < self.max_series):
            return key
        self.dropped_labels += 1
        if self.on_overflow is not None:
            self.on_overflow(self.name)
        return tuple((k, OVERFLOW_LABEL) for k, _ in key)

    def expose(self) -> List[str]:  # pragma: no cover - interface
        raise NotImplementedError


class Counter(Metric):
    """Monotonic count, one value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 max_series: Optional[int] = None) -> None:
        super().__init__(name, help, max_series)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._bound_key(_label_key(labels), self._series)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        return sum(self._series.values())

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)

    def expose(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for key in sorted(self._series):
            lines.append(
                f"{self.name}{_render_labels(key)} {_fmt(self._series[key])}")
        return lines


class Gauge(Metric):
    """A value that can go up and down (breaker states, live sessions)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 max_series: Optional[int] = None) -> None:
        super().__init__(name, help, max_series)
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._bound_key(_label_key(labels), self._series)
        self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._bound_key(_label_key(labels), self._series)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._series)

    def expose(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for key in sorted(self._series):
            lines.append(
                f"{self.name}{_render_labels(key)} {_fmt(self._series[key])}")
        return lines


@dataclass
class _HistogramSeries:
    buckets: List[int]
    count: int = 0
    total: float = 0.0
    exemplars: Dict[int, Exemplar] = field(default_factory=dict)


class Histogram(Metric):
    """Cumulative-bucket histogram with per-bucket exemplars."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS,
                 max_series: Optional[int] = None) -> None:
        super().__init__(name, help, max_series)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def _get(self, key: LabelKey) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(buckets=[0] * (len(self.buckets) + 1))
            self._series[key] = series
        return series

    def bucket_index(self, value: float) -> int:
        """Index of the first bucket whose bound holds ``value``
        (``len(buckets)`` means the +Inf overflow bucket)."""
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                return i
        return len(self.buckets)

    def observe(self, value: float, *, trace_id: Optional[str] = None,
                time: float = 0.0, **labels: str) -> None:
        series = self._get(self._bound_key(_label_key(labels), self._series))
        idx = self.bucket_index(value)
        series.buckets[idx] += 1
        series.count += 1
        series.total += value
        if trace_id:
            series.exemplars[idx] = Exemplar(trace_id, value, time)

    def count(self, **labels: str) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels: str) -> float:
        series = self._series.get(_label_key(labels))
        return series.total if series else 0.0

    def cumulative_buckets(self, **labels: str) -> List[Tuple[str, int]]:
        """(le, cumulative count) pairs ending with +Inf — bucket math
        as the exposition renders it."""
        series = self._series.get(_label_key(labels))
        counts = series.buckets if series else [0] * (len(self.buckets) + 1)
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            out.append((_fmt(bound), running))
        out.append(("+Inf", running + counts[-1]))
        return out

    def quantile(self, q: float, **labels: str) -> float:
        """Bucket-interpolated quantile, Prometheus ``histogram_quantile``
        style — used by SLO latency checks, not the bench percentiles."""
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return 0.0
        rank = q * series.count
        running = 0
        lower = 0.0
        for bound, n in zip(self.buckets, series.buckets):
            if running + n >= rank:
                if n == 0:
                    return bound
                return lower + (bound - lower) * (rank - running) / n
            running += n
            lower = bound
        return self.buckets[-1]

    def tail_exemplars(self, **labels: str) -> List[Exemplar]:
        """Exemplars from the highest occupied buckets downward."""
        series = self._series.get(_label_key(labels))
        if series is None:
            return []
        return [series.exemplars[i]
                for i in sorted(series.exemplars, reverse=True)]

    def series_labels(self) -> List[LabelKey]:
        return sorted(self._series)

    def expose(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for key in sorted(self._series):
            series = self._series[key]
            running = 0
            for i, bound in enumerate(self.buckets):
                running += series.buckets[i]
                line = (f"{self.name}_bucket"
                        f"{_render_labels(key, [('le', _fmt(bound))])} "
                        f"{running}")
                exemplar = series.exemplars.get(i)
                if exemplar is not None:
                    line += f" {exemplar.render()}"
                lines.append(line)
            running += series.buckets[-1]
            line = (f"{self.name}_bucket"
                    f"{_render_labels(key, [('le', '+Inf')])} {running}")
            exemplar = series.exemplars.get(len(self.buckets))
            if exemplar is not None:
                line += f" {exemplar.render()}"
            lines.append(line)
            lines.append(
                f"{self.name}_sum{_render_labels(key)} {_fmt(series.total)}")
            lines.append(
                f"{self.name}_count{_render_labels(key)} {series.count}")
        return lines


class MetricsRegistry:
    """Namespace of metrics; one per deployment."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _register(self, metric: Metric) -> Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ValueError(
                    f"metric {metric.name!r} already registered "
                    f"as {existing.kind}")
            return existing
        metric.on_overflow = self._note_overflow
        self._metrics[metric.name] = metric
        return metric

    def _note_overflow(self, family: str) -> None:
        """Count a label set folded into a family's overflow series.
        The counter is created lazily so registries that never overflow
        expose exactly what they did before budgets existed."""
        counter = self._metrics.get(DROPPED_LABELS_METRIC)
        if counter is None:
            counter = self.counter(
                DROPPED_LABELS_METRIC,
                "Label sets folded into __overflow__ by per-family "
                "cardinality budgets")
        counter.inc(family=family)  # type: ignore[union-attr]

    def set_series_budget(self, max_series: Optional[int],
                          names: Optional[Iterable[str]] = None) -> None:
        """Apply a cardinality budget to families (default: all).  The
        dropped-labels counter itself stays unbudgeted — the meter must
        not saturate the thing it meters."""
        targets = list(names) if names is not None else list(self._metrics)
        for name in targets:
            metric = self._metrics.get(name)
            if metric is not None and name != DROPPED_LABELS_METRIC:
                metric.max_series = max_series

    def counter(self, name: str, help: str = "",
                max_series: Optional[int] = None) -> Counter:
        return self._register(Counter(name, help, max_series))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              max_series: Optional[int] = None) -> Gauge:
        return self._register(Gauge(name, help, max_series))  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  max_series: Optional[int] = None) -> Histogram:
        return self._register(Histogram(name, help, buckets, max_series))  # type: ignore[return-value]

    def dropped_labels(self) -> float:
        counter = self._metrics.get(DROPPED_LABELS_METRIC)
        return counter.total() if counter is not None else 0.0  # type: ignore[union-attr]

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def expose(self) -> str:
        """Full registry in OpenMetrics-style text, alphabetical."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].expose())
        lines.append("# EOF")
        return "\n".join(lines) + "\n"
