"""Trace analysis: span trees, critical paths, and rendering.

A trace is a forest of spans linked by ``parent_id``.  The *critical
path* of a root is the chain of longest-duration children — the hops
that actually gate the end-to-end latency of a login.  The breakdown
reports each critical-path span's **self time** (its duration minus the
time covered by its own children on the path), which is what tells you
*where* a slow login was slow rather than just that it was.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.telemetry.tracing import Span, SpanStore

__all__ = ["SpanTree", "build_tree", "critical_path",
           "critical_path_breakdown", "PathStep", "render_tree"]


@dataclass
class SpanTree:
    """One span plus its resolved children, start-ordered."""

    span: Span
    children: List["SpanTree"]

    def walk(self) -> List["SpanTree"]:
        out = [self]
        for child in self.children:
            out.extend(child.walk())
        return out


def build_tree(spans: Sequence[Span]) -> List[SpanTree]:
    """Resolve parent links into a forest.  Orphans (parent missing from
    the set) surface as extra roots so nothing silently disappears."""
    nodes: Dict[str, SpanTree] = {
        s.span_id: SpanTree(span=s, children=[]) for s in spans
    }
    roots: List[SpanTree] = []
    for node in nodes.values():
        parent_id = node.span.parent_id
        if parent_id is not None and parent_id in nodes:
            nodes[parent_id].children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.span.start, n.span.span_id))
    roots.sort(key=lambda n: (n.span.start, n.span.span_id))
    return roots


def critical_path(store: SpanStore, trace_id: str) -> List[Span]:
    """Longest-child chain from the trace's first root downward."""
    roots = build_tree(store.trace(trace_id))
    if not roots:
        return []
    path: List[Span] = []
    node: Optional[SpanTree] = roots[0]
    while node is not None:
        path.append(node.span)
        node = max(node.children, key=lambda n: n.span.duration, default=None)
    return path


@dataclass(frozen=True)
class PathStep:
    """One critical-path hop with its share of the end-to-end time."""

    name: str
    service: str
    kind: str
    status: str
    duration: float
    self_time: float
    share: float  # self_time / root duration


def critical_path_breakdown(store: SpanStore, trace_id: str) -> List[PathStep]:
    """Critical path with self-times: duration minus the on-path child's
    duration, i.e. the time this hop itself contributed."""
    path = critical_path(store, trace_id)
    if not path:
        return []
    total = path[0].duration or 1e-12
    steps: List[PathStep] = []
    for i, span in enumerate(path):
        child_time = path[i + 1].duration if i + 1 < len(path) else 0.0
        self_time = max(span.duration - child_time, 0.0)
        steps.append(PathStep(
            name=span.name, service=span.service, kind=span.kind,
            status=span.status, duration=span.duration,
            self_time=self_time, share=self_time / total,
        ))
    return steps


def render_tree(store: SpanStore, trace_id: str) -> str:
    """ASCII span tree for docs/debugging:

        story6 alice  [ok]  0.312s
        └─ call edge.isambard.example  [ok]  0.305s
           └─ GET edge.isambard.example /hub  [ok]  0.300s
    """
    roots = build_tree(store.trace(trace_id))
    lines: List[str] = []

    def visit(node: SpanTree, prefix: str, is_last: bool, top: bool) -> None:
        span = node.span
        label = (f"{span.name}  [{span.status}]  {span.duration:.3f}s"
                 + (f"  !{span.error}" if span.error else ""))
        if top:
            lines.append(label)
            child_prefix = ""
        else:
            joint = "└─ " if is_last else "├─ "
            lines.append(prefix + joint + label)
            child_prefix = prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(node.children):
            visit(child, child_prefix, i == len(node.children) - 1, False)

    for root in roots:
        visit(root, "", True, True)
    return "\n".join(lines)
