"""Spans, the in-process span store, and the tracer that mints them.

Every observed unit of work — a network hop, a client call (including
its retries), a tunnel dispatch, a WAL replay, a failover promotion —
becomes one :class:`Span` with simulated-clock timestamps.  Spans land
in a :class:`SpanStore` indexed by trace id, which is what the SIEM's
trace↔audit correlation and the critical-path analysis read.

Determinism: span ids come from plain counters (``{n:032x}``), *not*
from the deployment's :class:`~repro.ids.IdFactory` or any RNG, and the
tracer only ever **reads** the clock.  Turning tracing on therefore
cannot shift a single identifier, secret, or simulated timestamp
anywhere else in the system — observation stays pure.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.clock import SimClock
from repro.errors import AttemptTimeout, DeadlineExceeded, RateLimited
from repro.telemetry.context import TraceContext

__all__ = ["Span", "SpanStore", "Tracer", "SpanStatus"]


class SpanStatus:
    """Span terminal states.  ``SHED``/``EXPIRED`` mirror the audit
    outcome taxonomy so the two sides of the correlation agree."""

    UNSET = "unset"
    OK = "ok"
    ERROR = "error"
    SHED = "shed"
    EXPIRED = "expired"


def classify_error(exc: BaseException) -> str:
    """Map an exception to a span status using the error taxonomy."""
    if isinstance(exc, RateLimited):
        return SpanStatus.SHED
    # AttemptTimeout subclasses ServiceUnavailable (retryable), but as a
    # span outcome it is a deadline event — an attempt abandoned at its
    # adaptive per-attempt budget must land in the same status bucket as
    # an end-to-end deadline expiry, not generic ERROR
    if isinstance(exc, (DeadlineExceeded, AttemptTimeout)):
        return SpanStatus.EXPIRED
    return SpanStatus.ERROR


@dataclass
class Span:
    """One timed unit of work inside a trace.

    ``kind`` is ``"server"`` (a delivered network hop), ``"client"`` (an
    outbound call, spanning all its retry attempts), ``"tunnel"`` (a
    direct reverse-tunnel dispatch that bypasses the network), or
    ``"internal"`` (root flows, recoveries, promotions).  ``error`` holds
    the error-taxonomy class name (e.g. ``"CircuitOpen"``) when the work
    failed.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    service: str
    kind: str
    start: float
    end: Optional[float] = None
    status: str = SpanStatus.UNSET
    error: str = ""
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def context(self) -> TraceContext:
        """The context downstream work under this span should carry."""
        return TraceContext(
            trace_id=self.trace_id, span_id=self.span_id,
            parent_id=self.parent_id,
            baggage=dict(self.attrs.get("baggage", {})),  # type: ignore[arg-type]
        )


class SpanStore:
    """All recorded spans, indexed by trace id (the in-process backend)."""

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._by_trace: Dict[str, List[Span]] = defaultdict(list)
        # span ids per trace, maintained incrementally so orphan checks
        # don't rebuild the set per trace per call (the tracewatch
        # scanner runs orphans() repeatedly over the whole store)
        self._ids: Dict[str, Set[str]] = defaultdict(set)

    def add(self, span: Span) -> Span:
        self._spans.append(span)
        self._by_trace[span.trace_id].append(span)
        self._ids[span.trace_id].add(span.span_id)
        return span

    def spans(self) -> List[Span]:
        return list(self._spans)

    def trace(self, trace_id: str) -> List[Span]:
        """Spans of one trace, in start order."""
        return sorted(self._by_trace.get(trace_id, []),
                      key=lambda s: (s.start, s.span_id))

    def trace_ids(self) -> List[str]:
        return list(self._by_trace)

    def has_trace(self, trace_id: str) -> bool:
        return trace_id in self._by_trace

    def orphans(self, trace_id: Optional[str] = None) -> List[Span]:
        """Spans whose parent never reached the store — the connectivity
        check the shed-attribution bugfix is verified against: a hop
        that drops context mid-flow shows up here."""
        traces = ([trace_id] if trace_id is not None else list(self._by_trace))
        out: List[Span] = []
        for tid in traces:
            ids = self._ids.get(tid, ())
            out.extend(
                s for s in self._by_trace.get(tid, [])
                if s.parent_id is not None and s.parent_id not in ids
            )
        return out

    def unfinished(self) -> List[Span]:
        return [s for s in self._spans if not s.finished]

    def _drop_traces(self, trace_ids: Iterable[str]) -> int:
        """Remove whole traces, keeping every index consistent; returns
        the number of spans dropped (retention policies live in
        :class:`~repro.telemetry.pipeline.BoundedSpanStore`)."""
        doomed = set(trace_ids)
        dropped = 0
        for tid in doomed:
            dropped += len(self._by_trace.pop(tid, ()))
            self._ids.pop(tid, None)
        if doomed:
            self._spans = [s for s in self._spans
                           if s.trace_id not in doomed]
        return dropped

    def __len__(self) -> int:
        return len(self._spans)


class Tracer:
    """Mints spans against the shared simulated clock.

    Ids are sequential counters rendered as hex — unique within the
    process, deterministic across runs, and never drawn from the
    deployment's seeded id/secret streams.
    """

    def __init__(self, clock: SimClock, store: Optional[SpanStore] = None) -> None:
        self.clock = clock
        self.store = store if store is not None else SpanStore()
        self._trace_n = 0
        self._span_n = 0

    # ------------------------------------------------------------- ids
    def new_trace_id(self) -> str:
        self._trace_n += 1
        return f"{self._trace_n:032x}"

    def new_span_id(self) -> str:
        self._span_n += 1
        return f"{self._span_n:016x}"

    # ----------------------------------------------------------- starts
    def start_trace(self, name: str, *, service: str = "", kind: str = "internal",
                    baggage: Optional[Dict[str, str]] = None,
                    **attrs: object) -> Span:
        """Open a new root span (a fresh trace id, no parent)."""
        span = Span(
            trace_id=self.new_trace_id(), span_id=self.new_span_id(),
            parent_id=None, name=name, service=service, kind=kind,
            start=self.clock.now(), attrs=dict(attrs),
        )
        if baggage:
            span.attrs["baggage"] = dict(baggage)
        return self.store.add(span)

    def start_span(self, name: str, ctx: TraceContext, *, service: str = "",
                   kind: str = "internal", **attrs: object) -> Span:
        """Open a span under an incoming context (its span becomes our
        parent, as traceparent semantics demand)."""
        span = Span(
            trace_id=ctx.trace_id, span_id=self.new_span_id(),
            parent_id=ctx.span_id, name=name, service=service, kind=kind,
            start=self.clock.now(), attrs=dict(attrs),
        )
        if ctx.baggage:
            span.attrs["baggage"] = dict(ctx.baggage)
        return self.store.add(span)

    # ------------------------------------------------------------- ends
    def end(self, span: Span, *, error: Optional[BaseException] = None,
            status: Optional[str] = None, **attrs: object) -> Span:
        """Close a span now; status defaults from the error taxonomy."""
        span.end = self.clock.now()
        span.attrs.update(attrs)
        if status is not None:
            span.status = status
        elif error is not None:
            span.status = classify_error(error)
        else:
            span.status = SpanStatus.OK
        if error is not None:
            span.error = type(error).__name__
        return span

    # ------------------------------------------------------- retroactive
    def record(self, name: str, *, start: float, end: float, service: str = "",
               kind: str = "internal", status: str = SpanStatus.OK,
               ctx: Optional[TraceContext] = None, **attrs: object) -> Span:
        """Record an already-completed unit of work (WAL replays and
        failover promotions are measured by their reports, after the
        fact) as a finished span."""
        if ctx is not None:
            span = Span(
                trace_id=ctx.trace_id, span_id=self.new_span_id(),
                parent_id=ctx.span_id, name=name, service=service, kind=kind,
                start=start, end=end, status=status, attrs=dict(attrs),
            )
        else:
            span = Span(
                trace_id=self.new_trace_id(), span_id=self.new_span_id(),
                parent_id=None, name=name, service=service, kind=kind,
                start=start, end=end, status=status, attrs=dict(attrs),
            )
        return self.store.add(span)
