"""Attacker model: blast radius, stolen credentials, containment time.

The paper's security claims are qualitative ("segmentation of network
domains allowed us to isolate and contain different threats"; a
"non-authorised user of a service cannot access the AI and HPC
resources").  This module turns them into measurements:

* **network blast radius** — from a compromised foothold, which
  endpoints are reachable at all?  BFS over the firewall's reachability
  relation; compared against the flat-network baseline in ABL1.
* **stolen-token window** — an attacker exfiltrates a live RBAC token;
  for how long does it keep working?  Swept against TTL in ABL2.
* **containment time** — an attacker trips a detection rule; how long
  until the kill switch severs them?  Decomposed into forwarding delay +
  detection + containment in ABL3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import ReproError, TokenError
from repro.net.http import HttpRequest

__all__ = ["ExposureReport", "ThreatModel"]

PROBE_PORTS = (22, 443)


@dataclass(frozen=True)
class ExposureReport:
    origin: str
    reachable: List[str]
    total_endpoints: int

    @property
    def fraction(self) -> float:
        return len(self.reachable) / self.total_endpoints if self.total_endpoints else 0.0


class ThreatModel:
    """Adversarial probes against one deployment."""

    def __init__(self, dri) -> None:
        self.dri = dri

    # ------------------------------------------------------------------
    # reachability / blast radius
    # ------------------------------------------------------------------
    def reachable_from(
        self, origin: str, *, ports: Sequence[int] = PROBE_PORTS
    ) -> ExposureReport:
        """Endpoints directly reachable from ``origin`` on any probe port."""
        network = self.dri.network
        reachable = [
            ep.name
            for ep in network.endpoints()
            if ep.name != origin
            and any(network.reachable(origin, ep.name, port) for port in ports)
        ]
        return ExposureReport(
            origin=origin,
            reachable=sorted(reachable),
            total_endpoints=len(network.endpoints()) - 1,
        )

    def lateral_movement(
        self, start: str, *, ports: Sequence[int] = PROBE_PORTS,
        max_hops: int = 2,
    ) -> ExposureReport:
        """Bounded transitive closure: what an attacker who fully
        compromises every service they can reach could touch within
        ``max_hops`` pivots.  (Unbounded closure saturates on any usable
        network — the paper's claim is about how *hard* each pivot is,
        which the hop budget models.)"""
        network = self.dri.network
        seen: Set[str] = {start}
        frontier = [start]
        for _hop in range(max_hops):
            next_frontier: List[str] = []
            for origin in frontier:
                for ep in network.endpoints():
                    if ep.name in seen:
                        continue
                    if any(network.reachable(origin, ep.name, port)
                           for port in ports):
                        seen.add(ep.name)
                        next_frontier.append(ep.name)
            frontier = next_frontier
        seen.discard(start)
        return ExposureReport(
            origin=start,
            reachable=sorted(seen),
            total_endpoints=len(network.endpoints()) - 1,
        )

    def hops_to(self, start: str, target: str,
                *, ports: Sequence[int] = PROBE_PORTS,
                max_hops: int = 6) -> Optional[int]:
        """Minimum number of pivots an attacker starting at ``start``
        needs before ``target`` is reachable (1 = direct).  None if the
        hop budget never reaches it."""
        for hops in range(1, max_hops + 1):
            report = self.lateral_movement(start, ports=ports, max_hops=hops)
            if target in report.reachable:
                return hops
        return None

    # ------------------------------------------------------------------
    # stolen credentials
    # ------------------------------------------------------------------
    def stolen_token_window(
        self, token: str, audience: str, *, probe_interval: float = 30.0,
        max_window: float = 24 * 3600.0,
    ) -> float:
        """Replay a stolen RBAC token until it stops validating.

        Returns the number of seconds the token remained usable after
        theft (theft time = now).  Advances the simulated clock.
        """
        clock = self.dri.clock
        validator = self.dri.validator_for(audience)
        start = clock.now()
        while clock.now() - start < max_window:
            try:
                validator.validate(token)
            except TokenError:
                return clock.now() - start
            clock.advance(probe_interval)
        return max_window

    def unauthorised_access_attempts(self, origin: str = "attacker-host"
                                     ) -> Dict[str, str]:
        """A non-authorised internet host tries every sensitive endpoint
        directly; records, per target, how the attempt died."""
        network = self.dri.network
        if not network.has_endpoint(origin):
            from repro.net import OperatingDomain, Service, Zone

            network.attach(Service(origin), OperatingDomain.EXTERNAL, Zone.INTERNET)
        outcomes: Dict[str, str] = {}
        for target, port, path in [
            ("login-node", 22, "/session"),
            ("mgmt-node", 443, "/operate"),
            ("jupyter", 443, "/"),
            ("soc", 443, "/alerts"),
            ("portal", 443, "/projects"),
            ("broker", 443, "/tokens"),
        ]:
            try:
                resp = network.request(
                    origin, target, HttpRequest("POST", path), port=port
                )
                outcomes[target] = (
                    f"HTTP {resp.status}: {resp.body.get('error', 'reached')}"
                    if not resp.ok else "REACHED (no denial!)"
                )
            except ReproError as exc:
                outcomes[target] = f"{type(exc).__name__}"
        return outcomes

    # ------------------------------------------------------------------
    # detection → containment
    # ------------------------------------------------------------------
    def containment_time(
        self, *, attack_rate: float = 1.0, attacker: str = "mallory",
        max_time: float = 3600.0,
    ) -> Optional[float]:
        """Brute-force the institutional IdP until the SOC contains the
        actor; returns seconds from first attempt to containment."""
        dri = self.dri
        clock = dri.clock
        start = clock.now()
        idp = next(iter(dri.idps.values()))
        while clock.now() - start < max_time:
            idp.handle(HttpRequest("POST", "/login", body={
                "username": attacker, "password": "guess", "sp": "x",
            }))
            clock.advance(1.0 / attack_rate)
            if attacker in dri.soc.contained:
                return clock.now() - start
        return None
