"""Operations report: one text artefact summarising a live deployment.

Pulls together what a service owner (or a CAF assessor) would ask for:
the architecture inventory, usage across projects, security posture
(inventory scan + configuration assessment), SOC activity, tenet
compliance and kill-switch readiness.  Used by ``python -m repro report``
and by tests that want a whole-system smoke artefact.
"""

from __future__ import annotations

from typing import List

from repro.core.metrics import format_table
from repro.policy import CAF_OBJECTIVES, assess_caf, check_tenets
from repro.policy.caf import caf_summary

__all__ = ["operations_report"]


def _section(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{title}\n{bar}\n"


def operations_report(dri) -> str:
    """Render the full report for a (preferably exercised) deployment."""
    parts: List[str] = []
    parts.append("ISAMBARD DRI — OPERATIONS AND COMPLIANCE REPORT")
    parts.append(f"simulated time: t={dri.clock.now():.1f}s; "
                 f"seed-deterministic deployment")

    # --- architecture ------------------------------------------------------
    parts.append(_section("Architecture"))
    summary = dri.inventory_summary()
    parts.append(format_table(
        ["metric", "value"], sorted(summary.items())))

    # --- projects / usage --------------------------------------------------
    parts.append(_section("Projects and usage"))
    rows = []
    for p in dri.portal.projects():
        rows.append([
            p.project_id, p.name[:24], p.status.value,
            f"{p.allocation.gpu_hours_used:.0f}/{p.allocation.gpu_hours:.0f}",
            len(p.active_members()),
        ])
    parts.append(format_table(
        ["project", "name", "status", "hours used/allocated", "members"],
        rows or [["-", "none yet", "-", "-", "-"]]))

    # --- cluster -----------------------------------------------------------
    parts.append(_section("Clusters"))
    cluster_rows = [[
        "isambard-ai", len(dri.pool.nodes()),
        f"{dri.pool.utilisation():.1%}",
        len(dri.login_sshd.sessions()), len(dri.jupyter.sessions()),
        len(dri.slurm.jobs()),
    ]]
    if dri.pool_i3 is not None:
        cluster_rows.append([
            "isambard-3", len(dri.pool_i3.nodes()),
            f"{dri.pool_i3.utilisation():.1%}",
            len(dri.login_sshd_i3.sessions()), "-",
            len(dri.slurm_i3.jobs()),
        ])
    parts.append(format_table(
        ["cluster", "nodes", "utilisation", "ssh sessions",
         "notebooks", "jobs"], cluster_rows))

    # --- security posture ---------------------------------------------------
    parts.append(_section("Security posture"))
    findings = dri.soc.inventory.scan()
    checks = dri.soc.assessment.run()
    parts.append(format_table(
        ["metric", "value"],
        [
            ["assets inventoried", len(dri.soc.inventory.assets())],
            ["open vulnerability findings", len(findings)],
            ["configuration checks passing",
             f"{sum(1 for c in checks if c.passed)}/{len(checks)} "
             f"({dri.soc.assessment.score():.0%})"],
            ["SOC records ingested", dri.soc.records_ingested],
            ["alerts raised", len(dri.soc.alerts)],
            ["principals contained", len(dri.soc.contained)],
            ["kill-switch levers",
             f"{len(dri.killswitch.user_levers())} per-user, "
             f"{len(dri.killswitch.stop_levers())} whole-service"],
        ]))
    failing = [c for c in checks if not c.passed]
    if failing:
        parts.append("\nfailing checks (accepted roadmap items):")
        for c in failing:
            parts.append(f"  - {c.check_id}: {c.title} — {c.evidence}")

    # --- zero trust tenets ---------------------------------------------------
    parts.append(_section("NIST SP 800-207 tenets"))
    tenets = check_tenets(dri)
    parts.append(format_table(
        ["tenet", "verdict", "evidence"],
        [[f"T{t.tenet}", "PASS" if t.passed else "FAIL", t.evidence[:74]]
         for t in tenets]))

    # --- CAF -----------------------------------------------------------------
    parts.append(_section("NCSC CAF baseline self-assessment"))
    caf = assess_caf(dri)
    parts.append(format_table(
        ["objective", "achieved", "partial", "not achieved"],
        [[f"{obj} — {CAF_OBJECTIVES[obj]}",
          c["achieved"], c["partially-achieved"], c["not-achieved"]]
         for obj, c in sorted(caf_summary(caf).items())]))

    return "\n".join(parts)
