"""The paper's six user stories (§IV.A) as executable workflows.

Each method drives the deployed system exactly the way a person would:
through the user agent, the login pages, the client applications — no
back-door object pokes.  They are used by the integration tests, the
examples, and the per-story benchmarks, and they return structured
:class:`StoryResult` records so benches can print the steps a reader can
match against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.broker import Role
from repro.errors import ReproError
from repro.federation import HardwareKey, TotpDevice
from repro.net.http import HttpRequest, HttpResponse
from repro.oidc import UserAgent, make_url
from repro.net import OperatingDomain, Zone
from repro.sshca import SshCertClient

__all__ = ["Persona", "StoryResult", "Workflows"]


@dataclass
class Persona:
    """One human and their devices."""

    name: str
    agent: UserAgent
    kind: str                       # "federated" | "lastresort" | "admin"
    idp_endpoint: Optional[str] = None
    username: str = ""
    password: str = ""
    totp: Optional[TotpDevice] = None
    hardware_key: Optional[HardwareKey] = None
    ssh_client: Optional[SshCertClient] = None
    broker_sub: Optional[str] = None


@dataclass
class StoryResult:
    """Outcome of one user story run."""

    story: str
    ok: bool
    steps: List[str] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)
    elapsed: float = 0.0


class Workflows:
    """Persona registry + the six user stories against one deployment."""

    def __init__(self, dri) -> None:
        self.dri = dri
        self.personas: Dict[str, Persona] = {}
        self._bootstrap_admin_granted = False

    # ==================================================================
    # persona management
    # ==================================================================
    def _new_agent(self, name: str) -> UserAgent:
        agent = UserAgent(f"{name}-laptop")
        self.dri.network.attach(agent, OperatingDomain.EXTERNAL, Zone.INTERNET)
        if self.dri.resilience is not None:
            # browsers retry too: give each device its own breaker/metrics
            agent.resilience = self.dri.resilience.for_client(agent.name)
        if self.dri.telemetry is not None:
            # every flow this device drives becomes one end-to-end trace
            agent.tracer = self.dri.telemetry.tracer
        return agent

    def create_researcher(
        self, name: str, *, idp: str = "idp-bristol", email: Optional[str] = None
    ) -> Persona:
        """A federated academic: an account at their institutional IdP."""
        if name in self.personas:
            return self.personas[name]
        idp_service = self.dri.idps[idp]
        email = email or f"{name}@{idp_service.scope}"
        idp_service.add_user(name, f"pw-{name}", name.title(), email)
        persona = Persona(
            name=name, agent=self._new_agent(name), kind="federated",
            idp_endpoint=idp, username=name, password=f"pw-{name}",
        )
        persona.ssh_client = SshCertClient(persona.agent)
        persona.ssh_client.clock = self.dri.clock
        self.personas[name] = persona
        return persona

    def create_external_user(self, name: str, email: str) -> Persona:
        """A vendor/government user: invited into the last-resort IdP."""
        if name in self.personas:
            return self.personas[name]
        code = self.dri.lastresort.invite(email)
        agent = self._new_agent(name)
        resp, _ = agent.post(
            make_url("idp-lastresort", "/register"),
            {"invite_code": code, "username": name,
             "password": f"a-long-password-{name}", "display_name": name.title()},
        )
        if not resp.ok:
            raise ReproError(f"last-resort registration failed: {resp.body}")
        persona = Persona(
            name=name, agent=agent, kind="lastresort",
            username=name, password=f"a-long-password-{name}",
            totp=TotpDevice(secret=bytes.fromhex(str(resp.body["totp_secret"]))),
        )
        persona.ssh_client = SshCertClient(persona.agent)
        persona.ssh_client.clock = self.dri.clock
        self.personas[name] = persona
        return persona

    def create_admin(
        self, name: str, *roles: Role, approver: str = "bootstrap"
    ) -> Persona:
        """User story 2: invite, hardware-key enrolment, registration,
        human-check approval, and the per-service role grants."""
        if name in self.personas:
            return self.personas[name]
        dri = self.dri
        code = dri.admin_idp.invite_admin(
            f"{name}@{dri.admin_idp.institution}", invited_by=approver
        )
        agent = self._new_agent(name)
        device = HardwareKey(f"hwk-{name}")
        dri.admin_idp.enrol_hardware_key(device)
        resp, _ = agent.post(
            make_url("idp-admin", "/register"),
            {"invite_code": code, "username": name,
             "password": "p" * 20, "device_id": device.device_id},
        )
        if not resp.ok:
            raise ReproError(f"admin registration failed: {resp.body}")
        dri.admin_idp.approve_admin(name, approver=approver)
        for role in roles:
            dri.broker.grant_admin_role(f"idp-admin:{name}", role)
        persona = Persona(
            name=name, agent=agent, kind="admin",
            username=name, password="p" * 20, hardware_key=device,
        )
        self.personas[name] = persona
        return persona

    # ==================================================================
    # login building blocks
    # ==================================================================
    def login(self, persona: Persona) -> HttpResponse:
        """Fig. 2 -> chosen IdP -> broker session, per persona kind."""
        if persona.kind == "federated":
            return self._federated_login(persona)
        if persona.kind == "lastresort":
            return self._lastresort_login(persona)
        return self._admin_login(persona)

    def _resume(self, persona: Persona, upstream: str) -> HttpResponse:
        resp, _ = persona.agent.get(
            make_url("broker", "/login/start", idp=upstream, accept_terms="true")
        )
        return resp

    def _federated_login(self, persona: Persona) -> HttpResponse:
        agent = persona.agent
        resp, final = agent.get(
            make_url("broker", "/login/start", idp="myaccessid", accept_terms="true")
        )
        if resp.status == 401 and resp.body.get("login_required"):
            idp_resp, _ = agent.post(
                make_url(persona.idp_endpoint, "/login"),
                {"username": persona.username, "password": persona.password,
                 "sp": self.dri.myaccessid.entity_id},
            )
            if not idp_resp.ok:
                return idp_resp
            assert_resp, _ = agent.post(
                make_url("myaccessid", "/assert"),
                {"entity_id": self.dri.idps[persona.idp_endpoint].entity_id,
                 "assertion": idp_resp.body["assertion"]},
            )
            if not assert_resp.ok:
                return assert_resp
            resp, _ = agent.get(final)
        if resp.ok and "sub" in resp.body:
            persona.broker_sub = str(resp.body["sub"])
        return resp

    def _lastresort_login(self, persona: Persona) -> HttpResponse:
        agent = persona.agent
        resp, final = agent.get(
            make_url("broker", "/login/start", idp="lastresort", accept_terms="true")
        )
        if resp.status == 401 and resp.body.get("login_required"):
            login, _ = agent.post(
                make_url("idp-lastresort", "/login"),
                {"username": persona.username, "password": persona.password,
                 "otp": persona.totp.code_at(self.dri.clock.now())},
            )
            if not login.ok:
                return login
            resp, _ = agent.get(final)
        if resp.ok and "sub" in resp.body:
            persona.broker_sub = str(resp.body["sub"])
        return resp

    def _admin_login(self, persona: Persona) -> HttpResponse:
        agent = persona.agent
        resp, final = agent.get(
            make_url("broker", "/login/start", idp="admin", accept_terms="true")
        )
        if resp.status == 401 and resp.body.get("login_required"):
            r1, _ = agent.post(
                make_url("idp-admin", "/login"),
                {"username": persona.username, "password": persona.password},
            )
            if not r1.ok:
                return r1
            challenge = bytes.fromhex(str(r1.body["challenge"]))
            r2, _ = agent.post(
                make_url("idp-admin", "/login/mfa"),
                {"username": persona.username,
                 "assertion": persona.hardware_key.sign_challenge(challenge)},
            )
            if not r2.ok:
                return r2
            resp, _ = agent.get(final)
        if resp.ok and "sub" in resp.body:
            persona.broker_sub = str(resp.body["sub"])
        return resp

    def relogin(self, persona: Persona) -> HttpResponse:
        """Drop the broker session and authenticate again (role refresh)."""
        persona.agent.clear_cookies("broker")
        return self.login(persona)

    def mint(self, persona: Persona, audience: str, role: str,
             *, project: Optional[str] = None, ttl: Optional[float] = None
             ) -> HttpResponse:
        body: Dict[str, object] = {"audience": audience, "role": role}
        if project:
            body["project"] = project
        if ttl:
            body["ttl"] = ttl
        resp, _ = persona.agent.post(make_url("broker", "/tokens"), body)
        return resp

    # ==================================================================
    # user story 1 — allocator + PI onboarding
    # ==================================================================
    def story1_pi_onboarding(
        self,
        pi_name: str = "alice",
        *,
        via: str = "myaccessid",
        project_name: str = "proj-llm-safety",
        gpu_hours: float = 10_000.0,
        duration: float = 90 * 24 * 3600.0,
    ) -> StoryResult:
        dri = self.dri
        t0 = dri.clock.now()
        steps: List[str] = []

        allocator = self.create_admin("allocator", Role.ALLOCATOR)
        login = self.login(allocator)
        if not login.ok:
            return StoryResult("story1", False, steps + [f"allocator login failed: {login.body}"])
        steps.append("allocator authenticated via admin IdP (hardware-key MFA)")

        if via == "myaccessid":
            pi = self.create_researcher(pi_name)
            pi_email = f"{pi_name}@{dri.idps[pi.idp_endpoint].scope}"
        else:
            pi_email = f"{pi_name}@vendor.example"
            pi = self.create_external_user(pi_name, pi_email)

        token = self.mint(allocator, "portal", "allocator").body["token"]
        created, _ = allocator.agent.post(
            make_url("portal", "/projects"),
            {"name": project_name, "pi_email": pi_email,
             "gpu_hours": gpu_hours, "duration": duration},
            headers={"Authorization": f"Bearer {token}"},
        )
        if not created.ok:
            return StoryResult("story1", False, steps + [f"project creation failed: {created.body}"])
        project_id = str(created.body["project_id"])
        invite = str(created.body["invite_code"])
        steps.append(f"allocator created {project_id} with {gpu_hours} GPU-hours "
                     f"and invited the PI ({pi_email})")

        pi_login = self.login(pi)
        if not pi_login.ok:
            return StoryResult("story1", False, steps + [f"PI login failed: {pi_login.body}"])
        steps.append(f"PI authenticated via {via}; authorisation-led registration "
                     "passed (pending invitation found)")

        invitee_token = self.mint(pi, "portal", "invitee").body["token"]
        accepted, _ = pi.agent.post(
            make_url("portal", "/invitations/accept"),
            {"code": invite, "preferred_username": pi_name},
            headers={"Authorization": f"Bearer {invitee_token}"},
        )
        if not accepted.ok:
            return StoryResult("story1", False, steps + [f"acceptance failed: {accepted.body}"])
        steps.append(f"PI accepted T&Cs and joined as {accepted.body['unix_account']} "
                     f"(role {accepted.body['role']})")
        self.relogin(pi)
        steps.append("PI re-authenticated; session now carries the PI role")
        return StoryResult(
            "story1", True, steps,
            data={"project_id": project_id, "pi": pi_name,
                  "unix_account": accepted.body["unix_account"]},
            elapsed=dri.clock.now() - t0,
        )

    # ==================================================================
    # user story 2 — admin registration
    # ==================================================================
    def story2_admin_registration(self, name: str = "ops1") -> StoryResult:
        dri = self.dri
        t0 = dri.clock.now()
        steps: List[str] = []
        admin = self.create_admin(name, Role.ADMIN_INFRA)
        steps.append("invitation issued (institutional email enforced), "
                     "hardware key enrolled, account registered pending")
        steps.append("human check: an existing admin approved the account")
        login = self.login(admin)
        if not login.ok:
            return StoryResult("story2", False, steps + [f"login failed: {login.body}"])
        steps.append("admin authenticated with password + hardware-key MFA")
        # per-service RBAC, not global: the infra admin cannot mint a
        # security-role token
        denied = self.mint(admin, "soc", Role.ADMIN_SECURITY.value)
        steps.append(
            "admin access is per-service: security-role mint was "
            + ("DENIED (correct)" if denied.status == 403 else "allowed (WRONG)")
        )
        ok = login.ok and denied.status == 403
        return StoryResult("story2", ok, steps,
                           data={"admin": name, "active_admins":
                                 dri.admin_idp.active_admins()},
                           elapsed=dri.clock.now() - t0)

    # ==================================================================
    # user story 3 — researcher setup
    # ==================================================================
    def story3_researcher_setup(
        self, project_id: str, pi_name: str, researcher_name: str = "bob"
    ) -> StoryResult:
        dri = self.dri
        t0 = dri.clock.now()
        steps: List[str] = []
        pi = self.personas[pi_name]
        researcher = self.create_researcher(researcher_name)
        email = f"{researcher_name}@{dri.idps[researcher.idp_endpoint].scope}"

        pi_token = self.mint(pi, "portal", "pi", project=project_id)
        if not pi_token.ok:
            return StoryResult("story3", False, [f"PI token mint failed: {pi_token.body}"])
        invited, _ = pi.agent.post(
            make_url("portal", "/invite"),
            {"project_id": project_id, "email": email},
            headers={"Authorization": f"Bearer {pi_token.body['token']}"},
        )
        if not invited.ok:
            return StoryResult("story3", False, [f"invite failed: {invited.body}"])
        steps.append(f"PI invited {email} as researcher")

        login = self.login(researcher)
        if not login.ok:
            return StoryResult("story3", False, steps + [f"researcher login failed: {login.body}"])
        invitee = self.mint(researcher, "portal", "invitee").body["token"]
        accepted, _ = researcher.agent.post(
            make_url("portal", "/invitations/accept"),
            {"code": invited.body["invite_code"],
             "preferred_username": researcher_name},
            headers={"Authorization": f"Bearer {invitee}"},
        )
        if not accepted.ok:
            return StoryResult("story3", False, steps + [f"acceptance failed: {accepted.body}"])
        steps.append(f"researcher registered as {accepted.body['unix_account']}")
        self.relogin(researcher)
        steps.append("researcher re-authenticated with the researcher role")
        return StoryResult(
            "story3", True, steps,
            data={"researcher": researcher_name,
                  "unix_account": accepted.body["unix_account"],
                  "project_id": project_id},
            elapsed=dri.clock.now() - t0,
        )

    # ==================================================================
    # user story 4 — SSH to the AI platform
    # ==================================================================
    def story4_ssh_session(self, researcher_name: str) -> StoryResult:
        dri = self.dri
        t0 = dri.clock.now()
        steps: List[str] = []
        persona = self.personas[researcher_name]
        client = persona.ssh_client
        assert client is not None

        cert = client.request_certificate()
        if not cert.ok:
            return StoryResult("story4", False, [f"certificate denied: {cert.body}"])
        steps.append(
            f"SSH certificate issued (serial {cert.body['serial']}) for "
            f"principals {cert.body['principals']}, "
            f"valid until t={cert.body['valid_before']:.0f}"
        )
        steps.append("client rewrote ssh config with ProxyJump aliases:\n"
                     + client.rendered_config())

        alias = sorted(client.ssh_config)[0]
        session = client.ssh(alias)
        if not session.ok:
            return StoryResult("story4", False, steps + [f"ssh failed: {session.body}"])
        steps.append(f"ssh {alias}: connected via transparent jump host as "
                     f"{session.body['principal']} "
                     f"(session {session.body['session_id']})")
        return StoryResult(
            "story4", True, steps,
            data={"alias": alias, "session_id": session.body["session_id"],
                  "principal": session.body["principal"]},
            elapsed=dri.clock.now() - t0,
        )

    # ==================================================================
    # user story 5 — privileged administrator operation
    # ==================================================================
    def story5_privileged_operation(
        self, admin_name: str = "ops1", *, operation: str = "status",
        target: str = "",
    ) -> StoryResult:
        dri = self.dri
        t0 = dri.clock.now()
        steps: List[str] = []
        admin = self.personas.get(admin_name) or self.create_admin(
            admin_name, Role.ADMIN_INFRA
        )
        login = self.login(admin)
        if not login.ok:
            return StoryResult("story5", False, [f"admin login failed: {login.body}"])
        steps.append("layer 1: admin IdP authentication (password + hardware key)")

        tailnet_token = self.mint(admin, "tailnet", Role.ADMIN_INFRA.value)
        if not tailnet_token.ok:
            return StoryResult("story5", False, steps + [f"tailnet token denied: {tailnet_token.body}"])
        enrol, _ = admin.agent.post(
            make_url("tailnet", "/enrol"),
            {"hostname": admin.agent.name},
            headers={"Authorization": f"Bearer {tailnet_token.body['token']}"},
        )
        if not enrol.ok:
            return StoryResult("story5", False, steps + [f"enrolment failed: {enrol.body}"])
        node_id = str(enrol.body["node_id"])
        steps.append(f"layer 2: device enrolled in the admin tailnet ({node_id})")

        mgmt_token = self.mint(admin, "mgmt-node", Role.ADMIN_INFRA.value)
        if not mgmt_token.ok:
            return StoryResult("story5", False, steps + [f"mgmt token denied: {mgmt_token.body}"])
        steps.append("layer 3: per-service RBAC token for the management node")

        relay, _ = admin.agent.post(
            make_url("tailnet", "/relay"),
            {"node_id": node_id, "target": "mgmt-node", "port": 443,
             "request": {
                 "method": "POST", "path": "/operate",
                 "headers": {"Authorization": f"Bearer {mgmt_token.body['token']}"},
                 "body": {"operation": operation, "target": target},
             }},
        )
        if not relay.ok:
            return StoryResult("story5", False, steps + [f"operation failed: {relay.body}"])
        steps.append(
            f"layer 4: management node validated token + tailnet origin and "
            f"executed {operation!r} ({relay.body['nodes_up']}/"
            f"{relay.body['nodes_total']} nodes up)"
        )
        return StoryResult(
            "story5", True, steps,
            data={"node_id": node_id, "operation": operation,
                  "result": dict(relay.body)},
            elapsed=dri.clock.now() - t0,
        )

    # ==================================================================
    # user story 6 — Jupyter notebook via Zenith
    # ==================================================================
    def story6_jupyter(self, researcher_name: str) -> StoryResult:
        dri = self.dri
        t0 = dri.clock.now()
        steps: List[str] = []
        persona = self.personas[researcher_name]
        url = make_url("edge", "/zenith/app", service="jupyter", path="/")

        # the whole notebook flow — broker login, portal check, tunnel
        # dispatch — runs under one root span, so a slow login has one
        # trace id to pull its critical path by
        with persona.agent.trace(f"story6 {researcher_name}") as ctx:
            trace_id = ctx.trace_id if ctx is not None else None
            resp, final = persona.agent.get(url)
            if resp.status == 401 and resp.body.get("login_required"):
                # the broker needs an authenticated session first
                login = self.login(persona)
                if not login.ok:
                    return StoryResult(
                        "story6", False, [f"login failed: {login.body}"])
                steps.append("identity broker login flow completed")
                resp, final = persona.agent.get(url)
            if not resp.ok:
                return StoryResult(
                    "story6", False, steps + [f"jupyter denied: {resp.body}"])
            steps.append(
                "portal asserted access; time-limited RBAC token minted and "
                "passed as an HTTP header through the Zenith reverse tunnel")
            steps.append(
                f"Jupyter authenticator validated the token against the "
                f"broker's OIDC endpoint; session {resp.body['session_id']} "
                f"spawned on {resp.body['node']}"
            )
            data = dict(resp.body)
            data["trace_id"] = trace_id
            return StoryResult(
                "story6", True, steps,
                data=data, elapsed=dri.clock.now() - t0,
            )

    # ==================================================================
    # §IV.B — the RSECon24 workshop at scale
    # ==================================================================
    def rsecon_workshop(self, n_trainees: int = 45,
                        *, project_name: str = "rsecon24") -> StoryResult:
        """Onboard ``n_trainees`` and have all of them log in and open
        notebooks; success means every notebook session is live at once."""
        dri = self.dri
        t0 = dri.clock.now()
        result = self.story1_pi_onboarding(
            "trainer", project_name=project_name, gpu_hours=100_000.0
        )
        if not result.ok:
            return StoryResult("rsecon", False, result.steps)
        project_id = str(result.data["project_id"])
        latencies: List[float] = []
        trace_ids: List[Optional[str]] = []  # parallel to latencies
        failures: List[str] = []
        for i in range(n_trainees):
            name = f"trainee{i:02d}"
            onboard = self.story3_researcher_setup(project_id, "trainer", name)
            if not onboard.ok:
                failures.append(f"{name}: onboarding — {onboard.steps[-1]}")
                continue
            start = dri.clock.now()
            notebook = self.story6_jupyter(name)
            if not notebook.ok:
                failures.append(f"{name}: notebook — {notebook.steps[-1]}")
                continue
            latencies.append(dri.clock.now() - start)
            trace_ids.append(notebook.data.get("trace_id"))
        live = len(dri.jupyter.sessions())
        ok = not failures and live >= n_trainees
        return StoryResult(
            "rsecon", ok,
            steps=[f"{n_trainees - len(failures)}/{n_trainees} trainees running "
                   f"notebooks simultaneously ({live} live sessions)"]
            + failures[:5],
            data={"n": n_trainees, "live_sessions": live,
                  "latencies": latencies, "trace_ids": trace_ids,
                  "failures": len(failures),
                  "project_id": project_id},
            elapsed=dri.clock.now() - t0,
        )
