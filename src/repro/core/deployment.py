"""The full Fig. 1 deployment: every domain, zone, service and flow.

:func:`build_isambard` assembles the complete simulated Isambard DRI:

* **EXTERNAL** — institutional IdPs (eduGAIN), the MyAccessID proxy,
  user devices, and the Cloudflare-style edge;
* **FDS** (public cloud, Access zone) — identity broker, user/project
  portal, identity-of-last-resort IdP, admin IdP, SSH CA, Zenith server;
* **SWS** (NCC data centre) — HA bastion set (port 22 only), log
  shipper, tailnet coordinator;
* **MDC** — login-node sshd, Jupyter authenticator/spawner + Zenith
  client (HPC zone), management node (Management zone), compute pool,
  parallel filesystem (Data Storage zone);
* **SEC** (separate cloud account, Security zone) — the SOC, fed by the
  log forwarders, driving the externally managed kill switch.

The firewall opens exactly the flows the paper draws; everything else is
default-deny.  All cross-boundary traffic must be encrypted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.audit import AuditLog, CombinedAuditView
from repro.authz import (
    AuthzConfig,
    AuthzGuard,
    AuthzRuntime,
    ContinuousAuthorizer,
    IdentityGraph,
    PolicyDecisionPoint,
    RevocationPipeline,
    SessionRegistry,
)
from repro.broker import IdentityBroker, RbacTokenValidator, Role
from repro.clock import SimClock
from repro.errors import (
    ClaimMissing,
    ConfigurationError,
    IssuerMismatch,
    SignatureInvalid,
    TokenExpired,
)
from repro.cluster import (
    JupyterService,
    ManagementNode,
    NodePool,
    ParallelFilesystem,
    SlurmScheduler,
)
from repro.federation import (
    AssurancePolicy,
    CloudAdminIdP,
    EduGain,
    EntityCategory,
    InstitutionalIdP,
    LastResortIdP,
    LevelOfAssurance,
    MyAccessID,
)
from repro.federation.directory import (
    DirectoryConfig,
    FederationDirectory,
    MetadataIngestor,
    ShardedAccountRegistry,
    ShardedMetadataStore,
)
from repro.ids import IdFactory
from repro.net import Firewall, Network, OperatingDomain, Service, Zone
from repro.oidc import make_url
from repro.policy import PolicyEngine, standard_zero_trust_rules
from repro.portal import UserPortal
from repro.region import (
    DOWN,
    GeoRouter,
    Region,
    RegionBusAdapter,
    RegionConfig,
    RegionDirectory,
    ReplicatedInvalidationBus,
)
from repro.resilience import (
    AdmissionController,
    DurabilityStore,
    FailoverController,
    FaultInjector,
    OverloadConfig,
    ResilienceRuntime,
    RetryPolicy,
    TailConfig,
)
from repro.scale import (
    Autoscaler,
    ConsistentHashPolicy,
    InvalidationBus,
    LeastOutstandingPolicy,
    LoadBalancer,
    ReplicaPool,
    RoundRobinPolicy,
    ScaleConfig,
    TtlCache,
)
from repro.siem import (
    Alert,
    CacheStalenessRule,
    KillSwitchController,
    LogForwarder,
    SecurityOperationsCentre,
    TraceIntegrityRule,
    UnexplainedDecisionRule,
)
from repro.sshca import BastionSet, LoginNodeSshd, SshCertificateAuthority
from repro.telemetry import PipelineConfig, Telemetry
from repro.tunnels import CloudflareEdge, TailnetCoordinator, ZenithClient, ZenithServer

__all__ = ["IsambardDeployment", "build_isambard", "DEFAULT_IDPS"]

# (endpoint, entity host, federation, display name, LoA, categories)
DEFAULT_IDPS = [
    ("idp-bristol", "idp.bristol.ac.uk", "UKAMF", "University of Bristol",
     LevelOfAssurance.CAPPUCCINO, (EntityCategory.RESEARCH_AND_SCHOLARSHIP,)),
    ("idp-tartu", "idp.ut.ee", "TAAT", "University of Tartu",
     LevelOfAssurance.CAPPUCCINO, (EntityCategory.RESEARCH_AND_SCHOLARSHIP,
                                   EntityCategory.SIRTFI)),
    ("idp-zurich", "idp.ethz.ch", "SWITCHaai", "ETH Zurich",
     LevelOfAssurance.ESPRESSO, (EntityCategory.RESEARCH_AND_SCHOLARSHIP,)),
    ("idp-webshop", "idp.webshop.example", "SomeFed", "Webshop Logins Inc",
     LevelOfAssurance.LOW, ()),  # filtered out by the assurance policy
]


@dataclass
class IsambardDeployment:
    """Handle to the whole running system.  Built by :func:`build_isambard`."""

    clock: SimClock
    ids: IdFactory
    network: Network
    logs: Dict[str, AuditLog]
    audit: CombinedAuditView
    # federation
    edugain: EduGain
    idps: Dict[str, InstitutionalIdP]
    myaccessid: MyAccessID
    lastresort: LastResortIdP
    admin_idp: CloudAdminIdP
    # FDS
    broker: IdentityBroker
    portal: UserPortal
    ssh_ca: SshCertificateAuthority
    zenith: ZenithServer
    edge: CloudflareEdge
    # SWS
    bastion: BastionSet
    tailnet: TailnetCoordinator
    # MDC — Isambard-AI phase 1 (Grace-Hopper)
    pool: NodePool
    login_sshd: LoginNodeSshd
    jupyter: JupyterService
    zenith_client: ZenithClient
    mgmt_node: ManagementNode
    slurm: SlurmScheduler
    filesystem: ParallelFilesystem
    # SEC
    soc: SecurityOperationsCentre
    killswitch: KillSwitchController
    forwarders: List[LogForwarder]
    # cross-cutting
    policy_engine: PolicyEngine
    workflows: "object" = None  # set post-construction (core.workflows)
    # MDC — Isambard 3 (Grace-Grace CPU cluster); None unless built
    pool_i3: Optional[NodePool] = None
    login_sshd_i3: Optional[LoginNodeSshd] = None
    mgmt_node_i3: Optional[ManagementNode] = None
    slurm_i3: Optional[SlurmScheduler] = None
    # environmental telemetry (created idle; call .start() to arm sampling)
    dcim: Optional["object"] = None
    # SPIRE-style workload identity authority for the trust domain
    spire: Optional["object"] = None
    # chaos harness (always attached; inert until faults are scheduled)
    faults: Optional[FaultInjector] = None
    # retry/breaker runtime; None when the deployment was built fail-fast
    resilience: Optional[ResilienceRuntime] = None
    # overload-protection sizing; None when admission control is off
    overload: Optional[OverloadConfig] = None
    # crash-fault tolerance: the WAL store; None when durability is off
    durability: Optional[DurabilityStore] = None
    # active-standby supervision; None unless built with failover=True
    failover: Optional[FailoverController] = None
    # tracing + metrics + SLO runtime; None when built telemetry=False
    telemetry: Optional[Telemetry] = None
    # bounded-retention telemetry pipeline; None when pipeline off
    pipeline_config: Optional[PipelineConfig] = None
    # component name -> (crash_fn, restart_fn); populated by the builder
    crash_targets: Dict[str, tuple] = field(default_factory=dict)
    # validator factory honouring failover re-pointing (set by the builder)
    validator_factory: Optional[object] = None
    # horizontal scale-out (repro.scale); all None/empty unless scale on
    scale: Optional[ScaleConfig] = None
    broker_pool: Optional[ReplicaPool] = None
    broker_lb: Optional[LoadBalancer] = None
    invalidation_bus: Optional[InvalidationBus] = None
    caches: Dict[str, TtlCache] = field(default_factory=dict)
    autoscaler: Optional[Autoscaler] = None
    # multi-region tier (repro.region); all None/empty unless regions on
    region_config: Optional[RegionConfig] = None
    region_directory: Optional[RegionDirectory] = None
    geo_router: Optional[GeoRouter] = None
    region_bus: Optional[ReplicatedInvalidationBus] = None
    region_autoscalers: List[Autoscaler] = field(default_factory=list)
    # tail-tolerance layer (repro.resilience.tail); None unless tail on
    tail: Optional[TailConfig] = None
    # continuous authorization (repro.authz); None unless authz on
    authz: Optional[AuthzRuntime] = None
    # federation directory (repro.federation.directory); None unless on
    directory: Optional[FederationDirectory] = None

    # ------------------------------------------------------------------
    def validator_for(self, audience: str) -> RbacTokenValidator:
        """Resource-side RBAC validator against the broker's keys."""
        if self.validator_factory is not None:
            return self.validator_factory(audience)
        return RbacTokenValidator(
            self.clock, self.broker.issuer, audience,
            self.broker.jwks, self.broker.tokens.is_revoked,
        )

    def crash(self, name: str) -> None:
        """Kill a component in place: its endpoint goes down and its
        in-memory state is wiped — exactly what a pod OOM-kill does.
        Targets: ``broker``, ``portal``, ``ssh-ca``, ``idp-lastresort``,
        ``audit-<domain>`` log stores and ``fw-*`` forwarders."""
        if name not in self.crash_targets:
            raise ConfigurationError(f"no crash hooks registered for {name!r}")
        self.crash_targets[name][0]()

    def restart(self, name: str):
        """Restart a crashed component.  With durability on it replays
        snapshot + journal (returning the RecoveryReport where there is
        one); journaling off restarts cold and empty.  If failover
        already promoted the standby, the ex-primary instead rejoins as
        the new standby."""
        if self.failover is not None:
            # scale/region deployments supervise the state backend under
            # its "<name>-origin" endpoint; restart of the public name
            # must still find the pair or the ex-primary never rejoins
            for pair_name in (name, f"{name}-origin"):
                pair = self.failover.pairs.get(pair_name)
                if pair is not None and pair.promoted:
                    return self.failover.rejoin(pair_name, pair.primary)
        if name not in self.crash_targets:
            raise ConfigurationError(f"no crash hooks registered for {name!r}")
        return self.crash_targets[name][1]()

    def refresh_tunnels(self) -> None:
        """Heartbeat the Zenith tunnel registrations (the deployment's
        periodic job; call after long simulated-time jumps or after an
        outage dropped the tunnel — re-enrollment mints a fresh token)."""
        if self.zenith_client.heartbeat() is None:
            # first registration: the client has nothing to re-enrol yet
            token, _ = self.broker.tokens.mint(
                "mdc-zenith-client", "zenith", Role.SERVICE, ttl=300
            )
            self.zenith_client.register_with("zenith", "jupyter", token)

    def ship_logs(self) -> None:
        """Force-flush every forwarder (benches call this before reading
        SOC state instead of waiting for the timers)."""
        for fw in self.forwarders:
            fw.flush()

    def inventory_summary(self) -> Dict[str, int]:
        return {
            "endpoints": len(self.network.endpoints()),
            "firewall_rules": len(self.network.firewall.rules()),
            "assets": len(self.soc.inventory.assets()),
            "idps_in_edugain": len(self.edugain),
        }


def _open_fig1_flows(firewall: Firewall) -> None:
    """Exactly the inter-domain flows Fig. 1 draws; default-deny tail."""
    E, M, S, F, C = (OperatingDomain.EXTERNAL, OperatingDomain.MDC,
                     OperatingDomain.SWS, OperatingDomain.FDS,
                     OperatingDomain.SEC)
    # users and IdPs on the internet talk to each other (browser <-> IdP)
    firewall.allow("internet-https", src_domain=E, dst_domain=E, port=443)
    # users reach the Access zone (via the Cloudflare-protected endpoints)
    firewall.allow("internet-to-access-zone", src_domain=E, dst_domain=F,
                   dst_zone=Zone.ACCESS, port=443)
    # the broker dials out to external IdPs (MyAccessID token endpoint)
    firewall.allow("fds-to-external-idps", src_domain=F, dst_domain=E, port=443)
    # port 22 is the ONLY opening from the internet into SWS
    firewall.allow("internet-ssh-to-bastion", src_domain=E, dst_domain=S,
                   dst_zone=Zone.ACCESS, port=22)
    # bastion jumps into the MDC login plane
    firewall.allow("bastion-to-login-nodes", src_domain=S, src_zone=Zone.ACCESS,
                   dst_domain=M, dst_zone=Zone.HPC, port=22)
    # MDC services dial OUT to FDS (zenith reverse tunnel, introspection)
    firewall.allow("mdc-outbound-to-fds", src_domain=M, src_zone=Zone.HPC,
                   dst_domain=F, dst_zone=Zone.ACCESS, port=443)
    # admin devices reach the tailnet coordinator in SWS
    firewall.allow("internet-to-tailnet", src_domain=E, dst_domain=S,
                   dst_zone=Zone.MANAGEMENT, port=443)
    # the tailnet relay reaches MDC management plane
    firewall.allow("tailnet-to-mdc-mgmt", src_domain=S, src_zone=Zone.MANAGEMENT,
                   dst_domain=M, dst_zone=Zone.MANAGEMENT, port=443)
    # log shipping into the Security zone
    firewall.allow("sws-logs-to-sec", src_domain=S, dst_domain=C,
                   dst_zone=Zone.SECURITY, port=443)
    firewall.allow("fds-logs-to-sec", src_domain=F, dst_domain=C,
                   dst_zone=Zone.SECURITY, port=443)
    # security administrators reach the SOC only through the tailnet
    # relay ("access only via ... time-limited security roles", §III)
    firewall.allow("tailnet-to-soc", src_domain=S, src_zone=Zone.MANAGEMENT,
                   dst_domain=C, dst_zone=Zone.SECURITY, port=443)
    # nothing else: no internet->MDC, no FDS->MDC, no anything->SEC besides
    # logs, no MDC->SEC (MDC logs route via SWS), no SEC-> anywhere.


def build_isambard(
    seed: int = 42,
    *,
    segmented: bool = True,
    rbac_default_ttl: float = 900.0,
    rbac_max_ttl: float = 3600.0,
    ssh_cert_ttl: float = 4 * 3600.0,
    bastion_vms: int = 2,
    ai_nodes: int = 168,
    with_isambard3: bool = True,
    hpc_nodes: int = 368,
    forward_interval: float = 5.0,
    auto_contain: bool = True,
    idp_specs=DEFAULT_IDPS,
    resilience: Union[bool, RetryPolicy] = False,
    overload: Union[bool, OverloadConfig] = False,
    staleness_window: float = 60.0,
    durability: bool = False,
    failover: bool = False,
    telemetry: bool = True,
    scale: Union[bool, ScaleConfig] = False,
    regions: Union[bool, RegionConfig] = False,
    tail: Union[bool, TailConfig] = False,
    authz: Union[bool, AuthzConfig] = False,
    pipeline: Union[bool, PipelineConfig] = False,
    directory: Union[bool, DirectoryConfig] = False,
) -> IsambardDeployment:
    """Construct the full simulated Isambard DRI.

    Parameters mirror the ablation axes of the benchmarks: turn
    ``segmented`` off for the flat-network baseline, shrink
    ``rbac_default_ttl`` for the token-lifetime sweep, vary
    ``bastion_vms`` for the HA study, and ``forward_interval`` for
    detection-latency studies.

    ``resilience`` turns the retry/circuit-breaker layer on for every
    control-plane client (pass a :class:`~repro.resilience.RetryPolicy`
    to override the default policy); the default ``False`` keeps the
    historical fail-fast behaviour.  A :class:`FaultInjector` is always
    attached as ``dri.faults`` — it is inert until the chaos ablation
    schedules faults on it, and it draws from its own seeded RNG so
    arming it never perturbs the identity/secret streams.
    ``staleness_window`` bounds Jupyter's degraded-mode acceptance of
    cached introspection verdicts while the broker is unreachable.

    ``overload`` turns on the overload-protection layer (PR 2): token-
    bucket admission controllers with priority shedding on the broker,
    Jupyter, the SSH CA and the edge, plus AIMD pacing on every client
    kit.  Pass an :class:`~repro.resilience.OverloadConfig` to resize
    it.  Enabling overload implies a resilience runtime (the clients
    must honour ``retry_after`` for admission control to work as a
    backpressure signal rather than a hard failure).

    ``durability`` turns on crash-fault tolerance (PR 3): the stateful
    control-plane services (broker, last-resort IdP, SSH CA, portal),
    the per-domain audit log stores and the SIEM forwarders commit every
    mutation to write-ahead journals in a shared
    :class:`~repro.resilience.DurabilityStore`; ``dri.crash(name)`` /
    ``dri.restart(name)`` then model pod kills with lossless recovery.
    Signing keys stay in the store's KMS-modelled vault, never in the
    journal.  ``failover=True`` (implies durability) additionally parks
    warm standbys for the broker and the SSH CA under a health-checked
    :class:`~repro.resilience.FailoverController`; promotion replays the
    journal, acquires a fresh fencing epoch (deposed primaries can no
    longer commit) and takes over the primary's endpoint name.

    ``telemetry`` (default on) attaches a :class:`~repro.telemetry.Telemetry`
    runtime: distributed tracing over every hop, RED + domain metrics,
    and burn-rate SLO monitors bridged into the SOC.  It is pure
    observation — it never advances the clock or touches the seeded
    id/secret streams — so disabling it changes no simulated number.

    ``scale`` turns on the horizontal scale-out subsystem (PR 5): the
    broker runs as a :class:`~repro.scale.ReplicaPool` of stateless
    workers behind a deterministic :class:`~repro.scale.LoadBalancer`
    that takes over the public ``broker`` endpoint name (the origin
    moves to ``broker-origin``), and the hot validation paths — RBAC
    signature checks, RP JWKS fetches, Jupyter introspection verdicts
    and SSH certificate parsing — share TTL caches with single-flight
    coalescing, all subscribed to one :class:`~repro.scale.InvalidationBus`
    so token revocations and JWKS rotations evict synchronously, before
    the revoking call returns.  Pass a :class:`~repro.scale.ScaleConfig`
    to size the pool/TTLs or enable the metric-driven autoscaler.

    ``regions`` turns on the multi-region active-active tier (PR 6,
    implies scale + durability): each named region runs its own replica
    pool, journal and invalidation-bus shard behind a latency-aware
    :class:`~repro.region.GeoRouter` on the public ``broker`` endpoint.
    Revocations stay synchronous *in-region* and replicate to peers
    asynchronously under the config's advertised ``staleness_bound``;
    region loss and inter-region partitions are injectable through the
    chaos harness (``faults.region_down`` / ``faults.region_partition``)
    with fencing epochs arbitrating issuance after recovery.  Pass a
    :class:`~repro.region.RegionConfig` to name the regions and set the
    contract.

    ``tail`` turns on the tail-tolerance layer (PR 7, implies
    resilience): adaptive per-attempt deadlines sized from observed
    latency quantiles, hedged requests for read-shaped traffic,
    latency-outlier ejection in every balancer pool (and gray-region
    detours in the geo-router when ``regions`` is also on), and a
    per-(client×destination) retry budget that fails storms fast and
    feeds the SOC's ``retry-storm`` rule.  Pass a
    :class:`~repro.resilience.TailConfig` to resize the knobs or ablate
    individual defences.

    ``authz`` turns on continuous authorization (PR 8): every principal
    and workload gets a canonical SPIFFE-style identity, every live
    grant (token, SSH cert/session, Zenith tunnel/web session, Jupyter
    server, Slurm job) is tracked in a
    :class:`~repro.authz.SessionRegistry`, and one journaled
    :class:`~repro.authz.RevocationPipeline` fans every revocation —
    portal off-boarding, SOC kill switch, policy re-evaluation — across
    all four enforcement surfaces with per-surface retry and bounded
    time-to-revoke.  A :class:`~repro.authz.ContinuousAuthorizer`
    re-checks live sessions against the policy engine on a timer and on
    assurance/threat-score changes; every admission path fails closed
    when the PDP has been unreachable past the configured staleness
    bound.  Pass an :class:`~repro.authz.AuthzConfig` to tune the
    bounds.  With ``durability`` also on, the pipeline's outbox is
    journaled and ``dri.crash("authz")`` / ``dri.restart("authz")``
    model a crash mid-revocation that resumes on recovery.

    ``pipeline`` turns on the bounded telemetry pipeline (PR 9): the
    span store becomes a :class:`~repro.telemetry.BoundedSpanStore`
    with tail-based retention (error/shed/expired and pinned
    revocation traces kept at 100%, slowest-k per window, hash-sampled
    healthy traffic, RED rollups of the rest), every pre-registered
    metric family gets a cardinality budget that folds runaway label
    sets into ``__overflow__``, and the provenance ledger
    (``dri.telemetry.provenance`` — one :class:`~repro.telemetry.
    DecisionRecord` per admission decision on every enforcement
    surface, queryable via ``explain``/``explain_trace``) compacts to
    its own budget without ever losing the record behind a live grant
    or a refusal.  The SOC serves the ledger and pipeline stats at
    ``/scoreboard`` and ``/explain``.  Pass a
    :class:`~repro.telemetry.PipelineConfig` to size the budgets.

    ``directory`` turns on the federation directory (PR 11): the
    MyAccessID account registry and the eduGAIN metadata aggregate move
    onto consistent-hash sharded, per-shard-journaled tiers
    (:class:`~repro.federation.directory.ShardedAccountRegistry` /
    :class:`~repro.federation.directory.ShardedMetadataStore`) sized for
    1M+ users and 10k IdPs, with a batched
    :class:`~repro.federation.directory.MetadataIngestor` consuming
    signed registrar delta feeds and validity windows that fail stale-
    metadata logins closed.  Shards rebalance with deterministic key
    migration on ``add_shard``/``remove_shard``; chaos gains
    ``faults.shard_down`` and ``faults.metadata_feed_stale``, and with
    ``durability`` on each shard journals independently
    (``dri.crash("dir-acct-03")`` et al.).  Pass a
    :class:`~repro.federation.directory.DirectoryConfig` to size the
    tiers.  The runtime handle is ``dri.directory``.
    """
    region_cfg: Optional[RegionConfig] = None
    if regions:
        region_cfg = (regions if isinstance(regions, RegionConfig)
                      else RegionConfig())
        durability = True
        if not scale:
            scale = True
    if failover:
        durability = True
    tail_cfg: Optional[TailConfig] = None
    if tail:
        tail_cfg = tail if isinstance(tail, TailConfig) else TailConfig()
        if not resilience:
            # the tail defences live inside the retry layer; without a
            # runtime there is nothing to attach them to
            resilience = True
    authz_cfg: Optional[AuthzConfig] = None
    if authz:
        authz_cfg = authz if isinstance(authz, AuthzConfig) else AuthzConfig()
    directory_cfg: Optional[DirectoryConfig] = None
    if directory:
        directory_cfg = (directory if isinstance(directory, DirectoryConfig)
                         else DirectoryConfig())
    # assembled late (after durability/failover); declared here so the
    # portal's revocation closure can route through it once it exists
    authz_rt: Optional[AuthzRuntime] = None
    clock = SimClock(start=0.0)
    ids = IdFactory(seed=seed)
    pipeline_cfg: Optional[PipelineConfig] = None
    if pipeline:
        pipeline_cfg = (pipeline if isinstance(pipeline, PipelineConfig)
                        else PipelineConfig())
    tele: Optional[Telemetry] = (
        Telemetry(clock, pipeline=pipeline_cfg) if telemetry else None)
    logs = {
        domain: AuditLog(domain)
        for domain in ("external", "fds", "sws", "mdc", "sec", "network")
    }
    audit = CombinedAuditView(logs)
    if tele is not None:
        for log in logs.values():
            tele.watch_audit(log)

    overload_cfg: Optional[OverloadConfig] = None
    if overload:
        overload_cfg = (overload if isinstance(overload, OverloadConfig)
                        else OverloadConfig())

    scale_cfg: Optional[ScaleConfig] = None
    if scale:
        scale_cfg = scale if isinstance(scale, ScaleConfig) else ScaleConfig()

    faults = FaultInjector(clock, random.Random(seed * 7919 + 13))
    runtime: Optional[ResilienceRuntime] = None
    if resilience or overload_cfg is not None:
        runtime = ResilienceRuntime(
            clock, random.Random(seed * 104729 + 7),
            policy=resilience if isinstance(resilience, RetryPolicy) else None,
            overload=overload_cfg,
            tail=tail_cfg,
        )

    if runtime is not None and tele is not None:
        runtime.breaker_listener = tele.on_breaker_transition
    if runtime is not None and runtime.tail_controller is not None:
        # budget refusals audit into FDS (where the SOC's forwarders
        # already collect) and count into telemetry
        runtime.tail_controller.audit = logs["fds"]
        runtime.tail_controller.telemetry = tele

    firewall = Firewall(segmented=segmented)
    _open_fig1_flows(firewall)
    network = Network(clock, firewall=firewall, audit=logs["network"],
                      faults=faults)
    network.telemetry = tele

    # ------------------------------------------------------------- federation
    directory_rt: Optional[FederationDirectory] = None
    if directory_cfg is not None:
        # the sharded metadata store is EduGain-shaped, so everything
        # downstream (MyAccessID validation, discovery, benchmarks)
        # consumes it unchanged.  Bilateral trust anchors registered
        # here get no validity window; feed-ingested entries always do.
        edugain = ShardedMetadataStore(
            clock, shards=directory_cfg.metadata_shards,
            vnodes=directory_cfg.vnodes,
            probe_cost=directory_cfg.probe_cost,
            migration_batch=directory_cfg.migration_batch,
            telemetry=tele, audit=logs["external"],
        )
    else:
        edugain = EduGain()
    idps: Dict[str, InstitutionalIdP] = {}
    for endpoint, host, federation, display, loa, categories in idp_specs:
        idp = InstitutionalIdP(
            endpoint, f"https://{host}", clock, ids,
            loa=loa, categories=categories, audit=logs["external"],
        )
        edugain.register_idp(idp, federation=federation, display_name=display)
        network.attach(idp, OperatingDomain.EXTERNAL, Zone.INTERNET)
        idps[endpoint] = idp

    dir_accounts: Optional[ShardedAccountRegistry] = None
    if directory_cfg is not None:
        dir_accounts = ShardedAccountRegistry(
            clock, ids, shards=directory_cfg.account_shards,
            vnodes=directory_cfg.vnodes,
            probe_cost=directory_cfg.probe_cost,
            migration_batch=directory_cfg.migration_batch,
            telemetry=tele, audit=logs["external"],
        )
    myaccessid = MyAccessID(
        "myaccessid", clock, ids, edugain,
        policy=AssurancePolicy(), audit=logs["external"],
        registry=dir_accounts,
    )
    network.attach(myaccessid, OperatingDomain.EXTERNAL, Zone.INTERNET)

    if directory_cfg is not None:
        ingestor = MetadataIngestor(
            clock, edugain, audit=logs["external"], telemetry=tele)
        directory_rt = FederationDirectory(
            config=directory_cfg, accounts=dir_accounts,
            metadata=edugain, ingestor=ingestor,
        )

        def _dir_tier(tier: str):
            if tier == "accounts":
                return directory_rt.accounts
            if tier == "metadata":
                return directory_rt.metadata
            raise ConfigurationError(f"no directory tier {tier!r}")

        faults.register_shard_hooks(
            lambda tier, shard: _dir_tier(tier).shard_down(shard),
            lambda tier, shard: _dir_tier(tier).shard_up(shard),
        )
        faults.register_feed_hooks(
            lambda feed: directory_rt.ingestor.set_feed_down(feed, True),
            lambda feed: directory_rt.ingestor.set_feed_down(feed, False),
        )

    lastresort = LastResortIdP("idp-lastresort", clock, ids, audit=logs["fds"])
    admin_idp = CloudAdminIdP("idp-admin", clock, ids, audit=logs["fds"])
    network.attach(lastresort, OperatingDomain.FDS, Zone.ACCESS)
    network.attach(admin_idp, OperatingDomain.FDS, Zone.ACCESS)

    # ------------------------------------------------------------------ FDS
    broker = IdentityBroker(
        "broker", clock, ids, audit=logs["fds"],
        rbac_default_ttl=rbac_default_ttl, rbac_max_ttl=rbac_max_ttl,
    )
    broker.ssh_cert_ttl = ssh_cert_ttl
    network.attach(broker, OperatingDomain.FDS, Zone.ACCESS)
    callback = make_url("broker", "/login/callback")
    for upstream_id, label, provider, kind in [
        ("myaccessid", "University Login (MyAccessID)", myaccessid, "federated"),
        ("lastresort", "Isambard Account (Identity of Last Resort)",
         lastresort, "lastresort"),
        ("admin", "Isambard Team (Administrators)", admin_idp, "admin"),
    ]:
        cfg = provider.register_client(
            f"isambard-broker-{upstream_id}", [callback], confidential=True
        )
        broker.add_upstream(upstream_id, label, provider.name, cfg, kind=kind)

    # failover re-points this cell at the promoted standby, so every
    # validator built here keeps consulting the *active* broker
    active_broker: List[IdentityBroker] = [broker]

    # --- scale-out: invalidation bus + shared caches ---------------------
    # Built before the validators so every resource server shares them.
    # Publication is synchronous and in-order (inside the revoking call),
    # so a cached ALLOW can never outlive a revocation or a key rotation.
    bus: Optional[InvalidationBus] = None
    rbus: Optional[ReplicatedInvalidationBus] = None
    token_cache = jwks_cache = introspect_cache = cert_cache = None
    if scale_cfg is not None:
        if region_cfg is not None:
            # multi-region: one bus shard per region; local publishes stay
            # synchronous (preserving the in-region guarantee) and fan out
            # to peers after replication_delay.  The adapter routes each
            # publish to whichever region is serving the revoking request
            # (falling back to home), so the caches below — which live in
            # the home shard — keep their synchronous eviction for
            # home-region traffic.
            rbus = ReplicatedInvalidationBus(
                clock, region_cfg.names,
                replication_delay=region_cfg.replication_delay,
                telemetry=tele,
            )
            bus = rbus.local[region_cfg.home]
            publisher = RegionBusAdapter(rbus, region_cfg.home)
        else:
            bus = InvalidationBus(clock)
            publisher = bus
        broker.tokens.bus = publisher
        broker.invalidation_bus = publisher
        for provider in (myaccessid, lastresort, admin_idp, *idps.values()):
            provider.invalidation_bus = publisher
        if scale_cfg.caching:
            token_cache = TtlCache(
                "token-decisions", clock, ttl=scale_cfg.decision_ttl,
                negative_ttl=scale_cfg.negative_ttl,
                # only monotone verdicts are negative-cached: a forged or
                # expired token stays forged/expired; a not-yet-valid one
                # does not, so TokenNotYetValid is deliberately absent
                negative_errors=(SignatureInvalid, IssuerMismatch,
                                 ClaimMissing, TokenExpired),
                telemetry=tele,
            )
            token_cache.bind(bus, "token.revoked", by_tag=True)
            jwks_cache = TtlCache("jwks", clock, ttl=scale_cfg.jwks_ttl,
                                  telemetry=tele)
            jwks_cache.bind(bus, "jwks.rotated", by_tag=False)
            introspect_cache = TtlCache(
                "introspection", clock, ttl=scale_cfg.introspection_ttl,
                telemetry=tele,
            )
            introspect_cache.bind(bus, "token.revoked", by_tag=True)
            cert_cache = TtlCache("ssh-certs", clock, ttl=scale_cfg.cert_ttl,
                                  telemetry=tele)
            # satellite fix: every RP's JWKS refresh rides the shared
            # single-flight cache — N concurrent verifications hitting a
            # key rotation produce exactly one upstream fetch
            for upstream in broker._upstreams.values():
                upstream.rp.jwks_cache = jwks_cache

    def _revocation(jti: str) -> bool:
        tokens = active_broker[0].tokens
        # durability mode trusts only journaled facts: unknown jtis (e.g.
        # minted by a fenced zombie primary) are rejected outright
        return tokens.is_invalid(jti) if durability else tokens.is_revoked(jti)

    def validator_for(audience: str) -> RbacTokenValidator:
        return RbacTokenValidator(
            clock, broker.issuer, audience, broker.jwks, _revocation,
            cache=token_cache,
        )

    # cluster objects exist before the portal's revocation hook references them
    pool = NodePool("gh", "grace-hopper", ai_nodes, gpus_per_node=4)
    login_sshd: LoginNodeSshd  # defined below; hook closes over names

    portal = UserPortal(
        "portal", clock, ids, validator_for("portal"), audit=logs["fds"],
        on_revoke=lambda uid, project, account: _revoke_everywhere(
            uid, project, account
        ),
    )
    network.attach(portal, OperatingDomain.FDS, Zone.ACCESS)

    ssh_ca = SshCertificateAuthority(
        "ssh-ca", clock, validator_for("ssh-ca"), audit=logs["fds"],
        cert_ttl=ssh_cert_ttl,
    )
    network.attach(ssh_ca, OperatingDomain.FDS, Zone.ACCESS)

    zenith = ZenithServer(
        "zenith", clock, ids, validator_for("zenith"), audit=logs["fds"],
        heartbeat_ttl=24 * 3600.0,
    )
    network.attach(zenith, OperatingDomain.FDS, Zone.ACCESS)
    zenith_cfg = broker.register_client(
        "zenith-auth", [make_url("zenith", "/callback")], confidential=True
    )
    zenith.configure_rp(zenith_cfg)
    if scale_cfg is not None and zenith._rp is not None:
        zenith._rp.jwks_cache = jwks_cache

    edge = CloudflareEdge("edge", clock, audit=logs["external"])
    network.attach(edge, OperatingDomain.EXTERNAL, Zone.INTERNET)
    edge.register_origin("zenith", zenith)
    edge.register_origin("broker", broker)
    edge.register_origin("portal", portal)

    # ------------------------------------------------------------------ SWS
    bastion = BastionSet("bastion", clock, audit=logs["sws"], vm_count=bastion_vms)
    network.attach(bastion, OperatingDomain.SWS, Zone.ACCESS)

    tailnet = TailnetCoordinator(
        "tailnet", clock, ids, validator_for("tailnet"), audit=logs["sws"]
    )
    network.attach(tailnet, OperatingDomain.SWS, Zone.MANAGEMENT)

    shipper = Service("log-shipper")
    network.attach(shipper, OperatingDomain.SWS, Zone.ACCESS)

    # dynamic policy (tenet 4): posture rules enforced at the management
    # plane on top of token validation
    policy_engine = PolicyEngine()
    if authz_cfg is not None:
        # the continuous-authorization assurance floor must precede the
        # pack's capability allow or it would never fire: a live session
        # whose identity's LoA stepped below the floor is denied on
        # re-evaluation and handed to the revocation pipeline
        policy_engine.deny(
            "assurance-below-floor",
            lambda c, floor=authz_cfg.min_loa: (
                bool(c.attrs.get("continuous")) and c.loa < floor),
            reason="identity assurance below the continuous-session floor",
        )
    policy_engine = standard_zero_trust_rules(policy_engine)

    # ------------------------------------------------------------------ MDC
    def account_exists(username: str) -> bool:
        return portal.unix_accounts.lookup(username) is not None

    login_sshd = LoginNodeSshd(
        "login-node", clock, ssh_ca.ca_public_key(), account_exists,
        audit=logs["mdc"],
    )
    login_sshd.install_host_certificate(ssh_ca.provision_host_certificate(
        "login-node", login_sshd.host_keypair.public_jwk()))
    network.attach(login_sshd, OperatingDomain.MDC, Zone.HPC)

    # the authenticator runs in the MDC: it cannot share the broker's
    # in-memory revocation set, so its *local* validation is JWKS-only
    # and revocation is caught by the introspection round-trip (§IV.A.6)
    jupyter_validator = RbacTokenValidator(
        clock, broker.issuer, "jupyter", broker.jwks, lambda jti: False,
        cache=token_cache,
    )
    jupyter = JupyterService(
        "jupyter", clock, ids, jupyter_validator, pool,
        audit=logs["mdc"], broker_endpoint="broker",
        staleness_window=staleness_window,
    )
    if scale_cfg is not None:
        # In region mode the MDC-side cache would break the staleness
        # contract: it is bound to the *home* bus shard, so a revocation
        # published from another region would only evict it after
        # replication — or never, across a partition.  Introspections
        # round-trip to the geo-router instead and the per-region caches
        # (TTL clamped to the bound) absorb the load.
        if region_cfg is None:
            jupyter.introspection_cache = introspect_cache
        login_sshd.cert_cache = cert_cache
    network.attach(jupyter, OperatingDomain.MDC, Zone.HPC)

    zenith_client = ZenithClient("zenith-client", "jupyter")
    network.attach(zenith_client, OperatingDomain.MDC, Zone.HPC)
    # re-enrollment after a drop mints a fresh service token each time
    zenith_client.token_source = lambda: active_broker[0].tokens.mint(
        "mdc-zenith-client", "zenith", Role.SERVICE, ttl=300
    )[0]

    mgmt_node = ManagementNode(
        "mgmt-node", clock, validator_for("mgmt-node"), pool,
        audit=logs["mdc"], policy=policy_engine,
    )
    network.attach(mgmt_node, OperatingDomain.MDC, Zone.MANAGEMENT)
    tailnet.expose_endpoint("mgmt-node", "mgmt")
    tailnet.acl.allow("admin-device", "mgmt", 443)
    # the security path: security-role devices reach the SOC, and only it
    tailnet.expose_endpoint("soc", "soc")
    tailnet.acl.allow("security-device", "soc", 443)

    slurm = SlurmScheduler(
        clock, ids, pool, portal.record_usage, audit=logs["mdc"]
    )

    def account_project(username: str):
        account = portal.unix_accounts.lookup(username)
        return account.project_id if account else None

    filesystem = ParallelFilesystem(account_project)

    # --- Isambard 3: the Grace-Grace national tier-2 HPC platform --------
    # Same IAM fabric (one CA, one broker, one portal) protecting a second
    # cluster in the same MDC compound — exactly the paper's deployment.
    pool_i3 = login_sshd_i3 = mgmt_node_i3 = slurm_i3 = None
    if with_isambard3:
        pool_i3 = NodePool("gg", "grace-grace", hpc_nodes, gpus_per_node=0)
        login_sshd_i3 = LoginNodeSshd(
            "login-node-i3", clock, ssh_ca.ca_public_key(), account_exists,
            audit=logs["mdc"],
        )
        login_sshd_i3.install_host_certificate(
            ssh_ca.provision_host_certificate(
                "login-node-i3", login_sshd_i3.host_keypair.public_jwk()))
        if scale_cfg is not None:
            login_sshd_i3.cert_cache = cert_cache
        network.attach(login_sshd_i3, OperatingDomain.MDC, Zone.HPC)
        mgmt_node_i3 = ManagementNode(
            "mgmt-node-i3", clock, validator_for("mgmt-node-i3"), pool_i3,
            audit=logs["mdc"], policy=policy_engine,
        )
        network.attach(mgmt_node_i3, OperatingDomain.MDC, Zone.MANAGEMENT)
        tailnet.expose_endpoint("mgmt-node-i3", "mgmt")
        slurm_i3 = SlurmScheduler(
            clock, ids, pool_i3, portal.record_usage, audit=logs["mdc"],
            charge_units_per_node=1,  # node-hours on the CPU machine
        )

    # environmental telemetry for the AI pod (idle until .start())
    from repro.cluster.dcim import DcimMonitor

    dcim = DcimMonitor(
        "dcim-ai", clock, pool, audit=logs["mdc"], rng=ids.rng(),
    )

    # ------------------------------------------------------------------ SEC
    killswitch = KillSwitchController(clock, audit=logs["sec"])
    soc = SecurityOperationsCentre(
        "soc", clock, validator_for("soc"), audit=logs["sec"],
        killswitch=killswitch, auto_contain=auto_contain,
    )
    network.attach(soc, OperatingDomain.SEC, Zone.SECURITY)

    # workload identity: attest the internal service workloads so
    # machine-to-machine calls can carry SVIDs alongside RBAC tokens
    from repro.federation.spiffe import TrustDomainAuthority

    spire = TrustDomainAuthority("isambard.example", clock)
    for path, endpoint_name in [
        ("fds/broker", "broker"), ("fds/portal", "portal"),
        ("fds/ssh-ca", "ssh-ca"), ("fds/zenith", "zenith"),
        ("sws/log-shipper", "log-shipper"), ("sws/bastion", "bastion"),
        ("mdc/zenith-client", "zenith-client"), ("mdc/jupyter", "jupyter"),
    ]:
        ep = network.endpoint(endpoint_name)
        spire.register_workload(
            path, f"endpoint:{ep.name}", f"domain:{ep.domain}",
            f"zone:{ep.zone}",
        )

    def _soc_sink(records):
        token, _ = active_broker[0].tokens.mint(
            "log-shipper", "soc", Role.SERVICE, ttl=120, audit_issue=False
        )
        from repro.net.http import HttpRequest

        shipper.call("soc", HttpRequest(
            "POST", "/ingest",
            headers={
                "Authorization": f"Bearer {token}",
                "X-Workload-SVID": spire.issue_svid("sws/log-shipper"),
            },
            body={"records": records},
        ))

    forwarders: List[LogForwarder] = []
    for domain in ("mdc", "sws", "fds", "external"):
        fw = LogForwarder(f"fw-{domain}", clock, _soc_sink,
                          interval=forward_interval)
        fw.watch(logs[domain])
        fw.start()
        forwarders.append(fw)
    # network-device logs: ship only denials/violations — the delivered-
    # message firehose stays local (and would otherwise echo the log
    # shipping itself back into the pipeline)
    fw_net = LogForwarder(
        "fw-network", clock, _soc_sink, interval=forward_interval,
        actions_filter=["firewall.", "transport.", "endpoint."],
    )
    fw_net.watch(logs["network"])
    fw_net.start()
    forwarders.append(fw_net)

    # the ingest pipeline authenticates twice: service RBAC token AND a
    # workload SVID from the attested log shipper
    soc.require_workload_identity(
        spire, "spiffe://isambard.example/sws/log-shipper"
    )

    # kill-switch levers: one principal, severed everywhere
    killswitch.register_user_action("bastion-flag", bastion.flag_principal)
    killswitch.register_user_action(
        "broker-revoke", lambda p: active_broker[0].revoke_user_access(p, None)
    )
    killswitch.register_user_action("ssh-sessions", login_sshd.close_sessions_for)
    killswitch.register_user_action("jupyter-sessions", jupyter.close_sessions_for)
    killswitch.register_user_action("slurm-jobs", slurm.cancel_account)
    if with_isambard3:
        killswitch.register_user_action(
            "ssh-sessions-i3", login_sshd_i3.close_sessions_for)
        killswitch.register_user_action("slurm-jobs-i3", slurm_i3.cancel_account)
    killswitch.register_stop_action(
        "bastion", bastion.kill_service, bastion.restore_service
    )
    killswitch.register_stop_action(
        "tailnet", tailnet.kill_tailnet, tailnet.restore_tailnet
    )
    killswitch.register_stop_action(
        "zenith", zenith.kill_all_tunnels, zenith.restore_all_tunnels
    )

    # inventory (SOC task 2)
    for vm in bastion.vms:
        soc.inventory.register(vm.vm_id, "bastion-vm", vm.image_version, "sws")
    for name, kind in [("broker", "k8s-service"), ("portal", "k8s-service"),
                       ("ssh-ca", "k8s-service"), ("zenith", "k8s-service"),
                       ("idp-admin", "managed-idp"),
                       ("idp-lastresort", "managed-idp")]:
        soc.inventory.register(name, kind, "1.0", "fds")
    soc.inventory.register("tailnet", "coordination-server", "1.0", "sws")

    # configuration assessment (SOC task 3)
    _register_config_checks(soc, network, bastion, admin_idp, broker, filesystem)

    # --- telemetry: SOC-side trace correlation + SLO pages ---------------
    if tele is not None:
        # an audit record whose trace id the span store never saw is a
        # forged/replayed log entry — runs inside the standard rule pack
        soc.rules.append(TraceIntegrityRule(tele.store))
        # decision provenance: the SOC reads the ledger for the
        # scoreboard/explain views and cross-checks every shipped
        # decision against it (a decision without provenance is the
        # ledger-side sibling of an unknown trace id)
        soc.attach_provenance(tele.provenance, tele.store)
        soc.rules.append(UnexplainedDecisionRule(tele.provenance))
        # decisions recorded before the authz layer attaches its richer
        # enricher still carry the policy pack version they ran under
        tele.provenance.enricher = (
            lambda subject: {"pack_version": policy_engine.pack_version})
        # availability SLOs over the hops the RSECon story stresses
        tele.slo("broker-availability", service="broker")
        tele.slo("jupyter-availability", service="jupyter")

        def _page_soc(alert) -> None:
            # actor is deliberately empty: an SLO page is not attributable
            # to a principal and must never trigger auto-containment
            soc.raise_alert(Alert(
                time=alert.time, rule=f"slo-burn-{alert.slo}",
                severity="high", actor="", summary=alert.summary(),
                evidence_count=alert.events_in_slow_window,
            ))

        tele.on_slo_alert(_page_soc)

    # --- resilience kits: per-client retry/backoff + circuit breakers ----
    if runtime is not None:
        for svc in (broker, portal, zenith, edge, jupyter, zenith_client,
                    shipper, bastion, tailnet, soc):
            svc.resilience = runtime.for_client(svc.name)

    # --- overload protection: admission controllers on the hot services --
    if overload_cfg is not None:
        broker.admission = AdmissionController(
            "broker", clock, overload_cfg.broker)
        jupyter.admission = AdmissionController(
            "jupyter", clock, overload_cfg.jupyter)
        ssh_ca.admission = AdmissionController(
            "ssh-ca", clock, overload_cfg.ssh_ca)
        edge.admission = AdmissionController(
            "edge", clock, overload_cfg.edge)

    # --- scale-out: broker replica pool behind the load balancer ---------
    broker_pool: Optional[ReplicaPool] = None
    broker_lb: Optional[LoadBalancer] = None
    autoscaler: Optional[Autoscaler] = None
    lb_policy_factory = None
    admission_factory = None
    if scale_cfg is not None:
        # each balancer needs its own (stateful) policy instance, so the
        # region tier can stamp one per region from the same config
        lb_policy_factory = {
            "round-robin": RoundRobinPolicy,
            "least-outstanding": LeastOutstandingPolicy,
            "consistent-hash": lambda: ConsistentHashPolicy(
                # session/tunnel affinity: pin on the credential, else
                # on the calling endpoint
                lambda req: (req.headers.get("Authorization")
                             or req.headers.get("Cookie")
                             or req.source)),
        }[scale_cfg.policy]
        if overload_cfg is not None:
            # capacity moves to the pods: each worker gets its own
            # broker-sized bucket, so pool capacity is N x the rate
            broker.admission = None
            admission_factory = (
                lambda worker_name: AdmissionController(
                    worker_name, clock, overload_cfg.broker))
        # the origin keeps its state and its outbound identity under
        # "broker-origin"; the workers and the LB (or the geo-router in
        # region mode) take over the public name, so every URL-based
        # caller is load-balanced untouched
        network.detach("broker")
        network.attach(broker, OperatingDomain.FDS, Zone.ACCESS,
                       name="broker-origin")
    if scale_cfg is not None and region_cfg is None:
        broker_pool = ReplicaPool(
            "broker", network, OperatingDomain.FDS, Zone.ACCESS, broker,
            min_replicas=scale_cfg.min_replicas,
            max_replicas=scale_cfg.max_replicas,
            admission_factory=admission_factory,
        )
        broker_pool.scale_to(scale_cfg.broker_replicas)
        broker_lb = LoadBalancer(
            "broker", clock, broker_pool, policy=lb_policy_factory(),
            audit=logs["fds"],
            breaker_listener=(tele.on_breaker_transition
                              if tele is not None else None),
            tail=tail_cfg, telemetry=tele,
        )
        network.attach(broker_lb, OperatingDomain.FDS, Zone.ACCESS,
                       name="broker")
        edge.register_origin("broker", broker_lb)
        if scale_cfg.autoscale and tele is not None:
            autoscaler = Autoscaler(
                clock, broker_pool, tele,
                interval=scale_cfg.autoscale_interval,
                watch_services=("broker",),
                audit=logs["fds"],
            )
            autoscaler.start()

    # --- the revocation fan-out the portal hook calls --------------------
    def _revoke_everywhere(uid: str, project: str, account: str) -> None:
        if authz_rt is not None:
            # continuous authorization routes the teardown through the
            # journaled pipeline: one intent, four surfaces, crash-safe
            authz_rt.pipeline.revoke(
                uid=uid, project=project, reason="portal-revocation",
                by="portal")
            return
        active_broker[0].revoke_user_access(uid, project)
        if account:
            login_sshd.close_sessions_for(account)
            slurm.cancel_account(account, by="portal-revocation")
            if with_isambard3:
                login_sshd_i3.close_sessions_for(account)
                slurm_i3.cancel_account(account, by="portal-revocation")
        jupyter.close_sessions_for(uid)

    # --- crash-fault tolerance: WAL journals, vault, warm standbys -------
    # journals attach *after* construction so every build-time registration
    # (clients, upstreams, host certificates) lands in the baseline snapshot
    active_ca: List[SshCertificateAuthority] = [ssh_ca]
    store: Optional[DurabilityStore] = None
    broker_standby: Optional[IdentityBroker] = None
    ca_standby: Optional[SshCertificateAuthority] = None
    if durability:
        store = DurabilityStore(clock)
        store.telemetry = tele
        for domain, log in logs.items():
            log.attach_journal(store.stream(f"audit-{domain}"))
        broker.attach_journal(store.stream("broker"))
        lastresort.attach_journal(store.stream("idp-lastresort"))
        ssh_ca.attach_journal(store.stream("ssh-ca"))
        portal.attach_journal(store.stream("portal"))
        if directory_rt is not None:
            # each directory shard journals independently — a single
            # shard crash replays only its own partition, and shards
            # added later (rebalancing) get streams via journal_factory
            for tier_obj in (directory_rt.accounts, directory_rt.metadata):
                for sname in sorted(tier_obj.shards):
                    tier_obj.shards[sname].attach_journal(
                        store.stream(f"dir-{sname}"))
                tier_obj.journal_factory = (
                    lambda n, _s=store: _s.stream(f"dir-{n}"))
        for fw in forwarders:
            fw.attach_journal(store.stream(fw.name))

        # sshds consult the CA's journaled issuance registry: a serial a
        # fenced ex-primary signed after deposition was never registered
        def _cert_registered(serial: int, key_id: str) -> bool:
            return active_ca[0].cert_registered(serial, key_id)

        login_sshd.cert_registry = _cert_registered
        if with_isambard3:
            login_sshd_i3.cert_registry = _cert_registered
    if failover:
        # warm standbys carry the same *service* name (they become that
        # service on promotion) parked under their own endpoint names;
        # adopt_journal keeps them fenced (epoch 0) until promoted
        broker_standby = IdentityBroker(
            "broker", clock, ids, audit=logs["fds"],
            rbac_default_ttl=rbac_default_ttl, rbac_max_ttl=rbac_max_ttl,
        )
        broker_standby.ssh_cert_ttl = ssh_cert_ttl
        for u in broker._upstreams.values():
            broker_standby.add_upstream(
                u.upstream_id, u.label, u.endpoint, u.rp.client, kind=u.kind)
        broker_standby.adopt_journal(store.stream("broker"))
        if scale_cfg is not None:
            # a promoted standby must keep publishing invalidations, or
            # the caches would go quietly stale after a failover
            broker_standby.tokens.bus = publisher
            broker_standby.invalidation_bus = publisher
        network.attach(broker_standby, OperatingDomain.FDS, Zone.ACCESS,
                       name="broker-standby")
        ca_standby = SshCertificateAuthority(
            "ssh-ca", clock, validator_for("ssh-ca"), audit=logs["fds"],
            cert_ttl=ssh_cert_ttl,
        )
        ca_standby.adopt_journal(store.stream("ssh-ca"))
        network.attach(ca_standby, OperatingDomain.FDS, Zone.ACCESS,
                       name="ssh-ca-standby")

    # --- multi-region tier: regions, directory, geo-router ---------------
    region_dir: Optional[RegionDirectory] = None
    geo_router: Optional[GeoRouter] = None
    region_autoscalers: List[Autoscaler] = []
    if region_cfg is not None:
        region_dir = RegionDirectory(
            clock, rbus,
            heartbeat_interval=region_cfg.heartbeat_interval,
            lag_check_interval=region_cfg.lag_check_interval,
            audit=logs["fds"], telemetry=tele,
            # recovering regions resync their revocation view from the
            # *active* broker's authoritative token store
            revoked_source=lambda: active_broker[0].tokens.revoked_jtis(),
        )
        for rname in region_cfg.names:
            region = Region(
                rname, clock, network, OperatingDomain.FDS, Zone.ACCESS,
                broker, rbus, store.stream(f"region-{rname}"),
                replicas=region_cfg.replicas_per_region,
                min_replicas=scale_cfg.min_replicas,
                max_replicas=scale_cfg.max_replicas,
                introspection_ttl=scale_cfg.introspection_ttl,
                staleness_bound=region_cfg.staleness_bound,
                admission_factory=admission_factory,
                lb_policy=lb_policy_factory(),
                telemetry=tele, audit=logs["fds"],
                breaker_listener=(tele.on_breaker_transition
                                  if tele is not None else None),
                tail=tail_cfg,
            )
            region_dir.add(region)
            if scale_cfg.autoscale and tele is not None:
                ras = Autoscaler(
                    clock, region.pool, tele,
                    interval=scale_cfg.autoscale_interval,
                    watch_services=("broker",),
                    audit=logs["fds"],
                    audit_source=f"autoscaler-{rname}",
                )
                ras.start()
                region_autoscalers.append(ras)
        geo_router = GeoRouter(
            "broker", clock, region_dir,
            inter_region_latency=region_cfg.inter_region_latency,
            pins=dict(region_cfg.client_regions),
            audit=logs["fds"], telemetry=tele,
            tail=tail_cfg,
        )
        network.attach(geo_router, OperatingDomain.FDS, Zone.ACCESS,
                       name="broker")
        edge.register_origin("broker", geo_router)
        region_dir.register_fault_hooks(faults)
        region_dir.start()
        # cached serves inside the advertised window are the contract,
        # not an incident: the staleness detector tolerates them and the
        # RegionLagRule takes over past the bound
        for rule in soc.rules:
            if isinstance(rule, CacheStalenessRule):
                rule.tolerance = region_cfg.staleness_bound

    # --- continuous authorization: identity, registry, pipeline, loop ----
    if authz_cfg is not None:
        graph = IdentityGraph(authz_cfg.trust_domain, authority=spire)
        if directory_rt is not None:
            # interactive registrations mint canonical SPIFFE principals;
            # bulk onboarding batches stay out of the graph by design
            directory_rt.accounts.graph = graph
        session_registry = SessionRegistry(clock, graph=graph)
        pdp = PolicyDecisionPoint(
            clock, policy_engine,
            provenance=tele.provenance if tele is not None else None,
        )
        guard = AuthzGuard(
            clock, pdp, staleness_bound=authz_cfg.staleness_bound,
            audit=logs["fds"], telemetry=tele,
        )
        pipeline = RevocationPipeline(
            clock, registry=session_registry, audit=logs["sec"],
            telemetry=tele, retry_interval=authz_cfg.retry_interval,
        )
        authorizer = ContinuousAuthorizer(
            clock, registry=session_registry, pipeline=pipeline, pdp=pdp,
            guard=guard, audit=logs["sec"], config=authz_cfg,
        )

        if tele is not None:
            # provenance enricher: fields the audit bridge cannot see at
            # the emitting surface — assurance tier, SOC threat score,
            # PDP heartbeat age, policy pack version — resolved at
            # record time from the continuous-authorization state
            def _enrich_decision(subject: str) -> Dict[str, object]:
                return {
                    "pack_version": policy_engine.pack_version,
                    "loa": authorizer._loa.get(subject,
                                               authz_cfg.min_loa),
                    "threat_score": authorizer._risk.get(subject, 0.0),
                    "pdp_staleness": round(guard.age(), 6),
                }

            tele.provenance.enricher = _enrich_decision

        def _authz_accounts(uid: str) -> List[str]:
            accounts = graph.accounts_of(uid)
            return accounts if accounts else [uid]

        # the four enforcement fans, in SURFACES order (tokens first so
        # a revoked principal cannot re-mint while later fans run)
        def _teardown_tokens(intent) -> int:
            # whole-user: a pipeline teardown severs the principal, not
            # one project — intent.project stays as audit metadata only
            summary = active_broker[0].revoke_user_access(intent.uid, None)
            return sum(int(v) for v in summary.values())

        def _teardown_ssh(intent) -> int:
            n = active_ca[0].revoke_certificates_for(intent.uid)
            for acct in _authz_accounts(intent.uid):
                n += login_sshd.close_sessions_for(acct)
                if with_isambard3:
                    n += login_sshd_i3.close_sessions_for(acct)
            return n

        def _teardown_tunnels(intent) -> int:
            return (zenith.revoke_web_sessions_for(intent.uid)
                    + zenith.kill_tunnels_registered_by(intent.uid))

        def _teardown_compute(intent) -> int:
            n = jupyter.close_sessions_for(intent.uid)
            for acct in _authz_accounts(intent.uid):
                n += slurm.cancel_account(acct, by="revocation-pipeline")
                if with_isambard3:
                    n += slurm_i3.cancel_account(
                        acct, by="revocation-pipeline")
            return n

        pipeline.register_point("tokens", _teardown_tokens)
        pipeline.register_point("ssh", _teardown_ssh)
        pipeline.register_point("tunnels", _teardown_tunnels)
        pipeline.register_point("compute", _teardown_compute)

        # every admission path tracks its grant and fails closed when
        # the PDP is unreachable past the staleness bound
        broker.tokens.session_registry = session_registry
        broker.tokens.authz_guard = guard
        ssh_ca.session_registry = session_registry
        login_sshd.session_registry = session_registry
        login_sshd.authz_guard = guard
        zenith.session_registry = session_registry
        zenith.authz_guard = guard
        jupyter.session_registry = session_registry
        jupyter.authz_guard = guard
        slurm.session_registry = session_registry
        slurm.authz_guard = guard
        if with_isambard3:
            login_sshd_i3.session_registry = session_registry
            login_sshd_i3.authz_guard = guard
            slurm_i3.session_registry = session_registry
            slurm_i3.authz_guard = guard
        if broker_standby is not None:
            broker_standby.tokens.session_registry = session_registry
            broker_standby.tokens.authz_guard = guard
        if ca_standby is not None:
            ca_standby.session_registry = session_registry

        # portal: principals get canonical ids at onboarding, and its
        # recovery resync re-drives any teardown a crash interrupted
        portal.session_registry = session_registry
        portal.authz_resync = (
            lambda uid, project, account: pipeline.revoke(
                uid=uid, project=project,
                reason="portal-recovery-resync", by="portal-recovery"))

        # without durability the sshds have no issuance registry wired;
        # the CA-side revocation set must still bite on live certs
        def _authz_cert_registered(serial: int, key_id: str) -> bool:
            return active_ca[0].cert_registered(serial, key_id)

        if login_sshd.cert_registry is None:
            login_sshd.cert_registry = _authz_cert_registered
        if with_isambard3 and login_sshd_i3.cert_registry is None:
            login_sshd_i3.cert_registry = _authz_cert_registered

        # kill switch delegates to the pipeline; SOC alerts feed the
        # threat score the containment policy rule denies on
        killswitch.pipeline = pipeline
        killswitch.on_contain = authorizer.note_containment
        soc.escalate = authorizer.on_alert

        # chaos: pdp_down / teardown_stuck / revocation_storm faults
        def _pdp_restore() -> None:
            pdp.restore()
            guard.heartbeat()
            pipeline.drive_pending()
            authorizer.reevaluate_all()

        faults.register_pdp_hooks(pdp.down, _pdp_restore)
        faults.register_teardown_hooks(pipeline.stick, pipeline.unstick)
        faults.register_storm_hook(pipeline.inject_storm)

        if store is not None:
            # the outbox is the durable piece: journal it so a crash
            # between intent publish and enforcement resumes on recover
            pipeline.attach_journal(store.stream("authz-pipeline"))
        authorizer.start()
        authz_rt = AuthzRuntime(
            config=authz_cfg, graph=graph, registry=session_registry,
            pipeline=pipeline, pdp=pdp, guard=guard, authorizer=authorizer,
        )

    # --- crash/restart hooks (chaos `crash` faults + dri.crash/restart) --
    crash_targets: Dict[str, tuple] = {}

    def _service_target(ep_name: str):
        def crash_fn() -> None:
            ep = network.endpoint(ep_name)
            ep.up = False
            ep.service.wipe_state()

        def restart_fn():
            ep = network.endpoint(ep_name)
            report = None
            if getattr(ep.service, "journal", None) is not None:
                report = ep.service.recover()
            ep.up = True
            return report

        return crash_fn, restart_fn

    for ep_name in ("portal", "ssh-ca", "idp-lastresort"):
        crash_targets[ep_name] = _service_target(ep_name)
    if region_cfg is not None:
        # region mode: "crashing the broker" kills the shared state
        # backend and takes every region down with it (total outage);
        # the geo-router keeps answering so callers see unavailability.
        # For single-region loss use faults.region_down() instead.
        origin_crash_r, origin_restart_r = _service_target("broker-origin")

        def _crash_broker_regions() -> None:
            origin_crash_r()
            for region in region_dir.regions():
                region_dir.region_down(region.name)

        def _restart_broker_regions():
            report = origin_restart_r()
            for region in region_dir.regions():
                region_dir.region_up(region.name)
            return report

        crash_targets["broker"] = (
            _crash_broker_regions, _restart_broker_regions)
    elif broker_pool is None:
        crash_targets["broker"] = _service_target("broker")
    else:
        # in scale mode "crashing the broker" kills the shared state
        # backend and takes the whole pod fleet down with it; the LB
        # keeps answering (and exhausting) so callers see unavailability,
        # not a vanished endpoint
        origin_crash, origin_restart = _service_target("broker-origin")

        def _crash_broker_pool() -> None:
            origin_crash()
            for replica in broker_pool.replicas():
                network.endpoint(replica).up = False

        def _restart_broker_pool():
            report = origin_restart()
            for replica in broker_pool.replicas():
                network.endpoint(replica).up = True
            return report

        crash_targets["broker"] = (_crash_broker_pool, _restart_broker_pool)

    def _log_target(log: AuditLog):
        def crash_fn() -> None:
            log.down = True     # emitters now fire into the void (counted)
            log.wipe_state()

        def restart_fn():
            report = log.recover() if log.journal is not None else None
            log.down = False
            return report

        return crash_fn, restart_fn

    for domain, log in logs.items():
        crash_targets[f"audit-{domain}"] = _log_target(log)

    def _fw_target(fw: LogForwarder):
        def crash_fn() -> None:
            fw.stop()
            fw.wipe_state()

        def restart_fn():
            report = fw.recover() if fw.journal is not None else None
            fw.start()
            return report

        return crash_fn, restart_fn

    for fw in forwarders:
        crash_targets[fw.name] = _fw_target(fw)
    if authz_rt is not None and store is not None:
        # crash mid-revocation: the outbox journal replays the intents
        # and verify_recovery re-drives everything still pending
        crash_targets["authz"] = (
            authz_rt.pipeline.wipe_state,
            lambda: authz_rt.pipeline.recover(),
        )
    if directory_rt is not None:

        def _shard_target(shard):
            def crash_fn() -> None:
                shard.up = False
                shard.wipe_state()

            def restart_fn():
                report = shard.recover() if shard.journal is not None else None
                shard.up = True
                return report

            return crash_fn, restart_fn

        for tier_obj in (directory_rt.accounts, directory_rt.metadata):
            for sname in sorted(tier_obj.shards):
                crash_targets[f"dir-{sname}"] = _shard_target(
                    tier_obj.shards[sname])
    for target, (crash_fn, restart_fn) in crash_targets.items():
        faults.register_crash_hooks(target, crash_fn, restart_fn)

    dri = IsambardDeployment(
        clock=clock, ids=ids, network=network, logs=logs, audit=audit,
        edugain=edugain, idps=idps, myaccessid=myaccessid,
        lastresort=lastresort, admin_idp=admin_idp,
        broker=broker, portal=portal, ssh_ca=ssh_ca, zenith=zenith, edge=edge,
        bastion=bastion, tailnet=tailnet,
        pool=pool, login_sshd=login_sshd, jupyter=jupyter,
        zenith_client=zenith_client, mgmt_node=mgmt_node, slurm=slurm,
        filesystem=filesystem,
        soc=soc, killswitch=killswitch, forwarders=forwarders,
        policy_engine=policy_engine,
        pool_i3=pool_i3, login_sshd_i3=login_sshd_i3,
        mgmt_node_i3=mgmt_node_i3, slurm_i3=slurm_i3,
        dcim=dcim, spire=spire,
        faults=faults, resilience=runtime, overload=overload_cfg,
        durability=store, crash_targets=crash_targets,
        validator_factory=validator_for, telemetry=tele,
        pipeline_config=pipeline_cfg,
        scale=scale_cfg, broker_pool=broker_pool, broker_lb=broker_lb,
        invalidation_bus=bus, autoscaler=autoscaler,
        region_config=region_cfg, region_directory=region_dir,
        geo_router=geo_router, region_bus=rbus,
        region_autoscalers=region_autoscalers,
        tail=tail_cfg,
        authz=authz_rt,
        directory=directory_rt,
        caches=({} if token_cache is None else {
            "token-decisions": token_cache, "jwks": jwks_cache,
            "introspection": introspect_cache, "ssh-certs": cert_cache,
            **({f"introspection-{r.name}": r.introspection_cache
                for r in region_dir.regions()} if region_dir else {}),
        }),
    )
    if failover:
        failover_ctl = FailoverController(clock, network, audit=logs["sec"])
        failover_ctl.telemetry = tele

        def _promote_broker(standby) -> None:
            active_broker[0] = standby
            dri.broker = standby
            if region_dir is not None:
                # every region's worker fleet re-points at the promoted
                # state backend, and regions downed by the backend crash
                # come back serving — under *fresh* region epochs (the
                # crash fenced the old generation), with caches cleared
                # and revocation views resynced from the promoted store
                for region in region_dir.regions():
                    region.pool.origin = standby
                    for replica in region.pool.replicas():
                        region.pool.worker(replica).origin = standby
                    if region.state == DOWN:
                        region_dir.region_up(region.name)
            elif broker_pool is not None:
                # the LB keeps the public endpoint; the worker fleet just
                # re-points at the promoted state backend (fencing still
                # holds: the deposed origin can no longer commit).  The
                # pods themselves never died — they went dark because the
                # backend did — so they resume serving immediately
                broker_pool.origin = standby
                for replica in broker_pool.replicas():
                    broker_pool.worker(replica).origin = standby
                    if network.has_endpoint(replica):
                        network.endpoint(replica).up = True
            else:
                edge.register_origin("broker", standby)

        def _promote_ca(standby) -> None:
            active_ca[0] = standby
            dri.ssh_ca = standby

        failover_ctl.register(
            "broker-origin"
            if (broker_pool is not None or region_dir is not None)
            else "broker",
            broker, broker_standby, standby_name="broker-standby",
            domain=OperatingDomain.FDS, zone=Zone.ACCESS,
            on_promote=_promote_broker)
        failover_ctl.register(
            "ssh-ca", ssh_ca, ca_standby, standby_name="ssh-ca-standby",
            domain=OperatingDomain.FDS, zone=Zone.ACCESS,
            on_promote=_promote_ca)
        failover_ctl.start()
        dri.failover = failover_ctl
    dri.refresh_tunnels()

    from repro.core.workflows import Workflows

    dri.workflows = Workflows(dri)
    return dri


def _register_config_checks(soc, network, bastion, admin_idp, broker, filesystem):
    """The CIS-style check pack (SOC task 3)."""
    fw = network.firewall

    def port22_only_into_sws():
        bad = [
            r.name for r in fw.rules()
            if r.action == "allow" and r.dst_domain == OperatingDomain.SWS
            and r.src_domain == OperatingDomain.EXTERNAL and r.port != 22
            and r.dst_zone != Zone.MANAGEMENT  # tailnet coordination is 443
        ]
        return (not bad, f"extra internet->SWS openings: {bad}" if bad
                else "port 22 is the only internet opening into SWS (plus tailnet 443)")

    soc.assessment.add("CIS-NET-1", "Default-deny segmentation enabled",
                       lambda: (fw.segmented, f"segmented={fw.segmented}"))
    soc.assessment.add("CIS-NET-2", "Internet to SWS restricted to SSH",
                       port22_only_into_sws)
    soc.assessment.add(
        "CIS-NET-3", "Management zone unreachable from the internet",
        lambda: (
            not any(
                r.action == "allow"
                and r.src_domain == OperatingDomain.EXTERNAL
                and r.dst_zone == Zone.MANAGEMENT
                and r.dst_domain == OperatingDomain.MDC
                for r in fw.rules()
            ),
            "no allow rule internet -> MDC management",
        ),
    )
    soc.assessment.add(
        "CIS-IAM-1", "Administrators use hardware-key MFA",
        lambda: (True, "admin IdP requires hardware-key challenge/response"),
    )
    soc.assessment.add(
        "CIS-IAM-2", "Access tokens are short-lived",
        lambda: (broker.tokens.max_ttl <= 3600,
                 f"max RBAC TTL {broker.tokens.max_ttl:.0f}s"),
    )
    soc.assessment.add(
        "CIS-HA-1", "Bastion operates as an HA set",
        lambda: (len(bastion.vms) >= 2, f"{len(bastion.vms)} bastion VMs"),
    )
    soc.assessment.add(
        "CIS-DATA-1", "Parallel filesystem encrypted at rest",
        lambda: (filesystem.encrypted_at_rest,
                 "encryption at rest on the PFS is future work (paper §IV.B)"),
    )
