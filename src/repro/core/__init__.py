"""Core: the Fig. 1 deployment, the user-story workflows, the threat model."""

from repro.core.deployment import DEFAULT_IDPS, IsambardDeployment, build_isambard
from repro.core.metrics import Timer, format_table, latency_stats
from repro.core.threat import ExposureReport, ThreatModel
from repro.core.workflows import Persona, StoryResult, Workflows

__all__ = [
    "build_isambard",
    "IsambardDeployment",
    "DEFAULT_IDPS",
    "Workflows",
    "Persona",
    "StoryResult",
    "ThreatModel",
    "ExposureReport",
    "latency_stats",
    "format_table",
    "Timer",
]
