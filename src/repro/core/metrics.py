"""Measurement helpers for the benchmark harness.

Benches print paper-style tables; these helpers keep that formatting in
one place and provide latency statistics over simulated timings.  numpy
is used here (and only here) per the HPC-Python guidance: vectorise the
measured hot path — which, for this control-plane reproduction, is the
benchmark analysis itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["latency_stats", "format_table", "Timer"]


def latency_stats(samples: Sequence[float],
                  exemplars: Optional[Sequence[Optional[str]]] = None,
                  ) -> Dict[str, object]:
    """min/p50/p95/p99/max/mean over a latency sample set (seconds).

    The tail percentiles are what the overload studies live on: a
    surge that keeps the median flat while p99 runs away is exactly
    the failure mode admission control is meant to prevent.

    ``exemplars``, when given, is a sequence of trace ids parallel to
    ``samples``; the result then carries an ``"exemplars"`` dict mapping
    each tail statistic (p50/p95/p99/max) to the trace id of the sample
    nearest that value, so a bench table row links straight to the span
    tree that produced it.
    """
    if not samples:
        stats: Dict[str, object] = {
            "n": 0, "min": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
            "max": 0.0, "mean": 0.0}
        if exemplars is not None:
            stats["exemplars"] = {}
        return stats
    arr = np.asarray(samples, dtype=float)
    stats = {
        "n": int(arr.size),
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
    }
    if exemplars is not None:
        if len(exemplars) != len(samples):
            raise ValueError("exemplars must parallel samples")
        picked: Dict[str, str] = {}
        for key in ("p50", "p95", "p99", "max"):
            idx = int(np.abs(arr - float(stats[key])).argmin())
            trace_id = exemplars[idx]
            if trace_id:
                picked[key] = trace_id
        stats["exemplars"] = picked
    return stats


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 *, title: str = "") -> str:
    """Fixed-width text table (what the benches print for the reader)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Timer:
    """Measure elapsed *simulated* time around a block."""

    clock: object
    start: float = 0.0
    elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = self.clock.now()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = self.clock.now() - self.start
