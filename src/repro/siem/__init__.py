"""SIEM/SOC: forwarders, detections, inventory, assessment, kill switch."""

from repro.siem.configassess import CheckResult, ConfigAssessment, ConfigCheck
from repro.siem.detections import (
    Alert,
    CacheStalenessRule,
    DetectionRule,
    DistinctTargetsRule,
    RegionLagRule,
    RetryStormRule,
    ThresholdRule,
    UnexplainedDecisionRule,
    standard_rules,
)
from repro.siem.forwarder import LogForwarder, event_to_record
from repro.siem.inventory import Advisory, Asset, AssetInventory
from repro.siem.killswitch import KillSwitchController
from repro.siem.soc import SecurityOperationsCentre
from repro.siem.timeline import (
    IncidentTimeline,
    TimelineEntry,
    build_timeline,
    build_trace_timeline,
    join_provenance,
)
from repro.siem.tracewatch import TraceAnomalyScanner, TraceIntegrityRule

__all__ = [
    "LogForwarder",
    "event_to_record",
    "Alert",
    "DetectionRule",
    "ThresholdRule",
    "DistinctTargetsRule",
    "CacheStalenessRule",
    "RegionLagRule",
    "RetryStormRule",
    "UnexplainedDecisionRule",
    "standard_rules",
    "AssetInventory",
    "Asset",
    "Advisory",
    "ConfigAssessment",
    "ConfigCheck",
    "CheckResult",
    "KillSwitchController",
    "SecurityOperationsCentre",
    "IncidentTimeline",
    "TimelineEntry",
    "TraceAnomalyScanner",
    "TraceIntegrityRule",
    "build_timeline",
    "build_trace_timeline",
    "join_provenance",
]
