"""Security configuration assessment (SOC task 3, CIS-benchmark style).

"Provide security configuration assessment to aid with compliance with
best-practice guidelines, such as CIS."  A check inspects live
deployment objects and returns pass/fail with evidence; the assessment
engine runs a pack of checks and produces a scored report — the artefact
an auditor (or the CAF baseline assessment the paper plans next) reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["CheckResult", "ConfigCheck", "ConfigAssessment"]


@dataclass(frozen=True)
class CheckResult:
    check_id: str
    title: str
    passed: bool
    evidence: str


@dataclass
class ConfigCheck:
    check_id: str
    title: str
    probe: Callable[[], "tuple[bool, str]"]  # returns (passed, evidence)

    def run(self) -> CheckResult:
        try:
            passed, evidence = self.probe()
        except Exception as exc:  # a broken probe is a failed control
            passed, evidence = False, f"probe error: {exc}"
        return CheckResult(self.check_id, self.title, passed, evidence)


class ConfigAssessment:
    """A pack of checks plus scoring."""

    def __init__(self) -> None:
        self._checks: List[ConfigCheck] = []

    def add(self, check_id: str, title: str,
            probe: Callable[[], "tuple[bool, str]"]) -> None:
        self._checks.append(ConfigCheck(check_id, title, probe))

    def run(self) -> List[CheckResult]:
        return [c.run() for c in self._checks]

    def score(self) -> float:
        results = self.run()
        if not results:
            return 0.0
        return sum(1 for r in results if r.passed) / len(results)

    def failing(self) -> List[CheckResult]:
        return [r for r in self.run() if not r.passed]

    def __len__(self) -> int:
        return len(self._checks)
