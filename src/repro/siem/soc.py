"""The Security Operations Centre in the Security Services domain.

§III.D: a "virtual central Security Operations Centre" in public cloud,
in a different account from FDS, following the AWS Security Reference
Architecture.  Its three tasks — log aggregation/detection, VM
inventory/vulnerability tracking, and configuration assessment — each
have a module; this service ties them together and adds:

* an ingest endpoint the log forwarders ship batches to;
* alert storage with an escalation hook (the external NCC 24/7
  monitoring service);
* optional auto-containment: critical alerts trigger the kill switch
  without waiting for a human.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.audit import AuditLog, Outcome
from repro.broker.rbac import require_capability
from repro.broker.tokens import RbacTokenValidator
from repro.clock import SimClock
from repro.errors import AuthenticationError
from repro.net.http import HttpRequest, HttpResponse, Service, route
from repro.siem.configassess import ConfigAssessment
from repro.siem.detections import Alert, DetectionRule, standard_rules
from repro.siem.inventory import AssetInventory
from repro.siem.killswitch import KillSwitchController

__all__ = ["SecurityOperationsCentre"]


class SecurityOperationsCentre(Service):
    """The SOC service (endpoint in SEC / Security zone).

    Parameters
    ----------
    validator:
        RBAC validator for audience ``"soc"`` — ingest uses service
        tokens, the alert view requires ``soc.view``.
    escalate:
        Hook called with each alert (the external 24/7 monitoring
        service).  Must not raise.
    killswitch:
        When set with ``auto_contain=True``, critical alerts trigger
        :meth:`KillSwitchController.contain_user` on the alert's actor.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        validator: RbacTokenValidator,
        *,
        audit: Optional[AuditLog] = None,
        rules: Optional[List[DetectionRule]] = None,
        escalate: Optional[Callable[[Alert], None]] = None,
        killswitch: Optional[KillSwitchController] = None,
        auto_contain: bool = False,
        contain_severities: frozenset = frozenset({"critical", "high"}),
    ) -> None:
        super().__init__(name)
        self.clock = clock
        self.validator = validator
        self.audit = audit if audit is not None else AuditLog(f"{name}-audit")
        self.rules = rules if rules is not None else standard_rules()
        self.escalate = escalate
        self.killswitch = killswitch
        self.auto_contain = auto_contain
        self.contain_severities = frozenset(contain_severities)
        # optional SPIFFE-style workload authentication for ingest: when
        # set, shippers must present a valid SVID under allowed paths
        self.trust_authority = None
        self.allowed_svid_prefixes: tuple = ()
        self.inventory = AssetInventory()
        self.assessment = ConfigAssessment()
        self.records_ingested = 0
        self._records: List[Dict[str, object]] = []
        self.alerts: List[Alert] = []
        self.contained: List[str] = []
        # decision provenance (attached by the deployment when telemetry
        # is on): feeds the scoreboard and the post-mortem explain views
        self.provenance = None
        self.span_pipeline = None

    def attach_provenance(self, ledger, span_store=None) -> None:
        """Give the SOC the provenance ledger (and, when the bounded
        pipeline is on, the span store) its scoreboard reads."""
        self.provenance = ledger
        if span_store is not None and hasattr(span_store, "stats"):
            self.span_pipeline = span_store

    # ------------------------------------------------------------------
    # ingest (called by forwarders, over the network or directly)
    # ------------------------------------------------------------------
    def ingest_batch(self, records: List[Dict[str, object]]) -> List[Alert]:
        """Run every record through the rule pack; handle new alerts."""
        new_alerts: List[Alert] = []
        for record in records:
            self._records.append(record)
            self.records_ingested += 1
            for rule in self.rules:
                alert = rule.observe(record)
                if alert is not None:
                    new_alerts.append(alert)
        for alert in new_alerts:
            self._handle_alert(alert)
        return new_alerts

    def require_workload_identity(self, authority, *prefixes: str) -> None:
        """Demand a valid SVID (under one of ``prefixes``) on ingest, in
        addition to the service RBAC token — defence in depth for the
        pipeline that feeds every detection."""
        self.trust_authority = authority
        self.allowed_svid_prefixes = tuple(prefixes)

    @route("POST", "/ingest")
    def ingest_endpoint(self, request: HttpRequest) -> HttpResponse:
        token = request.bearer_token()
        if token is None:
            raise AuthenticationError("SOC ingest requires a service token")
        claims = self.validator.validate(token)
        require_capability(claims, "authz.query")  # service-role tokens
        if self.trust_authority is not None:
            svid = request.headers.get("X-Workload-SVID", "")
            identity = self.trust_authority.validate_svid(svid)  # raises
            if self.allowed_svid_prefixes and not any(
                identity.matches(p) for p in self.allowed_svid_prefixes
            ):
                raise AuthenticationError(
                    f"workload {identity.spiffe_id} may not ship logs"
                )
        records = request.body.get("records", [])
        if not isinstance(records, list):
            return HttpResponse.error(400, "records must be a list")
        alerts = self.ingest_batch(records)
        return HttpResponse.json({"ingested": len(records), "alerts": len(alerts)})

    def raise_alert(self, alert: Alert) -> None:
        """Accept an alert originated outside the rule pack (burn-rate
        SLO monitors, the trace anomaly scanner): stored, audited,
        escalated and — severity permitting — auto-contained exactly
        like a rule hit."""
        self._handle_alert(alert)

    def _handle_alert(self, alert: Alert) -> None:
        self.alerts.append(alert)
        self.audit.record(
            alert.time, self.name, alert.actor, f"alert.{alert.rule}",
            alert.summary, Outcome.INFO, severity=alert.severity,
        )
        if self.escalate is not None:
            try:
                self.escalate(alert)
            except Exception:
                pass  # the external service must never break ingestion
        if (
            self.auto_contain
            and self.killswitch is not None
            and alert.severity in self.contain_severities
            and alert.actor
            and alert.actor not in self.contained
        ):
            self.killswitch.contain_user(alert.actor)
            self.contained.append(alert.actor)

    # ------------------------------------------------------------------
    # views (admin-security role)
    # ------------------------------------------------------------------
    @route("GET", "/alerts")
    def alerts_view(self, request: HttpRequest) -> HttpResponse:
        token = request.bearer_token()
        if token is None:
            raise AuthenticationError("viewing alerts requires an RBAC token")
        claims = self.validator.validate(token)
        require_capability(claims, "soc.view")
        return HttpResponse.json(
            {
                "alerts": [
                    {
                        "time": a.time, "rule": a.rule, "severity": a.severity,
                        "actor": a.actor, "summary": a.summary,
                    }
                    for a in self.alerts
                ],
                "records_ingested": self.records_ingested,
            }
        )

    @route("GET", "/posture")
    def posture_view(self, request: HttpRequest) -> HttpResponse:
        """Inventory scan + configuration assessment in one report."""
        token = request.bearer_token()
        if token is None:
            raise AuthenticationError("viewing posture requires an RBAC token")
        claims = self.validator.validate(token)
        require_capability(claims, "soc.view")
        findings = self.inventory.scan()
        results = self.assessment.run()
        return HttpResponse.json(
            {
                "assets": len(self.inventory.assets()),
                "vulnerability_findings": [
                    {"asset": f.asset, "advisory": f.advisory_id,
                     "severity": f.severity}
                    for f in findings
                ],
                "config_checks": [
                    {"id": r.check_id, "title": r.title, "passed": r.passed,
                     "evidence": r.evidence}
                    for r in results
                ],
                "config_score": self.assessment.score(),
            }
        )

    # ------------------------------------------------------------------
    # decision scoreboard (provenance + pipeline health in one view)
    # ------------------------------------------------------------------
    def scoreboard(self) -> Dict[str, object]:
        """Decisions by surface × outcome, fail-closed count, alert
        totals, and — when the bounded pipeline is on — span retention
        health.  The at-a-glance answer to "is enforcement healthy and
        is observation keeping up?"."""
        board: Dict[str, object] = {
            "alerts": len(self.alerts),
            "contained": list(self.contained),
            "records_ingested": self.records_ingested,
        }
        if self.provenance is not None:
            board["provenance"] = self.provenance.stats()
        if self.span_pipeline is not None:
            board["spans"] = self.span_pipeline.stats()
        return board

    @route("GET", "/scoreboard")
    def scoreboard_view(self, request: HttpRequest) -> HttpResponse:
        token = request.bearer_token()
        if token is None:
            raise AuthenticationError(
                "viewing the scoreboard requires an RBAC token")
        claims = self.validator.validate(token)
        require_capability(claims, "soc.view")
        return HttpResponse.json(self.scoreboard())

    @route("GET", "/explain")
    def explain_view(self, request: HttpRequest) -> HttpResponse:
        """Post-mortem query: every decision about one identity (query
        ``identity=``) or one traced request (query ``trace_id=``)."""
        token = request.bearer_token()
        if token is None:
            raise AuthenticationError(
                "explain queries require an RBAC token")
        claims = self.validator.validate(token)
        require_capability(claims, "soc.view")
        if self.provenance is None:
            return HttpResponse.error(503, "no provenance ledger attached")
        identity = str(request.query.get("identity", ""))
        trace_id = str(request.query.get("trace_id", ""))
        if identity:
            records = self.provenance.explain(identity)
        elif trace_id:
            records = self.provenance.explain_trace(trace_id)
        else:
            return HttpResponse.error(400, "identity or trace_id required")
        return HttpResponse.json({
            "decisions": [
                {
                    "time": r.time, "surface": r.surface,
                    "decision": r.decision, "subject": r.subject,
                    "rule": r.rule, "reason": r.reason,
                    "pack_version": r.pack_version, "cached": r.cached,
                    "pdp_staleness": r.pdp_staleness,
                }
                for r in records
            ],
        })

    # ------------------------------------------------------------------
    def records(self) -> List[Dict[str, object]]:
        return list(self._records)
