"""The externally managed kill switch.

§III.B: the design "makes implementation of an externally managed 'kill
switch' easier in case of a threat and attack, without waiting for a
direct intervention from the Isambard team".  The controller aggregates
every containment lever in the deployment behind two verbs:

* :meth:`contain_user` — sever one principal everywhere: flag at the
  bastions, revoke broker tokens/sessions, close SSH/Jupyter sessions,
  cancel jobs;
* :meth:`emergency_stop` — shut the whole front door: bastion service
  down, tailnet down, Zenith tunnels killed.

Actions are registered by the deployment; the controller records what it
did and when, so time-to-containment is measurable (ablation ABL3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.audit import AuditLog, Outcome
from repro.clock import SimClock

__all__ = ["ContainmentAction", "KillSwitchController"]


@dataclass(frozen=True)
class ContainmentRecord:
    time: float
    verb: str        # "contain_user" | "emergency_stop" | "restore"
    target: str
    actions_run: int
    details: Dict[str, object]


class KillSwitchController:
    """Registry of containment levers, operable by the external SOC."""

    def __init__(self, clock: SimClock, *, audit: Optional[AuditLog] = None) -> None:
        self.clock = clock
        self.audit = audit if audit is not None else AuditLog("killswitch-audit")
        # name -> callable(principal) -> summary (per-user levers)
        self._user_actions: Dict[str, Callable[[str], object]] = {}
        # name -> callable() (whole-service levers), plus its restore
        self._stop_actions: Dict[str, Callable[[], None]] = {}
        self._restore_actions: Dict[str, Callable[[], None]] = {}
        self.history: List[ContainmentRecord] = []
        self.engaged = False
        # continuous authorization: when a RevocationPipeline is wired,
        # contain_user delegates to it — one journaled, retried, fenced
        # teardown instead of a best-effort lever sweep.  on_contain lets
        # the continuous authorizer pin the principal's risk score so
        # re-admission stays denied after the teardown.
        self.pipeline = None
        self.on_contain: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------------
    def register_user_action(self, name: str, action: Callable[[str], object]) -> None:
        self._user_actions[name] = action

    def register_stop_action(
        self, name: str, stop: Callable[[], None], restore: Callable[[], None]
    ) -> None:
        self._stop_actions[name] = stop
        self._restore_actions[name] = restore

    def user_levers(self) -> List[str]:
        return sorted(self._user_actions)

    def stop_levers(self) -> List[str]:
        return sorted(self._stop_actions)

    # ------------------------------------------------------------------
    def contain_user(self, principal: str) -> ContainmentRecord:
        """Sever one principal across every registered lever.

        With the revocation pipeline wired, the severing is one journaled
        intent fanned across the enforcement surfaces (crash-safe,
        retried, idempotent); without it, the legacy per-lever sweep runs.
        """
        if self.on_contain is not None:
            self.on_contain(principal)
        details: Dict[str, object] = {}
        if self.pipeline is not None:
            intent = self.pipeline.revoke(
                uid=principal, reason="killswitch.contain_user", by="soc")
            details["pipeline"] = intent.intent_id
            details.update(intent.done)
            if not intent.complete:
                details["pending"] = list(intent.pending)
            actions_run = len(intent.done)
        else:
            for name, action in self._user_actions.items():
                details[name] = action(principal)
            actions_run = len(details)
        record = ContainmentRecord(
            time=self.clock.now(),
            verb="contain_user",
            target=principal,
            actions_run=actions_run,
            details=details,
        )
        self.history.append(record)
        self.audit.record(
            self.clock.now(), "killswitch", "soc", "killswitch.contain_user",
            principal, Outcome.INFO, actions=actions_run,
        )
        return record

    def emergency_stop(self) -> ContainmentRecord:
        """Shut every registered front-door service down."""
        for action in self._stop_actions.values():
            action()
        self.engaged = True
        record = ContainmentRecord(
            time=self.clock.now(),
            verb="emergency_stop",
            target="*",
            actions_run=len(self._stop_actions),
            details={"services": sorted(self._stop_actions)},
        )
        self.history.append(record)
        self.audit.record(
            self.clock.now(), "killswitch", "soc", "killswitch.emergency_stop",
            "*", Outcome.INFO, services=len(self._stop_actions),
        )
        return record

    def restore(self) -> ContainmentRecord:
        for action in self._restore_actions.values():
            action()
        self.engaged = False
        record = ContainmentRecord(
            time=self.clock.now(),
            verb="restore",
            target="*",
            actions_run=len(self._restore_actions),
            details={},
        )
        self.history.append(record)
        return record
