"""Asset inventory and vulnerability tracking (SOC task 2).

"Inventory all virtual machines in SWS and FDS to track software
versions for vulnerabilities."  Assets register with a kind and version;
the vulnerability feed maps (kind, version-range) to advisories; a scan
joins the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Asset", "Advisory", "AssetInventory"]


@dataclass
class Asset:
    name: str
    kind: str           # e.g. "bastion-vm", "k8s-node", "login-node"
    version: str
    domain: str
    last_seen: float


@dataclass(frozen=True)
class Advisory:
    advisory_id: str    # e.g. "CVE-2024-0001"
    kind: str
    affected_versions: Tuple[str, ...]
    severity: str       # "low"|"medium"|"high"|"critical"
    summary: str


@dataclass(frozen=True)
class Finding:
    asset: str
    advisory_id: str
    severity: str
    summary: str


class AssetInventory:
    """Registry + vulnerability scanner."""

    def __init__(self) -> None:
        self._assets: Dict[str, Asset] = {}
        self._advisories: List[Advisory] = []

    # ------------------------------------------------------------------
    def register(self, name: str, kind: str, version: str, domain: str,
                 *, now: float = 0.0) -> Asset:
        asset = Asset(name=name, kind=kind, version=version,
                      domain=domain, last_seen=now)
        self._assets[name] = asset
        return asset

    def update_version(self, name: str, version: str, *, now: float = 0.0) -> None:
        asset = self._assets.get(name)
        if asset is not None:
            asset.version = version
            asset.last_seen = now

    def assets(self, *, domain: Optional[str] = None) -> List[Asset]:
        return [a for a in self._assets.values()
                if domain is None or a.domain == domain]

    # ------------------------------------------------------------------
    def publish_advisory(self, advisory: Advisory) -> None:
        self._advisories.append(advisory)

    def scan(self) -> List[Finding]:
        """Join assets against advisories; returns current findings."""
        findings: List[Finding] = []
        for asset in self._assets.values():
            for adv in self._advisories:
                if adv.kind == asset.kind and asset.version in adv.affected_versions:
                    findings.append(Finding(
                        asset=asset.name,
                        advisory_id=adv.advisory_id,
                        severity=adv.severity,
                        summary=adv.summary,
                    ))
        return findings

    def vulnerable_assets(self) -> List[str]:
        return sorted({f.asset for f in self.scan()})
