"""Trace-anomaly detections: the security half of the telemetry layer.

Two detectors prove the trace↔audit correlation is usable for security,
not just performance:

* :class:`TraceIntegrityRule` — an ordinary SOC detection rule that
  fires when a forwarded audit record references a ``trace_id`` the
  span store has never seen.  Every trace id in the trail is minted by
  the in-process tracer, so an unknown one means a forged or replayed
  record in the log pipeline (or a tampered store).
* :class:`TraceAnomalyScanner` — an on-demand sweep over recorded server
  spans looking for a hop that crossed a zone boundary with **no
  matching firewall-allowed edge**.  Delivered traffic the segmentation
  policy would refuse is the signature of a bypass; legitimate
  boundary-bypassing paths (the reverse tunnels) are recorded as
  ``kind="tunnel"`` spans and are exempt by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.audit import Outcome
from repro.siem.detections import Alert, DetectionRule

__all__ = ["TraceIntegrityRule", "TraceAnomalyScanner"]


class TraceIntegrityRule(DetectionRule):
    """Fires on an audit record whose trace id the span store never saw."""

    name = "trace-unknown"

    def __init__(self, store, *, severity: str = "medium") -> None:
        self.store = store
        self.severity = severity
        self._alerted: Set[str] = set()

    def observe(self, record: Dict[str, object]) -> Optional[Alert]:
        attrs = record.get("attrs")
        if not isinstance(attrs, dict):
            return None
        trace_id = attrs.get("trace_id")
        if not trace_id:
            return None
        trace_id = str(trace_id)
        if trace_id in self._alerted or self.store.has_trace(trace_id):
            return None
        self._alerted.add(trace_id)
        return Alert(
            time=float(record.get("time", 0.0)),
            rule=self.name,
            severity=self.severity,
            actor=str(record.get("actor", "")),
            summary=(f"audit record from {record.get('source', '?')} "
                     f"references trace {trace_id} the span store never "
                     f"saw — forged or replayed log entry"),
            evidence_count=1,
        )


class TraceAnomalyScanner:
    """Sweep server spans for boundary crossings the firewall would deny.

    A server span records its source endpoint, destination, and port.
    If the hop crossed a zone/domain boundary but the segmentation
    policy — queried fresh at scan time — refuses that flow, and the
    span was not itself a firewall rejection, then traffic moved where
    no allowed edge exists.  ``scan()`` is idempotent per span: re-runs
    only report spans recorded since the previous sweep.
    """

    name = "trace-zone-anomaly"

    # a span that *is* the firewall/transport refusing the flow is the
    # policy working, not being bypassed
    _POLICY_ERRORS = ("ConnectionBlocked", "EncryptionRequired")

    def __init__(self, network, store, *, severity: str = "high",
                 telemetry=None, audit=None) -> None:
        self.network = network
        self.store = store
        self.severity = severity
        self.telemetry = telemetry
        self.audit = audit
        self._scanned: Set[str] = set()
        self.skipped_spans = 0

    def scan(self) -> List[Alert]:
        alerts: List[Alert] = []
        for span in self.store.spans():
            if span.span_id in self._scanned or not span.finished:
                continue
            self._scanned.add(span.span_id)
            if span.kind != "server":
                continue
            if span.error in self._POLICY_ERRORS:
                continue
            src = str(span.attrs.get("src", ""))
            dst = span.service
            src_zone = span.attrs.get("src_zone")
            dst_zone = span.attrs.get("dst_zone")
            if not src or src_zone is None or src_zone == dst_zone:
                continue
            if (not self.network.has_endpoint(src)
                    or not self.network.has_endpoint(dst)):
                # topology changed (failover); cannot re-evaluate the
                # flow against current policy.  This used to be an
                # invisible skip — an attacker crossing a boundary just
                # before a failover simply vanished from the sweep.  Now
                # every such span is counted and audited so the SOC can
                # see how much of the window went unchecked.
                self.skipped_spans += 1
                if self.telemetry is not None:
                    self.telemetry.tracewatch_skips.inc()
                if self.audit is not None:
                    self.audit.record(
                        span.end if span.end is not None else span.start,
                        "tracewatch", src or "?", "tracewatch.skip",
                        span.span_id, Outcome.INFO,
                        reason="topology-changed", dst=dst,
                    )
                continue
            port = int(span.attrs.get("port", 443))
            if self.network.reachable(src, dst, port):
                continue
            alerts.append(Alert(
                time=span.end if span.end is not None else span.start,
                rule=self.name,
                severity=self.severity,
                actor=src,
                summary=(f"span {span.span_id} (trace {span.trace_id}) "
                         f"crossed {src_zone} -> {dst_zone} to {dst}:{port} "
                         f"but the segmentation policy allows no such "
                         f"edge — possible firewall bypass"),
                evidence_count=1,
            ))
        return alerts

    def raise_into(self, soc) -> List[Alert]:
        """Run a sweep and hand every anomaly to the SOC."""
        alerts = self.scan()
        for alert in alerts:
            soc.raise_alert(alert)
        return alerts
