"""Detection rules the SOC runs over the forwarded log stream.

The SOC's task 1 is to "aggregate and scan logs from across MDCs, SWS
and FDS to identify potential attacks and raise alerts".  Rules here are
windowed counters over the limited record format; each produces an
:class:`Alert` with a severity and the principal to contain.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

__all__ = [
    "Alert",
    "DetectionRule",
    "ThresholdRule",
    "DistinctTargetsRule",
    "CacheStalenessRule",
    "RegionLagRule",
    "RetryStormRule",
    "UnexplainedDecisionRule",
    "standard_rules",
]


@dataclass(frozen=True)
class Alert:
    time: float
    rule: str
    severity: str          # "low" | "medium" | "high" | "critical"
    actor: str             # principal to contain (may be a source host)
    summary: str
    evidence_count: int


class DetectionRule:
    """Base class: feed records, maybe emit alerts.  Subclasses define a
    ``name`` attribute identifying the rule in alerts."""

    def observe(self, record: Dict[str, object]) -> Optional[Alert]:  # pragma: no cover
        raise NotImplementedError


@dataclass
class ThresholdRule(DetectionRule):
    """Alert when ``count`` matching records from one actor land within
    ``window`` seconds.  One alert per actor per window (no alert storms).
    """

    name: str
    severity: str
    window: float
    count: int
    summary: str
    predicate: Callable[[Dict[str, object]], bool]
    key: Callable[[Dict[str, object]], str] = field(
        default=lambda r: str(r.get("actor", "")))
    _hits: Dict[str, Deque[float]] = field(default_factory=lambda: defaultdict(deque))
    _last_alert: Dict[str, float] = field(default_factory=dict)

    def observe(self, record: Dict[str, object]) -> Optional[Alert]:
        if not self.predicate(record):
            return None
        actor = self.key(record)
        t = float(record.get("time", 0.0))
        hits = self._hits[actor]
        hits.append(t)
        while hits and hits[0] <= t - self.window:
            hits.popleft()
        if len(hits) < self.count:
            return None
        last = self._last_alert.get(actor)
        if last is not None and t - last < self.window:
            return None
        self._last_alert[actor] = t
        return Alert(
            time=t,
            rule=self.name,
            severity=self.severity,
            actor=actor,
            summary=self.summary.format(actor=actor, count=len(hits)),
            evidence_count=len(hits),
        )


@dataclass
class DistinctTargetsRule(DetectionRule):
    """Alert when one actor touches ``count`` *distinct* resources
    matching the predicate within ``window`` seconds — the signature of
    scanning/lateral probing rather than repeated failures at one place.
    """

    name: str
    severity: str
    window: float
    count: int
    summary: str
    predicate: Callable[[Dict[str, object]], bool]
    _seen: Dict[str, Deque[Tuple[float, str]]] = field(
        default_factory=lambda: defaultdict(deque))
    _last_alert: Dict[str, float] = field(default_factory=dict)

    def observe(self, record: Dict[str, object]) -> Optional[Alert]:
        if not self.predicate(record):
            return None
        actor = str(record.get("actor", ""))
        t = float(record.get("time", 0.0))
        resource = str(record.get("resource", ""))
        seen = self._seen[actor]
        seen.append((t, resource))
        while seen and seen[0][0] <= t - self.window:
            seen.popleft()
        distinct = {r for _, r in seen}
        if len(distinct) < self.count:
            return None
        last = self._last_alert.get(actor)
        if last is not None and t - last < self.window:
            return None
        self._last_alert[actor] = t
        return Alert(
            time=t, rule=self.name, severity=self.severity, actor=actor,
            summary=self.summary.format(actor=actor, count=len(distinct)),
            evidence_count=len(distinct),
        )


@dataclass
class CacheStalenessRule(DetectionRule):
    """The staleness oracle for the replica cache layer.

    The scale subsystem promises that a cached ALLOW never outlives a
    revocation: the invalidation bus evicts the jti from every
    subscribed cache synchronously, *inside* the revocation call.  This
    rule watches the forwarded stream for the promise being broken — a
    ``cached`` decision that names a jti *after* a revocation event for
    that jti was observed.  Any hit is a critical alert: it means some
    replica served a revoked credential from cache, which is a
    zero-trust correctness failure, not a performance bug.

    Revocations are learned from records whose action is one of
    ``rbac.revoke``/``token.revoke`` (jti in the resource or the ``jti``
    attribute).  Cache-served decisions are records with outcome
    ``cached``; their jti rides the ``jti`` attribute stamped by the
    serving service.

    Multi-region deployments advertise a staleness bound: revocations
    replicate to peer regions asynchronously, so a remote cache may
    legitimately serve the old decision for up to ``tolerance`` seconds
    after the revocation instant.  Within the window the serve is
    *counted* (``tolerated``) but not alerted; past the window the
    original critical alert fires.  ``tolerance=0`` keeps the strict
    single-region contract: any post-revocation cached serve alerts.
    """

    name: str = "cache-staleness"
    severity: str = "critical"
    summary: str = "cached decision served revoked token {jti} for {actor}"
    tolerance: float = 0.0
    tolerated: int = 0
    _revoked_at: Dict[str, float] = field(default_factory=dict)
    _alerted: Dict[str, float] = field(default_factory=dict)

    REVOCATION_ACTIONS = ("rbac.revoke", "token.revoke")

    def observe(self, record: Dict[str, object]) -> Optional[Alert]:
        action = str(record.get("action", ""))
        t = float(record.get("time", 0.0))
        attrs = record.get("attrs") or {}
        jti = str(attrs.get("jti", "") if isinstance(attrs, dict) else "")
        if any(action.startswith(p) for p in self.REVOCATION_ACTIONS):
            revoked = jti or str(record.get("resource", ""))
            if revoked and revoked not in self._revoked_at:
                self._revoked_at[revoked] = t
            return None
        if record.get("outcome") != "cached" or not jti:
            return None
        revoked_at = self._revoked_at.get(jti)
        if revoked_at is None or t < revoked_at:
            return None
        if self.tolerance > 0.0 and t - revoked_at <= self.tolerance:
            self.tolerated += 1
            return None
        if jti in self._alerted:
            return None          # one alert per stale jti, not per serve
        self._alerted[jti] = t
        actor = str(record.get("actor", ""))
        return Alert(
            time=t,
            rule=self.name,
            severity=self.severity,
            actor=actor,
            summary=self.summary.format(jti=jti, actor=actor),
            evidence_count=1,
        )


@dataclass
class RegionLagRule(DetectionRule):
    """Alert when a region's advertised replication staleness bound is
    breached.

    The multi-region directory periodically audits every region's
    measured revocation-replication lag as ``region.lag`` records
    carrying ``region``/``lag``/``bound`` attributes.  A lag past the
    bound means the region can no longer honour the advertised staleness
    contract — the deployment's response is to fail that region closed
    (flush caches, stop serving), and this rule is the SOC-side view of
    the same breach.  Alerts carry an empty actor: there is no principal
    to contain, a region is degraded.

    One alert per region per ``window`` seconds to avoid alert storms
    while a partition persists.
    """

    name: str = "region-lag"
    severity: str = "high"
    window: float = 30.0
    summary: str = "region {region} replication lag {lag:.1f}s exceeds bound {bound:.1f}s"
    _last_alert: Dict[str, float] = field(default_factory=dict)

    def observe(self, record: Dict[str, object]) -> Optional[Alert]:
        if str(record.get("action", "")) != "region.lag":
            return None
        attrs = record.get("attrs") or {}
        if not isinstance(attrs, dict):
            return None
        region = str(attrs.get("region", record.get("resource", "")))
        try:
            lag = float(attrs.get("lag", 0.0))
            bound = float(attrs.get("bound", 0.0))
        except (TypeError, ValueError):
            return None
        if bound <= 0.0 or lag <= bound:
            return None
        t = float(record.get("time", 0.0))
        last = self._last_alert.get(region)
        if last is not None and t - last < self.window:
            return None
        self._last_alert[region] = t
        return Alert(
            time=t,
            rule=self.name,
            severity=self.severity,
            actor="",   # region degradation: nothing to contain
            summary=self.summary.format(region=region, lag=lag, bound=bound),
            evidence_count=1,
        )


@dataclass
class RetryStormRule(DetectionRule):
    """Alert when the retry-storm guard keeps refusing retries toward one
    destination.

    The tail-tolerance layer audits every budget-refused retry as a
    ``retry.budget_exhausted`` record (source ``resilience``, resource =
    destination).  Scattered refusals are the budget doing routine
    shaping; a *burst* of them against a single destination means the
    fleet's clients are collectively amplifying an outage — a retry
    storm in progress that only the budgets are containing.  Keyed by
    destination (not actor): the storm is a property of the dependency,
    contributed to by many clients.  One alert per destination per
    ``window`` seconds.
    """

    name: str = "retry-storm"
    severity: str = "high"
    window: float = 30.0
    count: int = 10
    summary: str = ("retry storm toward {dst}: {count} retries refused "
                    "by budget in 30s")
    _hits: Dict[str, Deque[float]] = field(
        default_factory=lambda: defaultdict(deque))
    _last_alert: Dict[str, float] = field(default_factory=dict)

    def observe(self, record: Dict[str, object]) -> Optional[Alert]:
        if str(record.get("action", "")) != "retry.budget_exhausted":
            return None
        dst = str(record.get("resource", ""))
        t = float(record.get("time", 0.0))
        hits = self._hits[dst]
        hits.append(t)
        while hits and hits[0] <= t - self.window:
            hits.popleft()
        if len(hits) < self.count:
            return None
        last = self._last_alert.get(dst)
        if last is not None and t - last < self.window:
            return None
        self._last_alert[dst] = t
        return Alert(
            time=t,
            rule=self.name,
            severity=self.severity,
            actor="",   # dependency saturation: no principal to contain
            summary=self.summary.format(dst=dst, count=len(hits)),
            evidence_count=len(hits),
        )


class UnexplainedDecisionRule(DetectionRule):
    """A decision-bearing record the provenance ledger cannot explain.

    Every admission decision on the four enforcement surfaces must have
    a matching :class:`~repro.telemetry.provenance.DecisionRecord` — the
    audit bridge writes the ledger synchronously at emit time, strictly
    before the forwarders ship the record here.  A shipped decision
    whose actor *and* trace are both unknown to the ledger is therefore
    a forged or replayed log entry (the provenance-side sibling of the
    span-side ``TraceIntegrityRule``).  Severity is medium, not high:
    an integrity signal for an analyst, never an auto-containment
    trigger — the actor named in a forged record is the forgery's
    victim, not its author.  One alert per (actor, action).
    """

    name = "unexplained-decision"
    severity = "medium"
    DECISION_ACTIONS = frozenset({
        "rbac.mint", "rbac.denied", "ssh.session", "zenith.register",
        "jupyter.auth", "job.submit", "authz.fail_closed",
    })
    DECISION_OUTCOMES = frozenset({"success", "denied", "cached", "shed"})

    def __init__(self, ledger) -> None:
        self.ledger = ledger
        self.checked = 0
        self.unexplained = 0
        self._alerted: set = set()

    def observe(self, record: Dict[str, object]) -> Optional[Alert]:
        action = str(record.get("action", ""))
        if action not in self.DECISION_ACTIONS:
            return None
        if record.get("outcome") not in self.DECISION_OUTCOMES:
            return None
        self.checked += 1
        actor = str(record.get("actor", "") or "")
        attrs = record.get("attrs", {}) or {}
        trace_id = str(attrs.get("trace_id", "") or "")
        if actor and self.ledger.explain(actor):
            return None
        if trace_id and self.ledger.explain_trace(trace_id):
            return None
        self.unexplained += 1
        key = (actor, action)
        if key in self._alerted:
            return None
        self._alerted.add(key)
        return Alert(
            time=float(record.get("time", 0.0)),
            rule=self.name,
            severity=self.severity,
            actor=actor,
            summary=(f"decision {action}/{record.get('outcome')} for "
                     f"{actor or '?'} has no provenance record"),
            evidence_count=1,
        )


def _denied(action_prefix: str):
    def pred(r: Dict[str, object]) -> bool:
        return (str(r.get("action", "")).startswith(action_prefix)
                and r.get("outcome") == "denied")
    return pred


def standard_rules() -> List[DetectionRule]:
    """The default SOC rule pack."""
    return [
        ThresholdRule(
            name="auth-bruteforce",
            severity="high",
            window=60.0,
            count=5,
            summary="{count} failed authentications for {actor} in 60s",
            predicate=lambda r: (
                str(r.get("action", "")).endswith(".login")
                and r.get("outcome") == "denied"
            ),
        ),
        ThresholdRule(
            name="segmentation-probe",
            severity="high",
            window=30.0,
            count=3,
            summary="{actor} probed blocked network paths {count} times in 30s",
            predicate=_denied("firewall."),
        ),
        ThresholdRule(
            name="token-abuse",
            severity="critical",
            window=300.0,
            count=1,
            summary="authorization-code replay detected for {actor}",
            predicate=lambda r: str(r.get("action", "")) == "token.code_replayed",
        ),
        ThresholdRule(
            name="mgmt-access-denied",
            severity="critical",
            window=60.0,
            count=2,
            summary="{count} denied management-plane accesses by {actor}",
            predicate=lambda r: (
                str(r.get("action", "")).startswith("mgmt.")
                and r.get("outcome") == "denied"
            ) or (
                str(r.get("action", "")) == "tailnet.relay"
                and r.get("outcome") == "denied"
            ),
        ),
        DistinctTargetsRule(
            name="lateral-probe",
            severity="high",
            window=120.0,
            count=3,
            summary="{actor} probed {count} distinct blocked targets in 2 min",
            predicate=_denied("firewall."),
        ),
        ThresholdRule(
            name="environment-critical",
            severity="medium",
            window=600.0,
            count=1,
            summary="DCIM threshold breach: {actor}",
            predicate=lambda r: str(r.get("action", "")) == "dcim.threshold",
            key=lambda r: str(r.get("resource", r.get("actor", ""))),
        ),
        ThresholdRule(
            name="ssh-cert-failures",
            severity="medium",
            window=120.0,
            count=4,
            summary="{count} rejected SSH sessions for {actor} in 2 min",
            predicate=lambda r: (
                str(r.get("action", "")) == "ssh.session"
                and r.get("outcome") == "denied"
            ),
        ),
        # inert without the scale subsystem (seed mode never emits a
        # "cached" outcome), so it ships in the default pack
        CacheStalenessRule(),
        # likewise inert without the region tier ("region.lag" records
        # only exist in multi-region deployments)
        RegionLagRule(),
        # and inert without the tail layer ("retry.budget_exhausted"
        # records only exist when a TailConfig enables the retry budget)
        RetryStormRule(),
    ]
