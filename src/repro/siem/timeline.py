"""Incident timeline reconstruction — the SOC analyst's first tool.

Given a principal (or any identifier that appears in events), pull every
related record from the combined audit trail into one chronological
narrative: which identities map to it, what succeeded, what was denied,
when detections fired and when containment landed.  The cross-domain
correlation works because identifiers are threaded through the system
deliberately: the broker subject appears in token mints, the unix
account in SSH/bastion events, the jti links a mint to later denials.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Set

from repro.audit import AuditEvent

__all__ = ["TimelineEntry", "IncidentTimeline", "build_timeline",
           "build_trace_timeline", "join_provenance"]


@dataclass(frozen=True)
class TimelineEntry:
    time: float
    domain: str
    source: str
    action: str
    outcome: str
    detail: str
    trace_id: str = ""   # request the event was emitted under, if any
    rule: str = ""       # matched policy rule (joined from provenance)


@dataclass
class IncidentTimeline:
    subject: str
    correlated_ids: Set[str]
    entries: List[TimelineEntry]

    @property
    def first_seen(self) -> Optional[float]:
        return self.entries[0].time if self.entries else None

    @property
    def last_seen(self) -> Optional[float]:
        return self.entries[-1].time if self.entries else None

    def denials(self) -> List[TimelineEntry]:
        return [e for e in self.entries if e.outcome == "denied"]

    def shed(self) -> List[TimelineEntry]:
        """Overload drops — NOT policy denials; an analyst reading the
        timeline must not mistake load shedding for access refusals."""
        return [e for e in self.entries if e.outcome in ("shed", "expired")]

    def cached(self) -> List[TimelineEntry]:
        """Decisions served from a replica cache rather than fresh
        validation — the entries the staleness oracle cross-checks
        against revocation events."""
        return [e for e in self.entries if e.outcome == "cached"]

    def containment(self) -> Optional[TimelineEntry]:
        for e in self.entries:
            if e.action.startswith("killswitch.") or e.action.endswith(".flag"):
                return e
        return None

    def render(self) -> str:
        lines = [
            f"INCIDENT TIMELINE for {self.subject}",
            f"correlated identifiers: {sorted(self.correlated_ids)}",
            f"{len(self.entries)} events, {len(self.denials())} denials, "
            f"{len(self.shed())} shed/expired",
            "",
        ]
        for e in self.entries:
            # shed (~) and expired (x) get their own marks so overload
            # drops never read as denials (!); cache-served decisions (c)
            # are flagged because they rest on earlier validation work
            mark = {"denied": "!", "error": "E", "success": " ",
                    "info": " ", "shed": "~", "expired": "x",
                    "cached": "c"}.get(e.outcome, "?")
            line = (
                f"  t={e.time:10.3f} [{mark}] {e.domain or '-':<8} "
                f"{e.source:<14} {e.action:<26} {e.detail}"
            )
            if e.rule:
                line += f" <rule: {e.rule}>"
            lines.append(line)
        return "\n".join(lines)


def _related(event: AuditEvent, ids: Set[str]) -> bool:
    if event.actor in ids or event.resource in ids:
        return True
    return any(
        isinstance(v, str) and v in ids for v in event.attrs.values()
    )


def build_timeline(dri, subject: str, *, max_passes: int = 3) -> IncidentTimeline:
    """Correlate everything about ``subject`` across the audit trail.

    Correlation expands transitively (bounded by ``max_passes``): the
    subject's token jtis, unix accounts, session ids and tailnet node
    ids found in pass *n* pull in the events that reference them in
    pass *n+1*.
    """
    events = dri.audit.events()
    # identifiers must be specific to the incident: infrastructure names
    # (endpoints), system actors and prose (alert summaries) are excluded
    # or correlation would snowball through shared services like the SOC
    infrastructure = {ep.name for ep in dri.network.endpoints()}
    infrastructure |= {"system", "network", "killswitch", "operator",
                       "dcim", "soc", "ops", "*", ""}

    def usable(candidate: str) -> bool:
        return (bool(candidate) and candidate not in infrastructure
                and " " not in candidate)

    ids: Set[str] = {subject}
    matched: List[AuditEvent] = []
    for _pass in range(max_passes):
        matched = [e for e in events if _related(e, ids)]
        expanded = set(ids)
        for e in matched:
            # when one side of an event is a known identifier, the other
            # side joins the correlation (actor <-> resource pivot)
            if e.actor in ids and usable(e.resource):
                expanded.add(e.resource)
            if e.resource in ids and usable(e.actor):
                expanded.add(e.actor)
        if expanded == ids:
            break
        ids = expanded

    entries = [
        TimelineEntry(
            time=e.time,
            domain=e.domain,
            source=e.source,
            action=e.action,
            outcome=e.outcome,
            detail=(f"{e.actor} -> {e.resource}"
                    + (f" ({e.attrs.get('reason')})"
                       if e.attrs.get("reason") else "")),
            trace_id=str(e.attrs.get("trace_id", "")),
        )
        for e in sorted(matched, key=lambda e: (e.time, e.source))
    ]
    return IncidentTimeline(subject=subject, correlated_ids=ids,
                            entries=entries)


def build_trace_timeline(dri, trace_id: str) -> IncidentTimeline:
    """Reconstruct one traced request from the audit trail alone.

    Every audit event emitted while serving a traced request carries its
    ``trace_id`` attribute (stamped by the transport and by
    ``Service.log_event``), so the full request tree — every delivered
    hop, denial, shed and expiry across all domains — can be rebuilt
    without touching the span store.  This is the audit-side half of the
    trace↔audit correlation; the span-side half is
    ``repro.telemetry.analysis``.
    """
    matched = [
        e for e in dri.audit.events()
        if e.attrs.get("trace_id") == trace_id
    ]
    actors = {e.actor for e in matched if e.actor}
    entries = [
        TimelineEntry(
            time=e.time,
            domain=e.domain,
            source=e.source,
            action=e.action,
            outcome=e.outcome,
            detail=(f"{e.actor} -> {e.resource}"
                    + (f" ({e.attrs.get('reason')})"
                       if e.attrs.get("reason") else "")),
            trace_id=trace_id,
        )
        for e in sorted(matched, key=lambda e: (e.time, e.source))
    ]
    return IncidentTimeline(subject=trace_id,
                            correlated_ids={trace_id} | actors,
                            entries=entries)


def join_provenance(timeline: IncidentTimeline, ledger) -> int:
    """Annotate timeline entries with the policy rule that produced
    their decision, joined from the provenance ledger by trace id (and
    decision time, to pick the right record when one trace carries
    several decisions).  Returns the number of entries annotated —
    the analyst's check that the audit trail and the ledger agree."""
    annotated = 0
    entries: List[TimelineEntry] = []
    for entry in timeline.entries:
        rule = ""
        if entry.trace_id and not entry.rule:
            records = ledger.explain_trace(entry.trace_id)
            same_time = [r for r in records if r.time == entry.time]
            for rec in same_time or records:
                if rec.rule or rec.reason:
                    rule = rec.rule or rec.reason
                    break
        if rule:
            entry = replace(entry, rule=rule)
            annotated += 1
        entries.append(entry)
    timeline.entries = entries
    return annotated
