"""Log forwarders: domain audit streams → the SOC in the Security zone.

§III.B: SWS gathers logs from all resources in the MDCs and forwards
them, together with bastion and login-node logs, to SEC for ingestion by
the 24/7 monitoring service.  "They ingest a limited amount of data that
has been agreed with the University's security team" — hence the
*filter*: a forwarder ships only the fields/actions on its agreed list,
never raw payloads.

Forwarders batch and flush on a timer (simulated-clock events), so the
SOC's detection latency is the forwarding interval plus rule evaluation
— measurable in the kill-switch ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.audit import AuditEvent, AuditLog
from repro.clock import SimClock

__all__ = ["event_to_record", "LogForwarder"]


def event_to_record(event: AuditEvent) -> Dict[str, object]:
    """The agreed, limited wire format (no free-form payload fields)."""
    return {
        "time": event.time,
        "source": event.source,
        "actor": event.actor,
        "action": event.action,
        "resource": event.resource,
        "outcome": event.outcome,
        "domain": event.domain,
        "zone": event.zone,
        "attrs": {k: v for k, v in event.attrs.items()
                  if k in ("reason", "rule", "port", "via", "node")},
    }


class LogForwarder:
    """Subscribes to audit logs and ships batches to a sink on a timer.

    Parameters
    ----------
    sink:
        Callable receiving a list of records (the SOC's ingest, possibly
        via the network).
    interval:
        Flush period in seconds.
    actions_filter:
        If given, only events whose action starts with one of these
        prefixes are shipped (the "limited amount of data" agreement).
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        sink: Callable[[List[Dict[str, object]]], None],
        *,
        interval: float = 5.0,
        actions_filter: Optional[Sequence[str]] = None,
    ) -> None:
        self.name = name
        self.clock = clock
        self.sink = sink
        self.interval = interval
        self.actions_filter = tuple(actions_filter) if actions_filter else None
        self._buffer: List[Dict[str, object]] = []
        self.shipped = 0
        self.dropped = 0
        self._running = False

    # ------------------------------------------------------------------
    def watch(self, log: AuditLog) -> None:
        """Subscribe to a domain's audit stream."""
        log.subscribe(self._on_event)

    def _on_event(self, event: AuditEvent) -> None:
        if self.actions_filter is not None and not any(
            event.action.startswith(p) for p in self.actions_filter
        ):
            self.dropped += 1
            return
        self._buffer.append(event_to_record(event))

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic flush."""
        if self._running:
            return
        self._running = True
        self.clock.call_later(self.interval, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self.flush()
        self.clock.call_later(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False

    def flush(self) -> int:
        """Ship the buffered batch now; returns records shipped."""
        if not self._buffer:
            return 0
        batch, self._buffer = self._buffer, []
        self.sink(batch)
        self.shipped += len(batch)
        return len(batch)
