"""Log forwarders: domain audit streams → the SOC in the Security zone.

§III.B: SWS gathers logs from all resources in the MDCs and forwards
them, together with bastion and login-node logs, to SEC for ingestion by
the 24/7 monitoring service.  "They ingest a limited amount of data that
has been agreed with the University's security team" — hence the
*filter*: a forwarder ships only the fields/actions on its agreed list,
never raw payloads.

Forwarders batch and flush on a timer (simulated-clock events), so the
SOC's detection latency is the forwarding interval plus rule evaluation
— measurable in the kill-switch ablation bench.

The buffer is durable across sink outages: if the sink raises (SOC
endpoint down, network partition), the batch is retained and replayed on
a later flush, so an audit record is only ever lost when the bounded
buffer overflows — and then it is *counted* (``lost``), never silently
discarded.  The chaos ablation (ABL6) rides a SIEM sink outage on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.audit import AuditEvent, AuditLog
from repro.clock import SimClock
from repro.errors import ReproError
from repro.resilience.durability import Durable

__all__ = ["event_to_record", "LogForwarder"]


def event_to_record(event: AuditEvent) -> Dict[str, object]:
    """The agreed, limited wire format (no free-form payload fields)."""
    return {
        "time": event.time,
        "source": event.source,
        "actor": event.actor,
        "action": event.action,
        "resource": event.resource,
        "outcome": event.outcome,
        "domain": event.domain,
        "zone": event.zone,
        "attrs": {k: v for k, v in event.attrs.items()
                  if k in ("reason", "rule", "port", "via", "node",
                           "trace_id", "jti", "region", "lag", "bound",
                           "spiffe_id")},
    }


class LogForwarder(Durable):
    """Subscribes to audit logs and ships batches to a sink on a timer.

    With a journal attached the buffer is durable across *forwarder
    crashes* too: every accepted record is journaled before it is
    buffered, and a successful flush snapshots the (now smaller) buffer,
    truncating the journal.  A restarted forwarder therefore resumes with
    every pre-crash record still queued — nothing the emitting services
    logged before the crash is lost on its way to the SOC.

    Parameters
    ----------
    sink:
        Callable receiving a list of records (the SOC's ingest, possibly
        via the network).  May raise :class:`ReproError` when the SOC is
        unreachable; the batch is then retained for replay.
    interval:
        Flush period in seconds.
    actions_filter:
        If given, only events whose action starts with one of these
        prefixes are shipped (the "limited amount of data" agreement).
    max_buffer:
        Bound on retained records; the oldest are evicted (and counted in
        ``lost``) when a sink outage outlasts the buffer.
    retain_on_failure:
        ``False`` restores the legacy fail-and-forget behaviour where a
        batch whose sink call raises is gone — kept only so the chaos
        ablation can show what durability buys.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        sink: Callable[[List[Dict[str, object]]], None],
        *,
        interval: float = 5.0,
        actions_filter: Optional[Sequence[str]] = None,
        max_buffer: int = 10_000,
        retain_on_failure: bool = True,
    ) -> None:
        self.name = name
        self.clock = clock
        self.sink = sink
        self.interval = interval
        self.actions_filter = tuple(actions_filter) if actions_filter else None
        self.max_buffer = max_buffer
        self.retain_on_failure = retain_on_failure
        self._buffer: List[Dict[str, object]] = []
        self.shipped = 0
        self.dropped = 0        # filtered out by the agreed-actions list
        self.lost = 0           # lost to buffer overflow / legacy mode
        self.sink_failures = 0
        self.last_sink_error: Optional[str] = None
        self._running = False

    # ------------------------------------------------------------------
    def watch(self, log: AuditLog) -> None:
        """Subscribe to a domain's audit stream."""
        log.subscribe(self._on_event)

    def _on_event(self, event: AuditEvent) -> None:
        if self.actions_filter is not None and not any(
            event.action.startswith(p) for p in self.actions_filter
        ):
            self.dropped += 1
            return
        record = event_to_record(event)
        self._jpublish("fw.accept", **record)
        self._buffer.append(record)
        self._enforce_cap()

    def _enforce_cap(self) -> None:
        overflow = len(self._buffer) - self.max_buffer
        if overflow > 0:
            del self._buffer[:overflow]
            self.lost += overflow

    def buffered(self) -> int:
        """Records currently awaiting shipment."""
        return len(self._buffer)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic flush."""
        if self._running:
            return
        self._running = True
        self.clock.call_later(self.interval, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self.flush()
        self.clock.call_later(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False

    def flush(self) -> int:
        """Ship the buffered batch now; returns records shipped.

        The buffer is swapped out before the sink call (the sink's own
        network traffic may emit events that land back here); on failure
        the batch is re-queued ahead of anything that arrived meanwhile,
        preserving record order for the SOC's detection windows.
        """
        if not self._buffer:
            return 0
        batch, self._buffer = self._buffer, []
        try:
            self.sink(batch)
        except ReproError as exc:
            self.sink_failures += 1
            self.last_sink_error = str(exc)
            if self.retain_on_failure:
                self._buffer = batch + self._buffer
                self._enforce_cap()
            else:
                self.lost += len(batch)
            return 0
        self.shipped += len(batch)
        if self.journal is not None:
            # a successful ship is the natural checkpoint: snapshot the
            # residual buffer and truncate the journal behind it
            self.journal.snapshot(self.durable_state())
        return len(batch)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def durable_state(self) -> Dict[str, object]:
        return {
            "buffer": [dict(r) for r in self._buffer],
            "shipped": self.shipped, "dropped": self.dropped,
            "lost": self.lost, "sink_failures": self.sink_failures,
        }

    def wipe_state(self) -> None:
        self._buffer = []
        self.shipped = 0
        self.dropped = 0
        self.lost = 0
        self.sink_failures = 0
        self._running = False

    def load_state(self, state: Dict[str, object]) -> None:
        self._buffer = [dict(r) for r in state["buffer"]]
        self.shipped = int(state["shipped"])
        self.dropped = int(state["dropped"])
        self.lost = int(state["lost"])
        self.sink_failures = int(state["sink_failures"])

    def apply_entry(self, kind: str, data: Dict[str, object]) -> None:
        if kind == "fw.accept":
            self._buffer.append(dict(data))
            self._enforce_cap()
