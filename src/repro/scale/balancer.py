"""Replica pools and the deterministic load balancer.

A :class:`ReplicaPool` runs N stateless :class:`ReplicaWorker` fronts
for one origin service — the Deployment-of-pods model: each worker has
its own network endpoint, its own admission-control bucket and its own
circuit-breaker target, while the application state stays in the shared
origin (the way replicated token validators share one token store in
systems like Gafaelfawr).  A :class:`LoadBalancer` owns the pool's
public endpoint name, picks a worker per request under a pluggable
policy and fails over to the next candidate when a worker is down,
circuit-broken or shedding.

Every balanced hop goes through :meth:`Service.call`, so client/server
spans, deadline propagation and priority inheritance compose unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..audit import Outcome
from ..clock import SimClock
from ..errors import (
    AttemptTimeout,
    ConfigurationError,
    DeadlineExceeded,
    RateLimited,
    ServiceUnavailable,
)
from ..net.http import HttpRequest, HttpResponse, Service
from ..resilience.breaker import CircuitBreaker
from ..resilience.tail import (
    HedgeBudget,
    LatencyTracker,
    OutlierEjector,
    TailConfig,
    hedgeable_request,
)
from ..telemetry.context import TraceContext
from .hashring import BoundedLoadRing

__all__ = [
    "ReplicaWorker",
    "ReplicaPool",
    "LoadBalancer",
    "RoundRobinPolicy",
    "LeastOutstandingPolicy",
    "ConsistentHashPolicy",
]


class ReplicaWorker(Service):
    """One stateless worker terminating requests for a shared origin.

    The worker re-dispatches to the origin's route table in-process
    (same pod, shared state backend); what it adds is *capacity
    isolation*: its own admission bucket, endpoint and breaker target.
    """

    def __init__(self, name: str, origin: Service) -> None:
        super().__init__(name)
        self.origin = origin
        self.served = 0

    def handle(self, request: HttpRequest) -> HttpResponse:
        admitted = self._admit(request)
        self._serving.append(request)
        try:
            self.served += 1
            return self.origin.handle(request)
        finally:
            self._serving.pop()
            if admitted:
                self.admission.release()


class ReplicaPool:
    """Manage the worker fleet for one origin service.

    Workers attach to the network as ``<name>-r1 … -rN`` in the same
    domain/zone as the pool.  ``scale_to`` adds or retires workers; the
    balancer and the hash ring observe membership through
    :meth:`replicas` so placement follows the fleet.
    """

    def __init__(
        self,
        name: str,
        network,
        domain,
        zone,
        origin: Service,
        *,
        min_replicas: int = 1,
        max_replicas: int = 8,
        admission_factory: Optional[Callable[[str], object]] = None,
        worker_factory: Optional[Callable[[str, Service], ReplicaWorker]] = None,
    ) -> None:
        self.name = name
        self.network = network
        self.domain = domain
        self.zone = zone
        self.origin = origin
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.admission_factory = admission_factory
        self.worker_factory = worker_factory
        self._workers: Dict[str, ReplicaWorker] = {}
        self._next_index = 0
        self._listeners: List[Callable[[str, str], None]] = []

    # ------------------------------------------------------------------
    def replicas(self) -> List[str]:
        return list(self._workers)

    def worker(self, name: str) -> ReplicaWorker:
        return self._workers[name]

    def size(self) -> int:
        return len(self._workers)

    def on_membership(self, cb: Callable[[str, str], None]) -> None:
        """Register ``cb(event, replica)`` for join/leave notifications."""
        self._listeners.append(cb)

    # ------------------------------------------------------------------
    def add_replica(self) -> str:
        if self.size() >= self.max_replicas:
            raise ValueError(f"pool {self.name} already at max "
                             f"({self.max_replicas}) replicas")
        self._next_index += 1
        name = f"{self.name}-r{self._next_index}"
        factory = self.worker_factory or ReplicaWorker
        worker = factory(name, self.origin)
        if self.admission_factory is not None:
            worker.admission = self.admission_factory(name)
        self.network.attach(worker, self.domain, self.zone, name=name)
        self._workers[name] = worker
        for cb in self._listeners:
            cb("join", name)
        return name

    def remove_replica(self) -> str:
        if self.size() <= self.min_replicas:
            raise ValueError(f"pool {self.name} already at min "
                             f"({self.min_replicas}) replicas")
        # newest-first retirement keeps the survivors' ring arcs stable
        name = list(self._workers)[-1]
        del self._workers[name]
        self.network.detach(name)
        for cb in self._listeners:
            cb("leave", name)
        return name

    def scale_to(self, n: int) -> int:
        n = max(self.min_replicas, min(self.max_replicas, n))
        while self.size() < n:
            self.add_replica()
        while self.size() > n:
            self.remove_replica()
        return self.size()


# ----------------------------------------------------------------------
# balancing policies
# ----------------------------------------------------------------------
class RoundRobinPolicy:
    """Rotate through the fleet; failover order continues the rotation."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def order(self, replicas: List[str], request: HttpRequest,
              outstanding: Dict[str, int]) -> List[str]:
        if not replicas:
            return []
        start = self._cursor % len(replicas)
        # keep the cursor bounded by the fleet size instead of counting
        # up forever (satellite fix: an unbounded int is harmless in
        # Python but wrong as state — and it made snapshots noisy)
        self._cursor = (start + 1) % len(replicas)
        return replicas[start:] + replicas[:start]

    def acquire(self, replica: str) -> None:  # pragma: no cover - no-op
        pass

    def release(self, replica: str) -> None:  # pragma: no cover - no-op
        pass


class LeastOutstandingPolicy:
    """Join-shortest-queue: fewest in-flight requests first, then the
    smallest cumulative count (deterministic tie-break by fleet order)."""

    name = "least-outstanding"

    def __init__(self) -> None:
        self._served: Dict[str, int] = {}

    def order(self, replicas: List[str], request: HttpRequest,
              outstanding: Dict[str, int]) -> List[str]:
        indexed = list(enumerate(replicas))
        indexed.sort(key=lambda pair: (
            outstanding.get(pair[1], 0),
            self._served.get(pair[1], 0),
            pair[0],
        ))
        return [name for _, name in indexed]

    def acquire(self, replica: str) -> None:
        self._served[replica] = self._served.get(replica, 0) + 1

    def release(self, replica: str) -> None:  # pragma: no cover - no-op
        pass

    def forget(self, replica: str) -> None:
        """Purge a departed replica's cumulative count (satellite fix:
        `_served` used to grow forever across membership churn, and a
        re-joined replica inherited its predecessor's count, skewing the
        tie-break against it)."""
        self._served.pop(replica, None)


class ConsistentHashPolicy:
    """Session/tunnel affinity on a bounded-load hash ring.

    ``key_fn`` extracts the affinity key from the request (session
    cookie, tunnel id, client endpoint…); requests with no key fall
    back to the ring walk from the request path, so they still spread.
    """

    name = "consistent-hash"

    def __init__(self, key_fn: Callable[[HttpRequest], Optional[str]],
                 *, vnodes: int = 64, bound: float = 1.25) -> None:
        self.key_fn = key_fn
        self.ring = BoundedLoadRing(vnodes=vnodes, bound=bound)

    def sync(self, replicas: List[str]) -> None:
        current = set(self.ring.members)
        wanted = set(replicas)
        for member in current - wanted:
            self.ring.remove(member)
        for member in sorted(wanted - current):
            self.ring.add(member)

    def order(self, replicas: List[str], request: HttpRequest,
              outstanding: Dict[str, int]) -> List[str]:
        self.sync(replicas)
        key = self.key_fn(request) or request.path
        cap = self.ring.capacity()
        walk: List[str] = []
        preferred: List[str] = []
        overloaded: List[str] = []
        start = self.ring.locate(key)
        # deterministic walk: owner first, then fleet order from there
        idx = replicas.index(start) if start in replicas else 0
        walk = replicas[idx:] + replicas[:idx]
        for member in walk:
            if self.ring.load(member) < cap:
                preferred.append(member)
            else:
                overloaded.append(member)
        return preferred + overloaded

    def acquire(self, replica: str) -> None:
        if replica in self.ring.members:
            self.ring.take(replica)

    def release(self, replica: str) -> None:
        if replica in self.ring.members:
            self.ring.release(replica)


# ----------------------------------------------------------------------
class LoadBalancer(Service):
    """The pool's public endpoint: route, breaker-guard, fail over.

    Owns a per-replica :class:`CircuitBreaker`; a replica that keeps
    failing is skipped for ``recovery_time`` the same way outbound
    resilience kits short-circuit a dead dependency.  Failover moves to
    the next candidate on transport failure (``ServiceUnavailable``,
    including injected faults and open breakers) and on shed
    (``RateLimited``) — spreading a surge across the pool is exactly
    the point — but never on ``DeadlineExceeded``: expired work is
    expired everywhere.

    With a :class:`~repro.resilience.tail.TailConfig` attached the
    balancer also defends the latency tail:

    * each replica attempt carries an adaptive per-attempt deadline
      sized from the pool's observed successful latency (``k × p99``),
      so one gray replica cannot hold a request hostage;
    * read-shaped requests are *hedged*: the first attempt is bounded
      at the much tighter hedge delay, and tripping it is not a fault —
      the immediate failover to the next replica IS the hedge, with
      the abandoned attempt's ``outstanding``/ring load released by
      the same ``finally`` that serves ordinary failover (that *is*
      the loser cancellation);
    * per-replica latency/error EWMAs feed an
      :class:`~repro.resilience.tail.OutlierEjector`: a replica that is
      slow-but-alive is temporarily ejected (probation re-probes it),
      never more than ``max_eject_fraction`` of the fleet and never the
      last candidate.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        pool: ReplicaPool,
        *,
        policy=None,
        audit=None,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        breaker_listener: Optional[Callable] = None,
        tail: Optional[TailConfig] = None,
        telemetry=None,
    ) -> None:
        super().__init__(name)
        self.clock = clock
        self.pool = pool
        self.policy = policy if policy is not None else LeastOutstandingPolicy()
        self.audit = audit
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.breaker_listener = breaker_listener
        self.outstanding: Dict[str, int] = {}
        self.routed = 0
        self.failovers = 0
        self.exhausted = 0
        self._breakers: Dict[str, CircuitBreaker] = {}
        # tail-tolerance state (all None when the tail layer is off).
        # The latency tracker is POOL-wide: the balancer observes
        # successes across the whole fleet, so its timeout/hedge
        # quantiles describe what a healthy replica looks like, not what
        # the gray one does; per-replica scoring lives in the ejector's
        # EWMAs instead
        self.tail = tail
        self.telemetry = telemetry
        self.tracker = LatencyTracker() if tail is not None else None
        self.ejector = OutlierEjector(clock, tail) if tail is not None else None
        self.hedge_budget = \
            HedgeBudget(tail.hedge_budget_ratio) if tail is not None else None
        self.hedges = 0
        self.hedge_wins = 0
        self.attempt_timeouts = 0
        if self.ejector is not None:
            self.ejector.on_reinstate = self._on_reinstate
        pool.on_membership(self._on_membership)

    def _on_reinstate(self, replica: str) -> None:
        if self.telemetry is not None:
            self.telemetry.tail_reinstatements.inc(pool=self.pool.name)
            self.telemetry.tail_ejected.set(0.0, member=replica)
        if self.audit is not None:
            self.log_event("system", "lb.reinstate", replica, Outcome.INFO,
                           pool=self.pool.name)

    def _on_membership(self, event: str, replica: str) -> None:
        """Membership hygiene: a departed replica must not leave counters,
        a breaker or ejection state behind to haunt its name's re-use."""
        if event != "leave":
            return
        self.outstanding.pop(replica, None)
        self._breakers.pop(replica, None)
        forget = getattr(self.policy, "forget", None)
        if forget is not None:
            forget(replica)
        if self.ejector is not None:
            self.ejector.forget(replica)

    # ------------------------------------------------------------------
    def _breaker(self, replica: str) -> CircuitBreaker:
        br = self._breakers.get(replica)
        if br is None:
            br = CircuitBreaker(
                self.clock,
                name=f"{self.name}->{replica}",
                failure_threshold=self.failure_threshold,
                recovery_time=self.recovery_time,
                listener=self.breaker_listener,
            )
            self._breakers[replica] = br
        return br

    def _healthy(self, replica: str) -> bool:
        try:
            ep = self.network.endpoint(replica)
        except ConfigurationError:
            return False
        return bool(ep.up)

    # ------------------------------------------------------------------
    def handle(self, request: HttpRequest) -> HttpResponse:
        admitted = self._admit(request)
        self._serving.append(request)
        try:
            return self._forward(request)
        except (RateLimited, DeadlineExceeded):
            raise
        finally:
            self._serving.pop()
            if admitted:
                self.admission.release()

    def _forward(self, request: HttpRequest) -> HttpResponse:
        replicas = self.pool.replicas()
        candidates = self.policy.order(replicas, request, self.outstanding)
        if self.hedge_budget is not None:
            self.hedge_budget.record_call()
        last_exc: Optional[Exception] = None
        tried = 0
        hedged = False          # a hedge fired somewhere in this call
        hedge_is_next = False   # the NEXT attempt is the hedge duplicate
        for replica in candidates:
            if self.ejector is not None and \
                    self.ejector.is_ejected(replica, candidates):
                continue
            breaker = self._breaker(replica)
            if not self._healthy(replica) or not breaker.allow():
                continue
            if tried:
                if hedge_is_next:
                    # the hedge re-issue is speculation, not failover
                    hedge_is_next = False
                else:
                    self.failovers += 1
                    if self.audit is not None:
                        self.log_event("system", "lb.failover", replica,
                                       Outcome.INFO, pool=self.pool.name,
                                       attempt=tried + 1)
            tried += 1
            # arm this attempt's transport bound: the first attempt of a
            # hedgeable request gets the tight hedge delay (abandoning
            # it fires the hedge), any other attempt the adaptive k×p99
            # timeout — both sized from the POOL's successful latencies
            hedge_armed = False
            bound = None
            if self.tail is not None:
                if (tried == 1 and self.tail.hedging
                        and hedgeable_request(request)
                        and self.hedge_budget.allowed()
                        and self._has_hedge_target(candidates, replica)):
                    bound = self._hedge_delay()
                    hedge_armed = bound is not None
                if bound is None:
                    bound = self._attempt_timeout()
            self.outstanding[replica] = self.outstanding.get(replica, 0) + 1
            self.policy.acquire(replica)
            attempt_started = self.clock.now()
            if bound is not None:
                request.attempt_deadline = attempt_started + bound
            try:
                response = self.call(replica, request)
            except DeadlineExceeded:
                # not the replica's fault; don't trip its breaker
                raise
            except AttemptTimeout as exc:
                elapsed = self.clock.now() - attempt_started
                if hedge_armed:
                    # hedge fired: this bounded attempt is the abandoned
                    # loser; the next candidate serves the speculative
                    # duplicate.  Deliberately NO breaker penalty — a
                    # natural tail latency is not a fault
                    hedged = True
                    hedge_is_next = True
                    self._record_hedge(request, replica, attempt_started)
                    loser = getattr(exc, "span", None)
                    if loser is not None:
                        loser.attrs["cancelled"] = True
                        loser.attrs["hedge"] = "loser"
                else:
                    self.attempt_timeouts += 1
                    if self.telemetry is not None:
                        self.telemetry.tail_attempt_timeouts.inc(
                            pool=self.pool.name)
                    breaker.record_failure()
                self._score(replica, elapsed, ok=False, fleet=candidates)
                last_exc = exc
                continue
            except RateLimited as exc:
                # shed is the replica protecting itself, not gray
                # behaviour: no breaker penalty and no ejection evidence
                last_exc = exc
                continue
            except ServiceUnavailable as exc:
                breaker.record_failure()
                self._score(replica, self.clock.now() - attempt_started,
                            ok=False, fleet=candidates)
                last_exc = exc
                continue
            finally:
                # releases the loser's bookkeeping too: cancelling a
                # hedged attempt must free its outstanding slot and its
                # ring load, or the pool slowly chokes on ghosts
                request.attempt_deadline = None
                self.outstanding[replica] -= 1
                self.policy.release(replica)
            breaker.record_success()
            elapsed = self.clock.now() - attempt_started
            if self.tracker is not None:
                # only successful attempts feed the pool quantiles
                self.tracker.observe(self.name, elapsed)
            self._score(replica, elapsed, ok=True, fleet=candidates)
            if hedged:
                self.hedge_wins += 1
                if self.telemetry is not None:
                    self.telemetry.tail_hedge_wins.inc(pool=self.pool.name)
            self.routed += 1
            return response
        self.exhausted += 1
        if last_exc is not None:
            raise last_exc
        raise ServiceUnavailable(
            f"{self.name}: no healthy replica in pool {self.pool.name}")

    # ------------------------------------------------------------------
    # tail-tolerance internals
    # ------------------------------------------------------------------
    def _hedge_delay(self) -> Optional[float]:
        """The bound on a hedge-armed first attempt, or None while the
        pool lacks evidence (cold start runs unhedged)."""
        if self.tracker.count(self.name) < self.tail.min_samples:
            return None
        return self.tail.hedge_delay_from(
            self.tracker.quantile(self.name, self.tail.hedge_quantile))

    def _attempt_timeout(self) -> Optional[float]:
        """The adaptive per-attempt timeout, or None when disabled or
        still short of evidence."""
        if not self.tail.adaptive_deadlines:
            return None
        if self.tracker.count(self.name) < self.tail.min_samples:
            return None
        return self.tail.clamp_timeout(
            self.tracker.quantile(self.name, self.tail.timeout_quantile))

    def _has_hedge_target(self, candidates: List[str], first: str) -> bool:
        """A hedge only makes sense when another replica could win it."""
        for other in candidates:
            if other == first:
                continue
            if not self._healthy(other):
                continue
            if self.ejector is not None and \
                    self.ejector.is_ejected(other, candidates):
                continue
            return True
        return False

    def _record_hedge(self, request: HttpRequest, abandoned: str,
                      attempt_started: float) -> None:
        self.hedge_budget.consume()
        self.hedges += 1
        if self.telemetry is not None:
            self.telemetry.tail_hedges.inc(pool=self.pool.name)
            self.telemetry.tracer.record(
                "lb.hedge", start=attempt_started, end=self.clock.now(),
                service=self.name, kind="internal",
                ctx=TraceContext.extract(request.headers),
                pool=self.pool.name, abandoned=abandoned)
        if self.audit is not None:
            self.log_event("system", "lb.hedge", abandoned, Outcome.INFO,
                           pool=self.pool.name)

    def _score(self, replica: str, elapsed: float, *, ok: bool,
               fleet: List[str]) -> None:
        """Feed one attempt's outcome to the ejector; eject when both
        justified and safe (never the last usable candidate)."""
        if self.ejector is None or not self.tail.ejection:
            return
        # a slow SUCCESS is ejection evidence too: with adaptive
        # deadlines ablated away, the gray replica's attempts complete
        # (slowly), and the latency EWMA is all the ejector has to go on
        self.ejector.record(replica, elapsed, ok)
        if self.ejector.should_eject(replica, fleet):
            until = self.ejector.eject(replica)
            if self.telemetry is not None:
                self.telemetry.tail_ejections.inc(
                    pool=self.pool.name, replica=replica)
                self.telemetry.tail_ejected.set(1.0, member=replica)
                self.telemetry.tracer.record(
                    "lb.eject", start=self.clock.now(), end=until,
                    service=self.name, kind="internal",
                    pool=self.pool.name, replica=replica)
            if self.audit is not None:
                lat = self.ejector.latency_ewma(replica)
                self.log_event(
                    "system", "lb.eject", replica, Outcome.INFO,
                    pool=self.pool.name, until=round(until, 6),
                    latency_ewma=round(lat if lat is not None else 0.0, 6),
                    error_ewma=round(self.ejector.error_ewma(replica), 6))
