"""Replica pools and the deterministic load balancer.

A :class:`ReplicaPool` runs N stateless :class:`ReplicaWorker` fronts
for one origin service — the Deployment-of-pods model: each worker has
its own network endpoint, its own admission-control bucket and its own
circuit-breaker target, while the application state stays in the shared
origin (the way replicated token validators share one token store in
systems like Gafaelfawr).  A :class:`LoadBalancer` owns the pool's
public endpoint name, picks a worker per request under a pluggable
policy and fails over to the next candidate when a worker is down,
circuit-broken or shedding.

Every balanced hop goes through :meth:`Service.call`, so client/server
spans, deadline propagation and priority inheritance compose unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..audit import Outcome
from ..clock import SimClock
from ..errors import (
    ConfigurationError,
    DeadlineExceeded,
    RateLimited,
    ServiceUnavailable,
)
from ..net.http import HttpRequest, HttpResponse, Service
from ..resilience.breaker import CircuitBreaker
from .hashring import BoundedLoadRing

__all__ = [
    "ReplicaWorker",
    "ReplicaPool",
    "LoadBalancer",
    "RoundRobinPolicy",
    "LeastOutstandingPolicy",
    "ConsistentHashPolicy",
]


class ReplicaWorker(Service):
    """One stateless worker terminating requests for a shared origin.

    The worker re-dispatches to the origin's route table in-process
    (same pod, shared state backend); what it adds is *capacity
    isolation*: its own admission bucket, endpoint and breaker target.
    """

    def __init__(self, name: str, origin: Service) -> None:
        super().__init__(name)
        self.origin = origin
        self.served = 0

    def handle(self, request: HttpRequest) -> HttpResponse:
        admitted = self._admit(request)
        self._serving.append(request)
        try:
            self.served += 1
            return self.origin.handle(request)
        finally:
            self._serving.pop()
            if admitted:
                self.admission.release()


class ReplicaPool:
    """Manage the worker fleet for one origin service.

    Workers attach to the network as ``<name>-r1 … -rN`` in the same
    domain/zone as the pool.  ``scale_to`` adds or retires workers; the
    balancer and the hash ring observe membership through
    :meth:`replicas` so placement follows the fleet.
    """

    def __init__(
        self,
        name: str,
        network,
        domain,
        zone,
        origin: Service,
        *,
        min_replicas: int = 1,
        max_replicas: int = 8,
        admission_factory: Optional[Callable[[str], object]] = None,
        worker_factory: Optional[Callable[[str, Service], ReplicaWorker]] = None,
    ) -> None:
        self.name = name
        self.network = network
        self.domain = domain
        self.zone = zone
        self.origin = origin
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.admission_factory = admission_factory
        self.worker_factory = worker_factory
        self._workers: Dict[str, ReplicaWorker] = {}
        self._next_index = 0
        self._listeners: List[Callable[[str, str], None]] = []

    # ------------------------------------------------------------------
    def replicas(self) -> List[str]:
        return list(self._workers)

    def worker(self, name: str) -> ReplicaWorker:
        return self._workers[name]

    def size(self) -> int:
        return len(self._workers)

    def on_membership(self, cb: Callable[[str, str], None]) -> None:
        """Register ``cb(event, replica)`` for join/leave notifications."""
        self._listeners.append(cb)

    # ------------------------------------------------------------------
    def add_replica(self) -> str:
        if self.size() >= self.max_replicas:
            raise ValueError(f"pool {self.name} already at max "
                             f"({self.max_replicas}) replicas")
        self._next_index += 1
        name = f"{self.name}-r{self._next_index}"
        factory = self.worker_factory or ReplicaWorker
        worker = factory(name, self.origin)
        if self.admission_factory is not None:
            worker.admission = self.admission_factory(name)
        self.network.attach(worker, self.domain, self.zone, name=name)
        self._workers[name] = worker
        for cb in self._listeners:
            cb("join", name)
        return name

    def remove_replica(self) -> str:
        if self.size() <= self.min_replicas:
            raise ValueError(f"pool {self.name} already at min "
                             f"({self.min_replicas}) replicas")
        # newest-first retirement keeps the survivors' ring arcs stable
        name = list(self._workers)[-1]
        del self._workers[name]
        self.network.detach(name)
        for cb in self._listeners:
            cb("leave", name)
        return name

    def scale_to(self, n: int) -> int:
        n = max(self.min_replicas, min(self.max_replicas, n))
        while self.size() < n:
            self.add_replica()
        while self.size() > n:
            self.remove_replica()
        return self.size()


# ----------------------------------------------------------------------
# balancing policies
# ----------------------------------------------------------------------
class RoundRobinPolicy:
    """Rotate through the fleet; failover order continues the rotation."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def order(self, replicas: List[str], request: HttpRequest,
              outstanding: Dict[str, int]) -> List[str]:
        if not replicas:
            return []
        start = self._cursor % len(replicas)
        self._cursor += 1
        return replicas[start:] + replicas[:start]

    def acquire(self, replica: str) -> None:  # pragma: no cover - no-op
        pass

    def release(self, replica: str) -> None:  # pragma: no cover - no-op
        pass


class LeastOutstandingPolicy:
    """Join-shortest-queue: fewest in-flight requests first, then the
    smallest cumulative count (deterministic tie-break by fleet order)."""

    name = "least-outstanding"

    def __init__(self) -> None:
        self._served: Dict[str, int] = {}

    def order(self, replicas: List[str], request: HttpRequest,
              outstanding: Dict[str, int]) -> List[str]:
        indexed = list(enumerate(replicas))
        indexed.sort(key=lambda pair: (
            outstanding.get(pair[1], 0),
            self._served.get(pair[1], 0),
            pair[0],
        ))
        return [name for _, name in indexed]

    def acquire(self, replica: str) -> None:
        self._served[replica] = self._served.get(replica, 0) + 1

    def release(self, replica: str) -> None:  # pragma: no cover - no-op
        pass


class ConsistentHashPolicy:
    """Session/tunnel affinity on a bounded-load hash ring.

    ``key_fn`` extracts the affinity key from the request (session
    cookie, tunnel id, client endpoint…); requests with no key fall
    back to the ring walk from the request path, so they still spread.
    """

    name = "consistent-hash"

    def __init__(self, key_fn: Callable[[HttpRequest], Optional[str]],
                 *, vnodes: int = 64, bound: float = 1.25) -> None:
        self.key_fn = key_fn
        self.ring = BoundedLoadRing(vnodes=vnodes, bound=bound)

    def sync(self, replicas: List[str]) -> None:
        current = set(self.ring.members)
        wanted = set(replicas)
        for member in current - wanted:
            self.ring.remove(member)
        for member in sorted(wanted - current):
            self.ring.add(member)

    def order(self, replicas: List[str], request: HttpRequest,
              outstanding: Dict[str, int]) -> List[str]:
        self.sync(replicas)
        key = self.key_fn(request) or request.path
        cap = self.ring.capacity()
        walk: List[str] = []
        preferred: List[str] = []
        overloaded: List[str] = []
        start = self.ring.locate(key)
        # deterministic walk: owner first, then fleet order from there
        idx = replicas.index(start) if start in replicas else 0
        walk = replicas[idx:] + replicas[:idx]
        for member in walk:
            if self.ring.load(member) < cap:
                preferred.append(member)
            else:
                overloaded.append(member)
        return preferred + overloaded

    def acquire(self, replica: str) -> None:
        if replica in self.ring.members:
            self.ring.take(replica)

    def release(self, replica: str) -> None:
        if replica in self.ring.members:
            self.ring.release(replica)


# ----------------------------------------------------------------------
class LoadBalancer(Service):
    """The pool's public endpoint: route, breaker-guard, fail over.

    Owns a per-replica :class:`CircuitBreaker`; a replica that keeps
    failing is skipped for ``recovery_time`` the same way outbound
    resilience kits short-circuit a dead dependency.  Failover moves to
    the next candidate on transport failure (``ServiceUnavailable``,
    including injected faults and open breakers) and on shed
    (``RateLimited``) — spreading a surge across the pool is exactly
    the point — but never on ``DeadlineExceeded``: expired work is
    expired everywhere.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        pool: ReplicaPool,
        *,
        policy=None,
        audit=None,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        breaker_listener: Optional[Callable] = None,
    ) -> None:
        super().__init__(name)
        self.clock = clock
        self.pool = pool
        self.policy = policy if policy is not None else LeastOutstandingPolicy()
        self.audit = audit
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.breaker_listener = breaker_listener
        self.outstanding: Dict[str, int] = {}
        self.routed = 0
        self.failovers = 0
        self.exhausted = 0
        self._breakers: Dict[str, CircuitBreaker] = {}

    # ------------------------------------------------------------------
    def _breaker(self, replica: str) -> CircuitBreaker:
        br = self._breakers.get(replica)
        if br is None:
            br = CircuitBreaker(
                self.clock,
                name=f"{self.name}->{replica}",
                failure_threshold=self.failure_threshold,
                recovery_time=self.recovery_time,
                listener=self.breaker_listener,
            )
            self._breakers[replica] = br
        return br

    def _healthy(self, replica: str) -> bool:
        try:
            ep = self.network.endpoint(replica)
        except ConfigurationError:
            return False
        return bool(ep.up)

    # ------------------------------------------------------------------
    def handle(self, request: HttpRequest) -> HttpResponse:
        admitted = self._admit(request)
        self._serving.append(request)
        try:
            return self._forward(request)
        except (RateLimited, DeadlineExceeded):
            raise
        finally:
            self._serving.pop()
            if admitted:
                self.admission.release()

    def _forward(self, request: HttpRequest) -> HttpResponse:
        replicas = self.pool.replicas()
        candidates = self.policy.order(replicas, request, self.outstanding)
        last_exc: Optional[Exception] = None
        tried = 0
        for replica in candidates:
            breaker = self._breaker(replica)
            if not self._healthy(replica) or not breaker.allow():
                continue
            if tried:
                self.failovers += 1
                if self.audit is not None:
                    self.log_event("system", "lb.failover", replica,
                                   Outcome.INFO, pool=self.pool.name,
                                   attempt=tried + 1)
            tried += 1
            self.outstanding[replica] = self.outstanding.get(replica, 0) + 1
            self.policy.acquire(replica)
            try:
                response = self.call(replica, request)
            except DeadlineExceeded:
                # not the replica's fault; don't trip its breaker
                raise
            except RateLimited as exc:
                last_exc = exc
                continue
            except ServiceUnavailable as exc:
                breaker.record_failure()
                last_exc = exc
                continue
            finally:
                self.outstanding[replica] -= 1
                self.policy.release(replica)
            breaker.record_success()
            self.routed += 1
            return response
        self.exhausted += 1
        if last_exc is not None:
            raise last_exc
        raise ServiceUnavailable(
            f"{self.name}: no healthy replica in pool {self.pool.name}")
