"""Consistent-hash ring with bounded loads.

The affinity policy of the load balancer: session and tunnel keys map
to replicas via a classic virtual-node hash ring (sha256, so placement
is identical across processes and runs — no Python hash randomisation),
with the *bounded loads* refinement from Mirrokni/Thorup/Zadimoghaddam:
no replica may carry more than ``ceil(c · total/n)`` outstanding
assignments; an overloaded candidate is skipped and the walk continues
clockwise, which preserves both the cap and (mostly) the affinity.

Key movement on membership change is minimal by construction: only the
keys whose ring arc lands on the joining/leaving node move.
"""

from __future__ import annotations

import hashlib
import math
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["BoundedLoadRing"]


def _h(data: str) -> int:
    return int.from_bytes(hashlib.sha256(data.encode()).digest()[:8], "big")


class BoundedLoadRing:
    """Deterministic consistent-hash ring with a bounded-load cap.

    Parameters
    ----------
    vnodes:
        Virtual nodes per member — smooths the arc distribution.
    bound:
        Load-balance factor ``c`` (> 1).  A member's live load may not
        exceed ``ceil(c * (total_load + 1) / members)``.
    """

    def __init__(self, members: Iterable[str] = (), *,
                 vnodes: int = 64, bound: float = 1.25) -> None:
        if bound <= 1.0:
            raise ValueError("bound factor must exceed 1.0")
        self.vnodes = vnodes
        self.bound = bound
        self._members: List[str] = []
        self._ring: List[Tuple[int, str]] = []
        self._load: Dict[str, int] = {}
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def members(self) -> List[str]:
        return list(self._members)

    def add(self, member: str) -> None:
        if member in self._load:
            raise ValueError(f"member {member!r} already on the ring")
        self._members.append(member)
        self._load[member] = 0
        for v in range(self.vnodes):
            self._ring.append((_h(f"{member}#{v}"), member))
        self._ring.sort()

    def remove(self, member: str) -> None:
        if member not in self._load:
            raise KeyError(member)
        self._members.remove(member)
        del self._load[member]
        self._ring = [(pos, m) for pos, m in self._ring if m != member]

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def capacity(self) -> int:
        """Per-member live-load cap at the current total load."""
        total = sum(self._load.values())
        return max(1, math.ceil(self.bound * (total + 1) / len(self._load)))

    def locate(self, key: str) -> str:
        """Pure placement: the ring owner of ``key``, ignoring loads."""
        member = self._walk(key, cap=None)
        assert member is not None
        return member

    def assign(self, key: str) -> str:
        """Place ``key`` honouring the bounded-load cap and take a slot.

        Callers must :meth:`release` the member when the work finishes.
        """
        member = self._walk(key, cap=self.capacity())
        if member is None:  # every member at cap — take the pure owner
            member = self.locate(key)
        self._load[member] += 1
        return member

    def take(self, member: str) -> None:
        """Count one live assignment against ``member`` (external placement)."""
        if member not in self._load:
            raise KeyError(member)
        self._load[member] += 1

    def release(self, member: str) -> None:
        if self._load.get(member, 0) > 0:
            self._load[member] -= 1

    def load(self, member: str) -> int:
        return self._load.get(member, 0)

    def _walk(self, key: str, cap: Optional[int]) -> Optional[str]:
        if not self._ring:
            raise RuntimeError("hash ring has no members")
        start = bisect_right(self._ring, (_h(key), "￿"))
        seen = set()
        for i in range(len(self._ring)):
            _, member = self._ring[(start + i) % len(self._ring)]
            if member in seen:
                continue
            seen.add(member)
            if cap is None or self._load[member] < cap:
                return member
        return None
