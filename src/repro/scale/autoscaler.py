"""Metric-driven autoscaling for replica pools.

The :class:`Autoscaler` closes the loop between the telemetry the
deployment already emits and the fleet size: every ``interval`` of
simulated time it reads the RED counters for the pool's replicas
(requests by outcome, from :class:`repro.telemetry.Telemetry`), computes
the window's shed/expired fraction, and grows the pool when overload
protection is visibly discarding work — or shrinks it after a run of
quiet windows.  SLO burn-rate pages short-circuit the maths: a page for
a watched service forces a grow decision at the next tick.

Everything is driven by :class:`~repro.clock.SimClock` callbacks, so
scaling decisions are fully deterministic and replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..audit import Outcome
from ..clock import SimClock

__all__ = ["Autoscaler", "ScaleDecision"]

_LOSS_OUTCOMES = ("shed", "expired", "unavailable", "error")


@dataclass(frozen=True)
class ScaleDecision:
    time: float
    pool: str
    direction: str  # "grow" | "shrink" | "hold"
    from_replicas: int
    to_replicas: int
    loss_rate: float
    reason: str


class Autoscaler:
    """Grow/shrink one :class:`~repro.scale.balancer.ReplicaPool`.

    Parameters
    ----------
    loss_up / loss_down:
        Window loss-fraction thresholds: above ``loss_up`` the pool
        grows by ``step``; below ``loss_down`` for ``down_after``
        consecutive windows it shrinks by one.
    watch_services:
        SLO monitor ``service`` labels whose burn-rate pages force a
        grow at the next evaluation.
    """

    def __init__(
        self,
        clock: SimClock,
        pool,
        telemetry,
        *,
        interval: float = 5.0,
        loss_up: float = 0.02,
        loss_down: float = 0.002,
        down_after: int = 3,
        step: int = 1,
        watch_services: Tuple[str, ...] = (),
        audit=None,
        audit_source: str = "autoscaler",
    ) -> None:
        self.clock = clock
        self.pool = pool
        self.telemetry = telemetry
        self.interval = interval
        self.loss_up = loss_up
        self.loss_down = loss_down
        self.down_after = down_after
        self.step = step
        self.watch_services = tuple(watch_services)
        self.audit = audit
        self.audit_source = audit_source
        self.decisions: List[ScaleDecision] = []
        self._snapshot: Dict[Tuple[str, str], float] = {}
        self._quiet_windows = 0
        self._paged = False
        self._ticker = None
        if self.watch_services:
            telemetry.on_slo_alert(self._on_page)
        telemetry.pool_size.set(float(pool.size()), pool=pool.name)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic evaluation chain."""
        if self._ticker is None:
            self._ticker = self.clock.call_later(self.interval, self._tick)

    def stop(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            self._ticker = None

    def _tick(self) -> None:
        self.evaluate()
        self._ticker = self.clock.call_later(self.interval, self._tick)

    def _on_page(self, alert) -> None:
        if alert.service in self.watch_services:
            self._paged = True

    # ------------------------------------------------------------------
    def window_loss(self) -> Tuple[float, float]:
        """(loss fraction, total requests) for the pool since last tick."""
        counter = self.telemetry.hop_requests
        series = counter.series()
        replicas = set(self.pool.replicas())
        total = 0.0
        lost = 0.0
        fresh: Dict[Tuple[str, str], float] = {}
        for label_key, value in series.items():
            labels = dict(label_key)
            dst, outcome = labels.get("dst", ""), labels.get("outcome", "")
            if dst not in replicas:
                continue
            key = (dst, outcome)
            fresh[key] = value
            delta = value - self._snapshot.get(key, 0.0)
            total += delta
            if outcome in _LOSS_OUTCOMES:
                lost += delta
        self._snapshot = fresh
        return (lost / total if total else 0.0), total

    def evaluate(self) -> ScaleDecision:
        """One scaling decision from the current window's signals."""
        loss, total = self.window_loss()
        size = self.pool.size()
        direction, to_n, reason = "hold", size, "within thresholds"

        if self._paged and size < self.pool.max_replicas:
            direction = "grow"
            to_n = min(size + self.step, self.pool.max_replicas)
            reason = "slo burn-rate page"
        elif loss > self.loss_up and size < self.pool.max_replicas:
            direction = "grow"
            to_n = min(size + self.step, self.pool.max_replicas)
            reason = f"loss {loss:.1%} above {self.loss_up:.1%}"
        elif loss < self.loss_down and total > 0:
            self._quiet_windows += 1
            if (self._quiet_windows >= self.down_after
                    and size > self.pool.min_replicas):
                direction = "shrink"
                to_n = size - 1
                reason = (f"loss {loss:.1%} below {self.loss_down:.1%} for "
                          f"{self._quiet_windows} windows")
        if direction != "shrink" and loss >= self.loss_down:
            self._quiet_windows = 0
        self._paged = False

        if to_n != size:
            self.pool.scale_to(to_n)
            self._quiet_windows = 0
            self.telemetry.pool_size.set(float(self.pool.size()),
                                         pool=self.pool.name)
            self.telemetry.autoscale_decisions.inc(
                pool=self.pool.name, direction=direction)
            if self.audit is not None:
                self.audit.record(
                    self.clock.now(), self.audit_source, "system",
                    f"autoscale.{direction}", self.pool.name, Outcome.INFO,
                    from_replicas=size, to_replicas=to_n,
                    loss_rate=round(loss, 4), reason=reason,
                )
        decision = ScaleDecision(
            time=self.clock.now(), pool=self.pool.name, direction=direction,
            from_replicas=size, to_replicas=to_n, loss_rate=loss,
            reason=reason,
        )
        self.decisions.append(decision)
        return decision
