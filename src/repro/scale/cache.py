"""Distributed cache layer for the scale-out subsystem.

Three cooperating pieces, all driven by :class:`~repro.clock.SimClock`
(never the wall clock):

* :class:`TtlCache` — positive + negative caching with per-entry TTLs,
  tag-based invalidation, and built-in **single-flight** request
  coalescing: loads that overlap in simulated time share one upstream
  fetch instead of stampeding.
* :class:`InvalidationBus` — deployment-wide pub/sub that carries token
  revocations and JWKS key rotations to every subscribed cache
  *synchronously and in order*, so a cached ALLOW decision never
  outlives the revocation that kills it.  This models a small, reliable
  message bus (Redis keyspace events / NATS in production systems such
  as Gafaelfawr) rather than best-effort gossip.
* :class:`CacheStats` — counters the benches and the telemetry layer
  read to prove the ≥10× upstream-call reduction.

Determinism: "concurrent" in a sequential discrete-event simulation
means *overlapping in simulated time*.  A load that completes at T is
joined by every request that arrives while the clock still reads ≤ T;
they are counted as coalesced followers and share the leader's result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..clock import SimClock

__all__ = ["CacheStats", "TtlCache", "InvalidationBus", "LoadInFlight"]


class LoadInFlight(RuntimeError):
    """A re-entrant load of a key whose leader is still on the stack.

    Sequential execution cannot block a follower until the leader
    returns; a caller that can serve degraded should catch this and use
    its stale copy.  In practice the control-plane call graphs never
    recurse into the same cache key, so this is a guard rail, not a
    code path.
    """


@dataclass
class CacheStats:
    """Counters for one cache (read by benches, tests and telemetry)."""

    hits: int = 0
    negative_hits: int = 0
    misses: int = 0
    loads: int = 0
    coalesced: int = 0
    invalidations: int = 0
    expirations: int = 0
    negative_purged: int = 0  # negative entries killed by tag/clear

    def requests(self) -> int:
        return self.hits + self.negative_hits + self.misses + self.coalesced

    def hit_ratio(self) -> float:
        total = self.requests()
        served = self.hits + self.negative_hits + self.coalesced
        return served / total if total else 0.0


@dataclass
class _Entry:
    value: Any
    loaded_at: float
    expires_at: float
    negative: bool = False
    error: Optional[Tuple[type, str]] = None
    tags: Tuple[str, ...] = ()


@dataclass
class _Flight:
    started_at: float
    completed_at: Optional[float] = None
    in_progress: bool = True


class TtlCache:
    """TTL cache with negative entries, tags and single-flight loads.

    ``get_or_load`` is the only read path: a hit returns the cached
    value (or re-raises the cached *negative* outcome), a miss runs
    ``loader`` exactly once per flight window and installs the result.
    Failures listed in ``negative_errors`` are cached as negative
    entries for ``negative_ttl`` so repeated bad inputs (forged or
    revoked tokens) do not redo expensive crypto or upstream calls.

    Tags drive invalidation: an entry tagged ``jti:abc`` disappears the
    instant the invalidation bus delivers a revocation for that jti,
    regardless of remaining TTL.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        *,
        ttl: float,
        negative_ttl: Optional[float] = None,
        negative_errors: Tuple[type, ...] = (),
        max_entries: int = 4096,
        telemetry: Optional[object] = None,
    ) -> None:
        self.name = name
        self.clock = clock
        self.ttl = float(ttl)
        self.negative_ttl = float(negative_ttl if negative_ttl is not None else ttl)
        self.negative_errors = negative_errors
        self.max_entries = max_entries
        self.telemetry = telemetry
        self.stats = CacheStats()
        self._entries: Dict[Any, _Entry] = {}
        self._by_tag: Dict[str, Set[Any]] = {}
        self._flights: Dict[Any, _Flight] = {}
        # live bus subscriptions keyed by (bus, topic); see bind()/unbind()
        self._bindings: Dict[Tuple[int, str], Tuple["InvalidationBus", "_Subscription"]] = {}
        # the caller can read this right after get_or_load to stamp a
        # CACHED audit outcome on decisions served without fresh work
        self.last_hit = False

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def get_or_load(
        self,
        key: Any,
        loader: Callable[[], Any],
        *,
        ttl: Optional[float] = None,
        ttl_of: Optional[Callable[[Any], float]] = None,
        tags_of: Optional[Callable[[Any], Tuple[str, ...]]] = None,
        negative_tags_of: Optional[
            Callable[[BaseException], Tuple[str, ...]]] = None,
        min_fresh_at: Optional[float] = None,
    ) -> Any:
        """Return the cached value for ``key``, loading on miss.

        ``min_fresh_at`` implements coalesced force-refresh: entries
        loaded before that timestamp are treated as stale, but an entry
        installed by another caller *at the current instant* still
        counts as fresh — N callers demanding a refresh at time T
        produce exactly one upstream load.
        """
        now = self.clock.now()
        self.last_hit = False
        # a stale entry's tags survive onto a negative replacement for the
        # same key: the credential is the same, only its verdict flipped,
        # so tag invalidation (bus evictions) must keep reaching it
        prior_tags: Tuple[str, ...] = ()
        entry = self._entries.get(key)
        if entry is not None:
            stale = now >= entry.expires_at or (
                min_fresh_at is not None and entry.loaded_at < min_fresh_at
            )
            if stale:
                prior_tags = entry.tags
            if not stale:
                self.last_hit = True
                if entry.negative:
                    self.stats.negative_hits += 1
                    self._observe("negative_hit")
                    assert entry.error is not None
                    exc_type, message = entry.error
                    raise exc_type(message)
                self.stats.hits += 1
                self._observe("hit")
                return entry.value
            if now >= entry.expires_at:
                self.stats.expirations += 1
                self._drop(key)

        flight = self._flights.get(key)
        if flight is not None:
            if flight.in_progress:
                # re-entrant follower: the leader's loader is on the
                # stack below us and cannot be waited on sequentially
                self.stats.coalesced += 1
                self._observe("coalesced")
                raise LoadInFlight(f"{self.name}: load of {key!r} in flight")
            if flight.completed_at is not None and now <= flight.completed_at:
                # the flight finished at this very instant; we arrived
                # "concurrently" in simulated time and share its result
                fresh = self._entries.get(key)
                if fresh is not None:
                    self.stats.coalesced += 1
                    self._observe("coalesced")
                    self.last_hit = True
                    if fresh.negative:
                        assert fresh.error is not None
                        exc_type, message = fresh.error
                        raise exc_type(message)
                    return fresh.value

        self.stats.misses += 1
        self._observe("miss")
        flight = _Flight(started_at=now)
        self._flights[key] = flight
        try:
            value = loader()
        except self.negative_errors as exc:
            flight.in_progress = False
            flight.completed_at = self.clock.now()
            self.stats.loads += 1
            self._observe("load")
            neg_tags: Tuple[str, ...] = ()
            if negative_tags_of is not None:
                neg_tags = tuple(negative_tags_of(exc))
            if not neg_tags:
                neg_tags = prior_tags
            self._install(
                key,
                _Entry(
                    value=None,
                    loaded_at=self.clock.now(),
                    expires_at=self.clock.now() + self.negative_ttl,
                    negative=True,
                    error=(type(exc), str(exc)),
                    tags=neg_tags,
                ),
            )
            raise
        except Exception:
            # unexpected failures are not cached; drop the flight so the
            # next caller retries upstream
            del self._flights[key]
            raise
        flight.in_progress = False
        flight.completed_at = self.clock.now()
        self.stats.loads += 1
        self._observe("load")
        entry_ttl = self.ttl if ttl is None else ttl
        if ttl_of is not None:
            entry_ttl = min(entry_ttl, ttl_of(value))
        tags: Tuple[str, ...] = tags_of(value) if tags_of is not None else ()
        self._install(
            key,
            _Entry(
                value=value,
                loaded_at=self.clock.now(),
                expires_at=self.clock.now() + max(entry_ttl, 0.0),
                tags=tags,
            ),
        )
        return value

    def peek(self, key: Any) -> Optional[Any]:
        """Non-loading read: the live value or None (never a negative)."""
        entry = self._entries.get(key)
        if entry is None or entry.negative or self.clock.now() >= entry.expires_at:
            return None
        return entry.value

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self, key: Any) -> bool:
        """Drop one key (and forget its flight window)."""
        entry = self._entries.get(key)
        existed = entry is not None
        if existed and entry.negative:
            self.stats.negative_purged += 1
        self._drop(key)
        self._flights.pop(key, None)
        if existed:
            self.stats.invalidations += 1
            self._observe("invalidation")
        return existed

    def invalidate_tag(self, tag: str) -> int:
        """Drop every entry carrying ``tag``; returns how many died.

        Negative entries count too: a negative verdict inherits its
        predecessor's tags (and loaders may tag them explicitly via
        ``negative_tags_of``), so a revocation kills the cached denial
        alongside the cached ALLOW — the flight window dies with it and
        the next caller goes back upstream for a fresh verdict.
        """
        keys = list(self._by_tag.get(tag, ()))
        for key in keys:
            self.invalidate(key)
        return len(keys)

    def clear(self) -> int:
        """Flush the whole cache (e.g. on a signing-key rotation),
        positive and negative entries alike, plus every flight window."""
        n = len(self._entries)
        self.stats.negative_purged += sum(
            1 for e in self._entries.values() if e.negative)
        self._entries.clear()
        self._by_tag.clear()
        self._flights.clear()
        if n:
            self.stats.invalidations += n
            self._observe("invalidation", n)
        return n

    def bind(self, bus: "InvalidationBus", topic: str,
             *, by_tag: bool = True) -> None:
        """Subscribe this cache to a bus topic.

        With ``by_tag`` (default) the event key is treated as a tag
        (``jti:<key>`` style is the publisher's responsibility to match);
        a bare event with no key flushes the whole cache.

        Binding is idempotent per ``(bus, topic)`` *and* per cache name:
        re-binding (or binding a rebuilt cache carrying the same name)
        replaces the previous subscription instead of stacking a new one,
        so the bus's subscriber count stays flat across cache rebuilds
        and dead cache instances stop receiving events.
        """
        def _on_event(key: Optional[str], **_attrs: object) -> None:
            if key is None:
                self.clear()
            elif by_tag:
                self.invalidate_tag(key)
            else:
                self.invalidate(key)

        binding_key = (id(bus), topic)
        old = self._bindings.pop(binding_key, None)
        if old is not None:
            old[0].unsubscribe(old[1])
        sub = bus.subscribe(topic, _on_event, owner=f"cache:{self.name}")
        self._bindings[binding_key] = (bus, sub)

    def unbind(self) -> int:
        """Drop every live bus subscription this cache holds; returns how
        many were removed.  Call before discarding a cache instance whose
        name will *not* be reused (same-name rebuilds self-heal via the
        owner dedup in :meth:`bind`)."""
        n = 0
        for bus, sub in self._bindings.values():
            n += 1 if bus.unsubscribe(sub) else 0
        self._bindings.clear()
        return n

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def _install(self, key: Any, entry: _Entry) -> None:
        self._drop(key)
        if len(self._entries) >= self.max_entries:
            # deterministic eviction: the entry expiring soonest goes
            victim = min(self._entries,
                         key=lambda k: (self._entries[k].expires_at, str(k)))
            self._drop(victim)
            self.stats.expirations += 1
        self._entries[key] = entry
        for tag in entry.tags:
            self._by_tag.setdefault(tag, set()).add(key)

    def _drop(self, key: Any) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for tag in entry.tags:
            members = self._by_tag.get(tag)
            if members is not None:
                members.discard(key)
                if not members:
                    del self._by_tag[tag]

    def _observe(self, event: str, n: int = 1) -> None:
        tele = self.telemetry
        if tele is not None:
            tele.observe_cache(self.name, event, n)


@dataclass
class _Subscription:
    topic: str
    callback: Callable[..., None]
    # stable identity for dedup across subscriber rebuilds (e.g. a cache
    # name): a new subscription with the same owner replaces the old one
    owner: Optional[str] = None


class InvalidationBus:
    """Synchronous, ordered pub/sub for cache invalidation events.

    ``publish(topic, key=...)`` delivers to every subscriber before it
    returns — the simulation's stand-in for a reliable message bus with
    delivery confirmation.  The zero-trust contract rests on this:
    :meth:`~repro.broker.tokens.TokenService.revoke_jti` publishes
    *before* reporting the revocation done, so by the time any caller
    observes the revocation, no subscribed cache still holds the token.
    """

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._subs: Dict[str, List[_Subscription]] = {}
        self.published = 0
        self.delivered = 0
        self.history: List[Tuple[float, str, Optional[str]]] = []

    def subscribe(self, topic: str, callback: Callable[..., None],
                  *, owner: Optional[str] = None) -> _Subscription:
        """Register ``callback`` for ``topic``; returns the subscription
        handle for :meth:`unsubscribe`.

        With an ``owner``, the subscription *replaces* any existing one
        with the same (topic, owner) — in place, preserving delivery
        order — so rebuilt subscribers (caches recreated after a flush
        or a region restart) never leave a dangling callback behind and
        the subscriber count stays flat across rebuilds.
        """
        sub = _Subscription(topic, callback, owner)
        subs = self._subs.setdefault(topic, [])
        if owner is not None:
            for i, existing in enumerate(subs):
                if existing.owner == owner:
                    subs[i] = sub
                    return sub
        subs.append(sub)
        return sub

    def unsubscribe(self, sub: _Subscription) -> bool:
        """Remove one subscription; returns whether it was present."""
        subs = self._subs.get(sub.topic, [])
        for i, existing in enumerate(subs):
            if existing is sub:
                del subs[i]
                return True
        return False

    def publish(self, topic: str, key: Optional[str] = None,
                **attrs: object) -> int:
        """Deliver an event to every subscriber of ``topic``, in order."""
        self.published += 1
        self.history.append((self.clock.now(), topic, key))
        delivered = 0
        for sub in self._subs.get(topic, ()):  # registration order
            sub.callback(key, **attrs)
            delivered += 1
        self.delivered += delivered
        return delivered

    def subscriber_count(self, topic: str) -> int:
        return len(self._subs.get(topic, ()))
