"""Horizontal scale-out subsystem: replica pools, load balancing and
revocation-safe distributed caching.

See ``docs/scaling.md`` for the design; the short version:

* :mod:`repro.scale.balancer` — run a stateless control-plane service
  as N :class:`ReplicaWorker` endpoints behind a :class:`LoadBalancer`
  (round-robin, least-outstanding, or bounded-load consistent hashing
  for session/tunnel affinity).
* :mod:`repro.scale.cache` — TTL + negative caching with single-flight
  coalescing, and the :class:`InvalidationBus` that carries token
  revocations and JWKS rotations to every replica before TTLs expire.
* :mod:`repro.scale.autoscaler` — grows/shrinks pools from the
  telemetry layer's RED metrics and SLO burn-rate pages.
"""

from dataclasses import dataclass

from .autoscaler import Autoscaler, ScaleDecision
from .balancer import (
    ConsistentHashPolicy,
    LeastOutstandingPolicy,
    LoadBalancer,
    ReplicaPool,
    ReplicaWorker,
    RoundRobinPolicy,
)
from .cache import CacheStats, InvalidationBus, LoadInFlight, TtlCache
from .hashring import BoundedLoadRing

__all__ = [
    "ScaleConfig",
    "Autoscaler",
    "ScaleDecision",
    "ConsistentHashPolicy",
    "LeastOutstandingPolicy",
    "LoadBalancer",
    "ReplicaPool",
    "ReplicaWorker",
    "RoundRobinPolicy",
    "CacheStats",
    "InvalidationBus",
    "LoadInFlight",
    "TtlCache",
    "BoundedLoadRing",
]


@dataclass
class ScaleConfig:
    """Deployment knobs for the scale-out subsystem.

    Passed as ``build_isambard(scale=ScaleConfig(...))``; ``scale=True``
    selects these defaults.  TTLs are deliberately generous because the
    invalidation bus — not expiry — is what bounds staleness for
    revocations and key rotations.
    """

    broker_replicas: int = 2
    policy: str = "least-outstanding"  # round-robin | consistent-hash
    caching: bool = True               # off = pool/LB only (ablation arm)
    decision_ttl: float = 60.0         # cached token-validation verdicts
    negative_ttl: float = 10.0         # cached denials (revoked/forged)
    jwks_ttl: float = 600.0            # shared JWKS documents
    introspection_ttl: float = 30.0    # remote introspection verdicts
    cert_ttl: float = 300.0            # parsed+verified SSH certificates
    autoscale: bool = False
    min_replicas: int = 1
    max_replicas: int = 8
    autoscale_interval: float = 5.0
