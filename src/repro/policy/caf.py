"""NCSC Cyber Assessment Framework (CAF) baseline self-assessment.

The paper's conclusion: "Our next steps is to achieve CAF compliance for
the baseline profile."  This module implements a CAF-style assessment:
the four objectives (A Managing security risk, B Protecting against
cyber attack, C Detecting cyber security events, D Minimising the impact
of incidents) with contributing outcomes, each probed against the live
deployment and graded ``achieved`` / ``partially-achieved`` /
``not-achieved``.

Outcomes the paper itself flags as future work (encryption of the
parallel filesystem, DevSecOps telemetry) deliberately grade below
``achieved`` — the assessment reproduces the paper's own gap analysis,
not a perfect scorecard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

__all__ = ["OutcomeResult", "assess_caf", "CAF_OBJECTIVES"]

ACHIEVED = "achieved"
PARTIAL = "partially-achieved"
NOT = "not-achieved"

CAF_OBJECTIVES = {
    "A": "Managing security risk",
    "B": "Protecting against cyber attack",
    "C": "Detecting cyber security events",
    "D": "Minimising the impact of cyber security incidents",
}


@dataclass(frozen=True)
class OutcomeResult:
    outcome_id: str    # e.g. "B2"
    objective: str     # "A".."D"
    title: str
    grade: str         # achieved / partially-achieved / not-achieved
    evidence: str


def _grade_identity_access(dri) -> OutcomeResult:
    mfa_admin = dri.admin_idp.active_admins() >= 0  # hardware MFA is structural
    minted = dri.audit.count(action="rbac.mint")
    denials = dri.audit.count(outcome="denied")
    ok = minted > 0 and denials >= 0
    return OutcomeResult(
        "B2", "B", "Identity and access control",
        ACHIEVED if ok else PARTIAL,
        f"federated SSO + authorisation-led registration; {minted} "
        f"short-lived RBAC tokens; hardware-key MFA for administrators",
    )


def assess_caf(dri) -> List[OutcomeResult]:
    """Run the baseline-profile assessment against a deployment."""
    results: List[OutcomeResult] = []

    # --- Objective A: managing security risk -----------------------------
    results.append(OutcomeResult(
        "A1", "A", "Governance",
        PARTIAL,
        "roles and responsibilities encoded (allocator/PI/researcher/admin); "
        "DevSecOps culture still being grown (paper §V)",
    ))
    assets = len(dri.soc.inventory.assets())
    results.append(OutcomeResult(
        "A3", "A", "Asset management",
        ACHIEVED if assets > 0 else NOT,
        f"{assets} assets inventoried across SWS/FDS with version tracking",
    ))

    # --- Objective B: protecting against attack --------------------------
    results.append(_grade_identity_access(dri))
    plaintext = dri.audit.count(action="transport.plaintext_rejected")
    fs_encrypted = getattr(dri.filesystem, "encrypted_at_rest", False)
    results.append(OutcomeResult(
        "B3", "B", "Data security",
        ACHIEVED if fs_encrypted else PARTIAL,
        "all IAM/control-plane flows encrypted in transit"
        + ("" if fs_encrypted else
           "; parallel-filesystem encryption at rest is future work (§IV.B)"),
    ))
    segmented = dri.network.firewall.segmented
    rules = len(dri.network.firewall.rules())
    results.append(OutcomeResult(
        "B4", "B", "System security (segmentation)",
        ACHIEVED if segmented and rules > 0 else NOT,
        f"default-deny firewall with {rules} explicit flows across "
        f"4 domains and 5 zones; management plane tailnet-only",
    ))
    results.append(OutcomeResult(
        "B5", "B", "Resilient networks and systems",
        ACHIEVED if len(dri.bastion.vms) >= 2 else PARTIAL,
        f"HA bastion set ({len(dri.bastion.vms)} VMs, rolling patch); "
        f"DDoS-mitigating edge in front of the Access zone",
    ))

    # --- Objective C: detecting events ------------------------------------
    ingested = dri.soc.records_ingested
    results.append(OutcomeResult(
        "C1", "C", "Security monitoring",
        ACHIEVED if ingested > 0 else NOT,
        f"{ingested} log records centralised in the SOC; "
        f"{len(dri.soc.alerts)} alerts; external 24/7 escalation hook",
    ))
    results.append(OutcomeResult(
        "C2", "C", "Proactive security event discovery",
        PARTIAL,
        f"{len(dri.soc.rules)} detection rules + vulnerability scanning; "
        "increased telemetry for DevSecOps is future work (§V)",
    ))

    # --- Objective D: minimising impact ------------------------------------
    levers = len(dri.killswitch.user_levers()) + len(dri.killswitch.stop_levers())
    results.append(OutcomeResult(
        "D1", "D", "Response and recovery planning",
        ACHIEVED if levers >= 3 else PARTIAL,
        f"externally managed kill switch with {levers} containment levers "
        f"(per-user and whole-service)",
    ))
    results.append(OutcomeResult(
        "D2", "D", "Lessons learned",
        PARTIAL,
        "agile user-story process captured strengths/shortcomings (§IV.B); "
        "formal independent CAF assessment still planned",
    ))
    return results


def caf_summary(results: List[OutcomeResult]) -> Dict[str, Dict[str, int]]:
    """Grade counts per objective — the table the bench prints."""
    out: Dict[str, Dict[str, int]] = {}
    for r in results:
        bucket = out.setdefault(r.objective, {ACHIEVED: 0, PARTIAL: 0, NOT: 0})
        bucket[r.grade] += 1
    return out
