"""Zero-trust policy: dynamic engine, NIST tenets, CAF assessment."""

from repro.policy.caf import CAF_OBJECTIVES, OutcomeResult, assess_caf, caf_summary
from repro.policy.dsl import STANDARD_POLICY, load_policy, parse_policy
from repro.policy.engine import (
    AccessContext,
    PolicyDecision,
    PolicyEngine,
    PolicyRule,
    standard_zero_trust_rules,
)
from repro.policy.tenets import TENET_TITLES, TenetReport, check_tenets

__all__ = [
    "PolicyEngine",
    "PolicyRule",
    "PolicyDecision",
    "AccessContext",
    "standard_zero_trust_rules",
    "parse_policy",
    "load_policy",
    "STANDARD_POLICY",
    "TenetReport",
    "TENET_TITLES",
    "check_tenets",
    "OutcomeResult",
    "assess_caf",
    "caf_summary",
    "CAF_OBJECTIVES",
]
