"""A small OPA-style policy language compiled to :class:`PolicyRule`.

Operators write textual rules instead of Python lambdas::

    deny  contained-subject      if risk_score >= 1
    deny  untrusted-device-mgmt  if capability startswith "mgmt." and not device_trusted
    deny  admin-needs-hwk        if role startswith "admin" and "hwk" not in mfa_methods
    allow capability-granted     if capability

Grammar (one rule per line; ``#`` comments)::

    rule      := ("allow" | "deny") NAME "if" expr
    expr      := term {"and" term}
    term      := ["not"] cond
    cond      := attr op value | value "in" attr | value "not in" attr | attr
    op        := "==" | "!=" | ">=" | "<=" | ">" | "<" | "startswith" | "endswith"
    attr      := any AccessContext field name
    value     := quoted string | number | true | false

``attr`` alone is truthiness.  ``and`` only (no ``or``) — write two rules
instead, which keeps evaluation order explicit, exactly as first-match
policy lists want.
"""

from __future__ import annotations

import re
import shlex
from typing import Callable, List

from repro.errors import ConfigurationError
from repro.policy.engine import AccessContext, PolicyEngine, PolicyRule

__all__ = ["parse_policy", "load_policy"]

_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    "startswith": lambda a, b: str(a).startswith(str(b)),
    "endswith": lambda a, b: str(a).endswith(str(b)),
}

_ATTRS = {
    "subject", "role", "capability", "resource", "zone", "domain",
    "device_trusted", "mfa_methods", "loa", "risk_score", "time",
}


def _parse_value(token: str):
    if token.startswith(('"', "'")):
        return token[1:-1]
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        return int(token)
    except ValueError:
        try:
            return float(token)
        except ValueError:
            raise ConfigurationError(f"unparseable value {token!r}") from None


def _attr_getter(name: str) -> Callable[[AccessContext], object]:
    if name not in _ATTRS:
        raise ConfigurationError(
            f"unknown context attribute {name!r}; valid: {sorted(_ATTRS)}"
        )
    return lambda ctx: getattr(ctx, name)


def _compile_cond(tokens: List[str]) -> Callable[[AccessContext], bool]:
    """One condition (already stripped of a leading ``not``)."""
    if len(tokens) == 1:
        get = _attr_getter(tokens[0])
        return lambda ctx: bool(get(ctx))
    if len(tokens) == 3 and tokens[1] in _OPS:
        get = _attr_getter(tokens[0])
        op = _OPS[tokens[1]]
        value = _parse_value(tokens[2])
        return lambda ctx: op(get(ctx), value)
    if len(tokens) == 3 and tokens[1] == "in":
        value = _parse_value(tokens[0])
        get = _attr_getter(tokens[2])
        return lambda ctx: value in (get(ctx) or ())
    if len(tokens) == 4 and tokens[1] == "not" and tokens[2] == "in":
        value = _parse_value(tokens[0])
        get = _attr_getter(tokens[3])
        return lambda ctx: value not in (get(ctx) or ())
    raise ConfigurationError(f"unparseable condition: {' '.join(tokens)}")


def _compile_expr(tokens: List[str]) -> Callable[[AccessContext], bool]:
    """``term {and term}`` with optional ``not`` per term."""
    terms: List[Callable[[AccessContext], bool]] = []
    current: List[str] = []
    chunks: List[List[str]] = []
    for tok in tokens:
        if tok == "and":
            if not current:
                raise ConfigurationError("dangling 'and'")
            chunks.append(current)
            current = []
        else:
            current.append(tok)
    if not current:
        raise ConfigurationError("empty condition")
    chunks.append(current)

    for chunk in chunks:
        negate = False
        # 'not' prefixes a term UNLESS it is the 'not in' form
        if chunk[0] == "not" and not (len(chunk) >= 3 and chunk[2] == "in"):
            negate = True
            chunk = chunk[1:]
        cond = _compile_cond(chunk)
        terms.append((lambda c: (lambda ctx: not c(ctx)))(cond) if negate else cond)

    return lambda ctx: all(t(ctx) for t in terms)


def parse_policy(text: str) -> List[PolicyRule]:
    """Compile a policy document into ordered rules."""
    rules: List[PolicyRule] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            tokens = shlex.split(line, posix=False)
        except ValueError as exc:
            raise ConfigurationError(f"line {lineno}: {exc}") from exc
        if len(tokens) < 4 or tokens[0] not in ("allow", "deny"):
            raise ConfigurationError(
                f"line {lineno}: expected '(allow|deny) NAME if EXPR'"
            )
        effect, name = tokens[0], tokens[1]
        if tokens[2] != "if":
            raise ConfigurationError(f"line {lineno}: missing 'if'")
        predicate = _compile_expr(tokens[3:])
        rules.append(PolicyRule(
            name=name, applies=predicate, effect=effect,
            reason=f"policy line {lineno}: {line}",
        ))
    return rules


def load_policy(text: str, *, engine: PolicyEngine | None = None) -> PolicyEngine:
    """Parse ``text`` and install the rules into a (new) engine."""
    engine = engine if engine is not None else PolicyEngine()
    for rule in parse_policy(text):
        engine.add_rule(rule)
    return engine


STANDARD_POLICY = """
# the deployment's default zero-trust pack, in policy language
deny  contained-subject        if risk_score >= 1
deny  untrusted-device-mgmt    if capability startswith "mgmt." and not device_trusted
deny  admin-without-hwk        if role startswith "admin" and "hwk" not in mfa_methods
allow capability-granted       if capability
"""
