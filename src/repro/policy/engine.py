"""Dynamic policy engine (zero-trust tenet 4).

"Access to resources is determined by dynamic policy — including the
observable state of client identity, application/service, and the
requesting asset — and may include other behavioural and environmental
attributes."

The engine evaluates ordered rules over an :class:`AccessContext`; each
rule is a predicate plus an effect.  Default-deny.  The deployment uses
it for posture-style decisions that pure RBAC cannot express (e.g. "deny
management operations from devices with expired keys even if the token
is valid", "deny everything for contained users"), and the threat model
uses it to reason about what an attacker's stolen context can reach.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import PolicyViolation

__all__ = ["AccessContext", "PolicyRule", "PolicyDecision", "PolicyEngine"]


@dataclass(frozen=True)
class AccessContext:
    """Everything observable about one access attempt."""

    subject: str
    role: str
    capability: str
    resource: str
    zone: str = ""
    domain: str = ""
    device_trusted: bool = True
    mfa_methods: tuple = ()
    loa: int = 0
    risk_score: float = 0.0   # fed by the SOC (0 = clean, 1 = contained)
    time: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class PolicyDecision:
    allowed: bool
    rule: Optional[str]
    reason: str

    def __bool__(self) -> bool:
        return self.allowed


@dataclass
class PolicyRule:
    """First-match rule: when ``applies`` is true, ``effect`` decides."""

    name: str
    applies: Callable[[AccessContext], bool]
    effect: str  # "allow" | "deny"
    reason: str = ""

    def __post_init__(self) -> None:
        if self.effect not in ("allow", "deny"):
            raise ValueError(f"effect must be allow/deny, got {self.effect!r}")


class PolicyEngine:
    """Ordered first-match evaluation with default deny."""

    def __init__(self, *, default_reason: str = "no policy permits this access") -> None:
        self._rules: List[PolicyRule] = []
        self.default_reason = default_reason
        self.evaluations = 0
        self.denials = 0

    def add_rule(self, rule: PolicyRule) -> None:
        self._rules.append(rule)

    def allow(self, name: str, applies: Callable[[AccessContext], bool],
              *, reason: str = "") -> None:
        self.add_rule(PolicyRule(name, applies, "allow", reason))

    def deny(self, name: str, applies: Callable[[AccessContext], bool],
             *, reason: str = "") -> None:
        self.add_rule(PolicyRule(name, applies, "deny", reason))

    def rules(self) -> List[PolicyRule]:
        return list(self._rules)

    @property
    def pack_version(self) -> str:
        """Deterministic version of the loaded rule pack: rule count
        plus a digest over the ordered (name, effect) pairs.  Stamped
        into every provenance record so a post-mortem can tell which
        pack a decision was made under — the same decision under a
        different pack is a different decision."""
        digest = hashlib.sha256("|".join(
            f"{r.name}:{r.effect}" for r in self._rules
        ).encode("utf-8")).hexdigest()[:8]
        return f"pack-{len(self._rules)}-{digest}"

    # ------------------------------------------------------------------
    def evaluate(self, ctx: AccessContext) -> PolicyDecision:
        self.evaluations += 1
        for rule in self._rules:
            if rule.applies(ctx):
                allowed = rule.effect == "allow"
                if not allowed:
                    self.denials += 1
                return PolicyDecision(
                    allowed=allowed, rule=rule.name,
                    reason=rule.reason or rule.name,
                )
        self.denials += 1
        return PolicyDecision(allowed=False, rule=None, reason=self.default_reason)

    def enforce(self, ctx: AccessContext) -> None:
        """Raise :class:`PolicyViolation` unless the context is permitted."""
        decision = self.evaluate(ctx)
        if not decision:
            raise PolicyViolation(
                f"policy denied {ctx.subject} -> {ctx.resource} "
                f"({ctx.capability}): {decision.reason}"
            )


def standard_zero_trust_rules(engine: PolicyEngine) -> PolicyEngine:
    """The deployment's default dynamic-policy pack.

    Ordering matters: containment and posture denials come before any
    allow, so they always win.
    """
    engine.deny(
        "contained-subject",
        lambda c: c.risk_score >= 1.0,
        reason="subject is contained by the kill switch",
    )
    engine.deny(
        "untrusted-device-mgmt",
        lambda c: c.capability.startswith("mgmt.") and not c.device_trusted,
        reason="management access requires an enrolled, trusted device",
    )
    engine.deny(
        "admin-without-hardware-mfa",
        lambda c: c.role.startswith("admin") and "hwk" not in c.mfa_methods,
        reason="administrator actions require hardware-key MFA",
    )
    engine.allow(
        "capability-granted",
        lambda c: bool(c.capability),
        reason="capability present in a validated short-lived token",
    )
    return engine
