"""NIST SP 800-207 tenet compliance checker.

§II.C lists the seven zero-trust tenets the Isambard design adopts.  The
checker inspects a *live, exercised* deployment — its wiring plus the
audit trails produced by real workflow runs — and produces per-tenet
evidence.  It is the engine behind the ZTA bench (experiment ZTA in
DESIGN.md): run the user stories, then ask "does the running system
exhibit each tenet?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

__all__ = ["TenetReport", "TENET_TITLES", "check_tenets"]

TENET_TITLES = {
    1: "All data sources and computing services are considered resources",
    2: "All communication is secured regardless of network location",
    3: "Access to individual resources is granted on a per-session basis",
    4: "Access is determined by dynamic policy",
    5: "The enterprise monitors the integrity and posture of all assets",
    6: "All authentication and authorization are dynamic and strictly enforced",
    7: "The enterprise collects as much information as possible and uses it",
}


@dataclass(frozen=True)
class TenetReport:
    tenet: int
    title: str
    passed: bool
    evidence: str


def check_tenets(dri) -> List[TenetReport]:
    """Evaluate all seven tenets against an IsambardDeployment.

    The deployment should have been *used* (workflows run) before
    checking — several tenets are judged on observed behaviour, not just
    configuration.
    """
    reports: List[TenetReport] = []
    audit = dri.audit

    # T1 — resources enumerated: every service is an addressable,
    # policy-labelled endpoint (domain + zone).
    endpoints = dri.network.endpoints()
    unlabelled = [e.name for e in endpoints if not e.domain or not e.zone]
    reports.append(TenetReport(
        1, TENET_TITLES[1],
        passed=len(endpoints) > 0 and not unlabelled,
        evidence=f"{len(endpoints)} endpoints registered, all labelled "
                 f"with domain+zone" if not unlabelled
                 else f"unlabelled endpoints: {unlabelled}",
    ))

    # T2 — all communication secured: the transport layer rejected every
    # plaintext boundary crossing, and delivered messages were encrypted.
    delivered = audit.query(action="message.delivered")
    plaintext = [e for e in delivered if not e.attrs.get("encrypted", False)
                 and (e.domain or e.zone)]
    reports.append(TenetReport(
        2, TENET_TITLES[2],
        passed=len(delivered) > 0 and not plaintext,
        evidence=f"{len(delivered)} messages delivered encrypted; "
                 f"{audit.count(action='transport.plaintext_rejected')} plaintext "
                 f"attempts rejected" if not plaintext
                 else f"{len(plaintext)} plaintext deliveries observed",
    ))

    # T3 — per-session access: every token and session is time-limited.
    max_ttl = dri.broker.tokens.max_ttl
    session_ttls = [dri.broker.sessions.ttl, dri.myaccessid.sessions.ttl]
    bounded = max_ttl <= 24 * 3600 and all(t <= 24 * 3600 for t in session_ttls)
    minted = audit.count(action="rbac.mint")
    reports.append(TenetReport(
        3, TENET_TITLES[3],
        passed=bounded and minted > 0,
        evidence=f"{minted} short-lived tokens minted, max TTL {max_ttl:.0f}s; "
                 f"session TTLs {[f'{t:.0f}s' for t in session_ttls]}",
    ))

    # T4 — dynamic policy: the broker consulted the portal's live ACLs
    # during logins and mints (observable as authz traffic), and the
    # policy engine holds posture rules.
    authz_queries = len([
        e for e in audit.query(action="message.delivered")
        if e.attrs.get("path") == "/authz"
    ])
    rules = len(dri.policy_engine.rules())
    reports.append(TenetReport(
        4, TENET_TITLES[4],
        passed=authz_queries > 0 and rules > 0,
        evidence=f"{authz_queries} live authorisation queries observed; "
                 f"{rules} dynamic policy rules active",
    ))

    # T5 — posture monitoring: inventory covers cloud/SWS assets and a
    # configuration assessment exists and scores.
    assets = len(dri.soc.inventory.assets())
    checks = len(dri.soc.assessment)
    reports.append(TenetReport(
        5, TENET_TITLES[5],
        passed=assets > 0 and checks > 0,
        evidence=f"{assets} assets inventoried; {checks} configuration "
                 f"checks, score {dri.soc.assessment.score():.0%}",
    ))

    # T6 — dynamic, strictly-enforced authn/authz: denials actually
    # happen (default-deny is live), and issuance is audited.
    denials = audit.count(outcome="denied")
    issuance = audit.count(action="rbac.mint") + audit.count(action="token.issued")
    reports.append(TenetReport(
        6, TENET_TITLES[6],
        passed=denials > 0 and issuance > 0,
        evidence=f"{denials} denials and {issuance} audited issuances observed",
    ))

    # T7 — telemetry collected and used: the SOC ingested records from
    # multiple domains and rules run over them.
    ingested = dri.soc.records_ingested
    domains = {str(r.get("domain", "")) for r in dri.soc.records()} - {""}
    reports.append(TenetReport(
        7, TENET_TITLES[7],
        passed=ingested > 0 and len(domains) >= 2,
        evidence=f"{ingested} records ingested from domains {sorted(domains)}; "
                 f"{len(dri.soc.alerts)} alerts raised",
    ))
    return reports
