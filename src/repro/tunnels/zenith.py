"""Zenith-style authenticated reverse tunnels for web services.

§III.C: web services in the MDCs (e.g. Jupyter) are published through a
Zenith server in FDS.  The Zenith *client* runs next to the service in
the MDC and dials **out** to the server (MDC→FDS is an allowed outbound
flow; FDS→MDC inbound stays closed) — after registration, traffic rides
that client-initiated connection back in.

The server is also the authentication shim: a user navigating to the
service URL "triggers an identity broker login flow that authenticates
their identity, and connects to the user portal to verify access to the
web service.  If successful, this generates a time-limited RBAC token
that is passed as a HTTP header" to the service's authenticator inside
the MDC.

Registration requires a broker-issued service token; tunnels expire
unless heartbeated, and the kill switch closes them instantly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.audit import AuditLog, Outcome
from repro.broker.rbac import require_capability
from repro.broker.tokens import RbacTokenValidator
from repro.clock import SimClock
from repro.errors import (
    AuthenticationError,
    KillSwitchActive,
    ServiceUnavailable,
)
from repro.ids import IdFactory
from repro.net.http import HttpRequest, HttpResponse, Service, route
from repro.oidc.client import RelyingParty
from repro.oidc.messages import ClientConfig, make_url
from repro.telemetry.context import BAGGAGE_HEADER, TRACEPARENT_HEADER

__all__ = ["ZenithClient", "ZenithServer", "TunnelRecord"]

TOKEN_HEADER = "X-Isambard-Token"


class ZenithClient(Service):
    """Runs inside the MDC next to one web service; dials out to the server.

    ``token_source`` (optional) lets the deployment wire a callable that
    mints a fresh service token, so :meth:`heartbeat` can re-enroll the
    tunnel on its own after a drop — the resilience layer's re-enrollment
    seam.  Without it, heartbeats replay the last token used.
    """

    def __init__(self, name: str, upstream_endpoint: str) -> None:
        super().__init__(name)
        self.upstream_endpoint = upstream_endpoint
        self.token_source = None  # Optional[Callable[[], str]]
        self._registration: Optional[Dict[str, str]] = None
        self.reenrollments = 0

    def register_with(self, server_endpoint: str, service_name: str, token: str) -> HttpResponse:
        """Dial out and (re-)register the tunnel; also the heartbeat."""
        resp = self.call(
            server_endpoint,
            HttpRequest(
                "POST", "/register",
                headers={"Authorization": f"Bearer {token}"},
                body={"service": service_name},
            ),
        )
        if resp.ok:
            self._registration = {
                "server": server_endpoint,
                "service": service_name,
                "token": token,
            }
        return resp

    def heartbeat(self) -> Optional[HttpResponse]:
        """Re-register the last tunnel, minting a fresh token if wired.

        Returns ``None`` when the client has never registered.  This is
        what the deployment's tunnel-refresh loop calls, so a tunnel that
        expired or was dropped during an outage comes back on its own
        once the path heals.
        """
        if self._registration is None:
            return None
        token = self._registration["token"]
        if self.token_source is not None:
            token = self.token_source()
        self.reenrollments += 1
        return self.register_with(
            self._registration["server"], self._registration["service"], token
        )

    def deliver(self, request: HttpRequest) -> HttpResponse:
        """Traffic arriving over the established tunnel → local service."""
        return self.call(self.upstream_endpoint, request)


@dataclass
class TunnelRecord:
    service: str
    client: ZenithClient
    registered_by: str
    expires_at: float
    killed: bool = False

    def usable(self, now: float) -> bool:
        return not self.killed and now < self.expires_at


class ZenithServer(Service):
    """The FDS-side tunnel terminus and web-auth shim.

    Parameters
    ----------
    validator:
        RBAC validator for audience ``"zenith"`` (tunnel registrations).
    heartbeat_ttl:
        Tunnel lifetime after each registration/heartbeat.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        ids: IdFactory,
        validator: RbacTokenValidator,
        *,
        audit: Optional[AuditLog] = None,
        heartbeat_ttl: float = 120.0,
        broker_endpoint: str = "broker",
    ) -> None:
        super().__init__(name)
        self.clock = clock
        self.ids = ids
        self.validator = validator
        self.audit = audit if audit is not None else AuditLog(f"{name}-audit")
        self.heartbeat_ttl = heartbeat_ttl
        self.broker_endpoint = broker_endpoint
        self.tunnels: Dict[str, TunnelRecord] = {}
        self._rp: Optional[RelyingParty] = None
        # state -> (service, original path) while the login flow runs
        self._pending: Dict[str, Dict[str, str]] = {}
        # zenith session cookie -> {token, expires_at, sub}
        self._web_sessions: Dict[str, Dict[str, object]] = {}
        self.requests_routed = 0
        # continuous authorization: tunnels and web sessions tracked as
        # grants; routing fails closed when the PDP is unreachable past
        # the staleness bound
        self.session_registry = None
        self.authz_guard = None

    def configure_rp(self, client_cfg: ClientConfig) -> None:
        """Wire the broker relying-party registration (deployment step)."""
        self._rp = RelyingParty(self, self.broker_endpoint, client_cfg,
                                self.clock, self.ids)

    # ------------------------------------------------------------------
    # tunnel registration (MDC side dialing out)
    # ------------------------------------------------------------------
    @route("POST", "/register")
    def register(self, request: HttpRequest) -> HttpResponse:
        token = request.bearer_token()
        if token is None:
            raise AuthenticationError("tunnel registration requires a service token")
        claims = self.validator.validate(token)
        require_capability(claims, "authz.query")  # service-role tokens only
        service = str(request.body.get("service", ""))
        if not service:
            return HttpResponse.error(400, "service name required")
        if self.network is None:
            raise ServiceUnavailable("zenith server not attached")
        client = self.network.endpoint(request.source).service
        if not isinstance(client, ZenithClient):
            raise AuthenticationError("only zenith clients may register tunnels")
        if self.authz_guard is not None:
            self.authz_guard.check("tunnels", actor=str(claims["sub"]))
        existing = self.tunnels.get(service)
        if existing is not None and existing.killed:
            raise KillSwitchActive(f"tunnel {service!r} is killed")
        self.tunnels[service] = TunnelRecord(
            service=service,
            client=client,
            registered_by=str(claims["sub"]),
            expires_at=self.clock.now() + self.heartbeat_ttl,
        )
        if self.session_registry is not None:
            # heartbeats refresh the same grant (track updates in place)
            self.session_registry.track(
                "tunnel", "tunnels", str(claims["sub"]), service,
                expires_at=self.tunnels[service].expires_at, workload=True)
        # scale mode: a heartbeat re-registration whose token signature
        # was served from the replica cache is stamped CACHED (with the
        # jti) so the SOC's staleness oracle can cross-check it against
        # revocation events
        cached_hit = getattr(self.validator, "last_hit", False)
        self.log_event(str(claims["sub"]), "zenith.register",
            service, Outcome.CACHED if cached_hit else Outcome.SUCCESS,
            client=request.source, jti=str(claims["jti"]),
        )
        return HttpResponse.json({"registered": service,
                                  "expires_at": self.tunnels[service].expires_at})

    def kill_tunnel(self, service: str) -> None:
        """Kill switch for one published service."""
        record = self.tunnels.get(service)
        if record is not None:
            record.killed = True
            if self.session_registry is not None:
                self.session_registry.close("tunnel", service,
                                            reason="killed")
            self.log_event("killswitch", "zenith.kill", service,
                Outcome.INFO,
            )

    def kill_tunnels_registered_by(self, subject: str) -> int:
        """Kill every tunnel ``subject`` itself registered (workload
        revocation).  A *user* revocation never lands here for tunnels a
        service account registered, so tearing down one researcher does
        not sever the shared Jupyter tunnel."""
        n = 0
        for service, record in sorted(self.tunnels.items()):
            if record.registered_by == subject and not record.killed:
                self.kill_tunnel(service)
                n += 1
        return n

    def revoke_web_sessions_for(self, subject: str) -> int:
        """Drop every authenticated web session of ``subject`` — their
        browser is back to the login redirect on the next request."""
        hit = sorted(sid for sid, s in self._web_sessions.items()
                     if s.get("sub") == subject)
        for sid in hit:
            del self._web_sessions[sid]
            if self.session_registry is not None:
                self.session_registry.close("web-session", sid,
                                            reason="revoked")
        if hit:
            self.log_event("authz-pipeline", "zenith.sessions_revoked",
                subject, Outcome.INFO, count=len(hit),
            )
        return len(hit)

    def kill_all_tunnels(self) -> None:
        for service in list(self.tunnels):
            self.kill_tunnel(service)

    def restore_tunnel(self, service: str) -> None:
        """Lift the kill; the client must still heartbeat to be usable."""
        record = self.tunnels.get(service)
        if record is not None:
            record.killed = False

    def restore_all_tunnels(self) -> None:
        for service in list(self.tunnels):
            self.restore_tunnel(service)

    # ------------------------------------------------------------------
    # the authenticated web path
    # ------------------------------------------------------------------
    @route("GET", "/app")
    def app(self, request: HttpRequest) -> HttpResponse:
        """``https://.../app?service=jupyter&path=/`` — the user-facing URL."""
        service = request.query.get("service", "")
        path = request.query.get("path", "/")
        record = self.tunnels.get(service)
        now = self.clock.now()
        if record is None or not record.usable(now):
            return HttpResponse.error(
                503 if record is None or record.killed is False else 403,
                f"service {service!r} is not reachable via Zenith",
            )

        session = self._session_from(request)
        if session is not None and self.authz_guard is not None:
            self.authz_guard.check("tunnels", actor=str(session["sub"]))
        if session is None:
            if self._rp is None:
                raise ServiceUnavailable("zenith auth shim not configured")
            url, flow = self._rp.begin(make_url(self.name, "/callback"))
            self._pending[flow.state] = {"service": service, "path": path}
            return HttpResponse.redirect(url)

        # the tunnel-dispatched inner request must keep the originating
        # request's context: the zenith client delivers it from an empty
        # serving stack, so nothing downstream can re-inherit priority,
        # deadline or trace — dropping them here made shed/expired
        # outcomes on the upstream hop lose their attribution entirely
        inner = HttpRequest(
            "GET", path,
            headers={TOKEN_HEADER: str(session["token"])},
            query={k: v for k, v in request.query.items()
                   if k not in ("service", "path")},
            priority=request.priority,
            deadline=request.deadline,
        )
        for header in (TRACEPARENT_HEADER, BAGGAGE_HEADER):
            if header in request.headers:
                inner.headers[header] = request.headers[header]
        self.requests_routed += 1
        self.log_event(str(session["sub"]), "zenith.route", service,
            Outcome.SUCCESS, path=path,
            # the grant basis on the tunnels surface: the live registered
            # tunnel the authenticated session was routed through
            rule=f"tunnel:{service}",
        )
        return record.client.deliver(inner)

    @route("GET", "/callback")
    def callback(self, request: HttpRequest) -> HttpResponse:
        """Broker login finished: obtain the RBAC token for the service."""
        state = request.query.get("state", "")
        pending = self._pending.pop(state, None)
        if pending is None:
            return HttpResponse.error(400, "unknown login state")
        if "error" in request.query:
            return HttpResponse.error(403, f"login failed: {request.query['error']}")
        assert self._rp is not None
        tokens = self._rp.redeem(request.query.get("code", ""), state)
        service = pending["service"]
        # portal check + time-limited RBAC token, via the broker; both
        # cluster roles (researcher, PI) carry the notebook capability
        mint = None
        for role in ("researcher", "pi"):
            mint = self.call(
                self.broker_endpoint,
                HttpRequest(
                    "POST", "/tokens",
                    headers={"Authorization": f"Bearer {tokens['access_token']}"},
                    body={"audience": service, "role": role},
                ),
            )
            if mint.ok:
                break
        if mint is None or not mint.ok:
            self.log_event(str(tokens["id_claims"]["sub"]),
                "zenith.denied", service, Outcome.DENIED,
                reason=str(mint.body.get("error", "")),
            )
            return HttpResponse.error(
                403, f"portal denied access to {service}: {mint.body.get('error')}"
            )
        sid = self.ids.secret(24)
        self._web_sessions[sid] = {
            "token": mint.body["token"],
            "expires_at": mint.body["expires_at"],
            "sub": tokens["id_claims"]["sub"],
        }
        if self.session_registry is not None:
            self.session_registry.track(
                "web-session", "tunnels", str(tokens["id_claims"]["sub"]),
                sid, expires_at=float(mint.body["expires_at"]))
        resp = HttpResponse.redirect(
            make_url(self.name, "/app", service=service, path=pending["path"])
        )
        resp.headers["Set-Cookie"] = f"zsid={sid}"
        return resp

    def _session_from(self, request: HttpRequest) -> Optional[Dict[str, object]]:
        cookie = request.headers.get("Cookie", "")
        for part in cookie.split(";"):
            k, _, v = part.strip().partition("=")
            if k == "zsid":
                session = self._web_sessions.get(v)
                if session and self.clock.now() < float(session["expires_at"]):
                    return session
        return None
