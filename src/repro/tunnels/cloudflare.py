"""Zero-trust edge in front of the Access zone (Cloudflare-tunnel model).

§III.C: FDS services "are exposed via Cloudflare zero-trust reverse
tunnels ... mitigating distributed denial of service (DDoS) attacks and
automatically blocking access that Cloudflare has determined to be a
threat."

The edge terminates all public traffic:

* **origins register via reverse tunnel** — the FDS origin dials out, so
  the VPC needs no inbound opening;
* **rate limiting / DDoS mitigation** — a sliding-window request counter
  per source; exceeding the limit throttles, and sustained abuse gets
  the source blocked;
* **threat intelligence** — a block list that can be fed externally
  (the simulated "Cloudflare has determined it is a threat").
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set

from repro.audit import AuditLog, Outcome
from repro.clock import SimClock
from repro.errors import RateLimited, ServiceUnavailable
from repro.net.http import HttpRequest, HttpResponse, Service

__all__ = ["CloudflareEdge"]


class CloudflareEdge(Service):
    """The public entry point; everything else hides behind it.

    Request paths are ``/<origin>/<inner-path>``: the first segment picks
    the registered origin, the rest is forwarded over the tunnel.

    Parameters
    ----------
    window, rate_limit:
        Sliding-window size (seconds) and max requests per source within
        it.  ``block_threshold`` consecutive limit hits block the source.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        *,
        audit: Optional[AuditLog] = None,
        window: float = 10.0,
        rate_limit: int = 50,
        block_threshold: int = 3,
    ) -> None:
        super().__init__(name)
        self.clock = clock
        self.audit = audit if audit is not None else AuditLog(f"{name}-audit")
        self.window = window
        self.rate_limit = rate_limit
        self.block_threshold = block_threshold
        self._origins: Dict[str, Service] = {}
        self._hits: Dict[str, Deque[float]] = defaultdict(deque)
        self._violations: Dict[str, int] = defaultdict(int)
        self.blocked_sources: Set[str] = set()
        self.requests_passed = 0
        self.requests_blocked = 0

    # ------------------------------------------------------------------
    def register_origin(self, name: str, origin: Service) -> None:
        """The origin's outbound tunnel registration (deployment step)."""
        self._origins[name] = origin

    def block_source(self, source: str) -> None:
        """External threat-intel block (or manual kill of a client)."""
        self.blocked_sources.add(source)
        self.log_event("threat-intel", "edge.block", source,
            Outcome.INFO,
        )

    def unblock_source(self, source: str) -> None:
        self.blocked_sources.discard(source)
        self._violations.pop(source, None)

    # ------------------------------------------------------------------
    def _rate_ok(self, source: str, now: float) -> bool:
        hits = self._hits[source]
        while hits and hits[0] <= now - self.window:
            hits.popleft()
        hits.append(now)
        if len(hits) <= self.rate_limit:
            return False if source in self.blocked_sources else True
        self._violations[source] += 1
        if self._violations[source] >= self.block_threshold:
            self.block_source(source)
        return False

    def enforce(self, source: str, path: str, now: float) -> None:
        """Apply threat-intel blocks and the rate limiter; raises
        :class:`RateLimited` when the source must be refused."""
        if source in self.blocked_sources or not self._rate_ok(source, now):
            self.requests_blocked += 1
            self.log_event(source, "edge.deny", path, Outcome.DENIED,
                blocked=source in self.blocked_sources,
            )
            raise RateLimited("request blocked by the zero-trust edge")

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Edge processing happens before any routing."""
        now = self.clock.now()
        source = request.source or "unknown"
        try:
            self.enforce(source, request.path, now)
        except RateLimited as exc:
            # edges answer 429, not the 403 the generic handler would use
            return HttpResponse.error(
                429, str(exc), error_type=RateLimited.__name__,
            )

        parts = request.path.lstrip("/").split("/", 1)
        origin_name = parts[0] if parts else ""
        origin = self._origins.get(origin_name)
        if origin is None:
            return HttpResponse.error(404, f"no origin {origin_name!r} behind this edge")
        inner_path = "/" + (parts[1] if len(parts) > 1 else "")
        inner = HttpRequest(
            method=request.method,
            path=inner_path,
            headers=dict(request.headers),
            query=dict(request.query),
            body=dict(request.body),
            source=request.source,
        )
        inner.headers["CF-Connecting-IP"] = source
        self.requests_passed += 1
        # delivery over the origin's reverse tunnel (client-initiated, so
        # no inbound firewall opening is involved)
        return origin.handle(inner)
