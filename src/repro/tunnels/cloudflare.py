"""Zero-trust edge in front of the Access zone (Cloudflare-tunnel model).

§III.C: FDS services "are exposed via Cloudflare zero-trust reverse
tunnels ... mitigating distributed denial of service (DDoS) attacks and
automatically blocking access that Cloudflare has determined to be a
threat."

The edge terminates all public traffic:

* **origins register via reverse tunnel** — the FDS origin dials out, so
  the VPC needs no inbound opening;
* **rate limiting / DDoS mitigation** — a sliding-window request counter
  per source; exceeding the limit throttles, and sustained abuse gets
  the source blocked;
* **threat intelligence** — a block list that can be fed externally
  (the simulated "Cloudflare has determined it is a threat").
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set

from repro.audit import AuditLog, Outcome
from repro.clock import SimClock
from repro.errors import RateLimited, ServiceUnavailable
from repro.net.http import HttpRequest, HttpResponse, Service
from repro.resilience.overload import Priority
from repro.telemetry.context import TraceContext
from repro.telemetry.tracing import SpanStatus

__all__ = ["CloudflareEdge"]


class CloudflareEdge(Service):
    """The public entry point; everything else hides behind it.

    Request paths are ``/<origin>/<inner-path>``: the first segment picks
    the registered origin, the rest is forwarded over the tunnel.

    Parameters
    ----------
    window, rate_limit:
        Sliding-window size (seconds) and max requests per source within
        it.  ``block_threshold`` consecutive limit hits block the source.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        *,
        audit: Optional[AuditLog] = None,
        window: float = 10.0,
        rate_limit: int = 50,
        block_threshold: int = 3,
    ) -> None:
        super().__init__(name)
        self.clock = clock
        self.audit = audit if audit is not None else AuditLog(f"{name}-audit")
        self.window = window
        self.rate_limit = rate_limit
        self.block_threshold = block_threshold
        self._origins: Dict[str, Service] = {}
        self._hits: Dict[str, Deque[float]] = defaultdict(deque)
        self._violations: Dict[str, int] = defaultdict(int)
        self.blocked_sources: Set[str] = set()
        self.requests_passed = 0
        self.requests_blocked = 0

    # ------------------------------------------------------------------
    def register_origin(self, name: str, origin: Service) -> None:
        """The origin's outbound tunnel registration (deployment step)."""
        self._origins[name] = origin

    def block_source(self, source: str) -> None:
        """External threat-intel block (or manual kill of a client)."""
        self.blocked_sources.add(source)
        self.log_event("threat-intel", "edge.block", source,
            Outcome.INFO,
        )

    def unblock_source(self, source: str) -> None:
        self.blocked_sources.discard(source)
        self._violations.pop(source, None)

    # ------------------------------------------------------------------
    def _rate_ok(self, source: str, now: float) -> bool:
        hits = self._hits[source]
        while hits and hits[0] <= now - self.window:
            hits.popleft()
        hits.append(now)
        if len(hits) <= self.rate_limit:
            return False if source in self.blocked_sources else True
        self._violations[source] += 1
        if self._violations[source] >= self.block_threshold:
            self.block_source(source)
        return False

    def _retry_after(self, source: str, now: float) -> float:
        """When the oldest in-window hit will age out (the earliest a
        retry can possibly be admitted); blocked sources get the full
        window — there is nothing useful to retry sooner."""
        hits = self._hits.get(source)
        if source in self.blocked_sources or not hits:
            return self.window
        return max(hits[0] + self.window - now, 0.0)

    def enforce(self, source: str, path: str, now: float,
                *, priority: str = Priority.INTERACTIVE) -> None:
        """Apply threat-intel blocks and the rate limiter; raises
        :class:`RateLimited` (always carrying ``retry_after``) when the
        source must be refused.  Admin/security traffic is exempt from
        the rate limiter — revocation must land during a surge — but
        never from the threat-intel block list.
        """
        blocked = source in self.blocked_sources
        rate_exempt = priority == Priority.ADMIN and not blocked
        if not rate_exempt and (blocked or not self._rate_ok(source, now)):
            self.requests_blocked += 1
            self.log_event(source, "edge.deny", path, Outcome.DENIED,
                blocked=blocked,
            )
            raise RateLimited(
                "request blocked by the zero-trust edge",
                retry_after=self._retry_after(source, now),
                service=self.name, priority=priority,
            )

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Edge processing happens before any routing."""
        now = self.clock.now()
        source = request.source or "unknown"
        # overload layer (when wired): token bucket + bulkhead ahead of
        # the per-source DDoS limiter; sheds raise to the transport
        admitted = self._admit(request)
        self._serving.append(request)
        try:
            try:
                self.enforce(source, request.path, now,
                             priority=request.priority)
            except RateLimited as exc:
                # edges answer 429, not the 403 the generic handler would
                # use; the hint travels in both body and header
                return HttpResponse.error(
                    429, str(exc), error_type=RateLimited.__name__,
                    retry_after=exc.retry_after,
                )

            parts = request.path.lstrip("/").split("/", 1)
            origin_name = parts[0] if parts else ""
            origin = self._origins.get(origin_name)
            if origin is None:
                return HttpResponse.error(404, f"no origin {origin_name!r} behind this edge")
            inner_path = "/" + (parts[1] if len(parts) > 1 else "")
            inner = HttpRequest(
                method=request.method,
                path=inner_path,
                headers=dict(request.headers),
                query=dict(request.query),
                body=dict(request.body),
                source=request.source,
                priority=request.priority,
                deadline=request.deadline,
            )
            inner.headers["CF-Connecting-IP"] = source
            self.requests_passed += 1
            # delivery over the origin's reverse tunnel (client-initiated,
            # so no inbound firewall opening is involved); the dispatch
            # bypasses Network.request, so it records its own span — the
            # via tag is what exempts this boundary crossing from the
            # SIEM's no-matching-firewall-edge anomaly rule
            tele = getattr(self.network, "telemetry", None) \
                if self.network is not None else None
            span = None
            if tele is not None:
                ctx = TraceContext.extract(inner.headers)
                if ctx is not None:
                    span = tele.tracer.start_span(
                        f"tunnel {origin_name}", ctx, service=self.name,
                        kind="tunnel", via="reverse-tunnel",
                        origin=origin_name, path=inner_path,
                    )
                    ctx.child_of(span.span_id).inject(inner.headers)
            try:
                response = origin.handle(inner)
            except BaseException as exc:
                if span is not None:
                    tele.tracer.end(span, error=exc)
                raise
            if span is not None:
                status = (SpanStatus.ERROR if response.status >= 500
                          else SpanStatus.OK)
                tele.tracer.end(span, status=status,
                                http_status=response.status)
            return response
        finally:
            self._serving.pop()
            if admitted:
                self.admission.release()
