"""Tunnels: Zenith reverse tunnels, the zero-trust edge, and the tailnet."""

from repro.tunnels.cloudflare import CloudflareEdge
from repro.tunnels.tailnet import TailnetAcl, TailnetCoordinator, TailnetNode
from repro.tunnels.zenith import TOKEN_HEADER, TunnelRecord, ZenithClient, ZenithServer

__all__ = [
    "ZenithServer",
    "ZenithClient",
    "TunnelRecord",
    "TOKEN_HEADER",
    "CloudflareEdge",
    "TailnetCoordinator",
    "TailnetNode",
    "TailnetAcl",
]
