"""Tailscale-style tailnet for the management plane (WireGuard mesh model).

§III.A/B: "Access to the management network is routed via SWS using
Tailscale tailnets ... Access to the tailnet is gated via RBAC tokens
generated in FDS via a separate administrator account identity provider"
and "there is an externally managed kill switch for the management
tailnets".

Modelled pieces:

* **enrolment** — a device joins by presenting a broker RBAC token with
  the ``tailnet.join`` capability; it receives a node identity with an
  expiring key (re-enrolment required, matching time-limited admin roles);
* **ACLs** — tag-based allow rules decide which nodes may talk on which
  ports (admin-device → mgmt-bastion only, by default);
* **relay** — all tailnet traffic enters the protected networks through
  the coordinator's relay in SWS, so the firewall still sees and
  constrains it (SWS/management → MDC/management);
* **kill switch** — per node or the whole tailnet, effective immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.audit import AuditLog, Outcome
from repro.broker.rbac import require_capability
from repro.broker.tokens import RbacTokenValidator
from repro.clock import SimClock
from repro.errors import (
    AuthenticationError,
    AuthorizationError,
    ConnectionBlocked,
    KillSwitchActive,
)
from repro.ids import IdFactory
from repro.net.http import HttpRequest, HttpResponse, Service, route

__all__ = ["TailnetNode", "TailnetAcl", "TailnetCoordinator"]

NODE_HEADER = "X-Tailnet-Node"


@dataclass
class TailnetNode:
    """A device enrolled in the mesh."""

    node_id: str
    owner: str            # broker subject that enrolled it
    hostname: str
    tags: FrozenSet[str]
    enrolled_at: float
    key_expiry: float
    disabled: bool = False

    def usable(self, now: float) -> bool:
        return not self.disabled and now < self.key_expiry


@dataclass(frozen=True)
class AclRule:
    src_tag: str
    dst_tag: str
    port: int


class TailnetAcl:
    """Allow-only, tag-based access rules (deny is the default)."""

    def __init__(self) -> None:
        self._rules: List[AclRule] = []

    def allow(self, src_tag: str, dst_tag: str, port: int) -> None:
        self._rules.append(AclRule(src_tag, dst_tag, port))

    def permits(self, src_tags: FrozenSet[str], dst_tags: FrozenSet[str], port: int) -> bool:
        return any(
            r.src_tag in src_tags and r.dst_tag in dst_tags and r.port == port
            for r in self._rules
        )

    def rules(self) -> List[AclRule]:
        return list(self._rules)


class TailnetCoordinator(Service):
    """Coordination server + relay, hosted in SWS.

    Parameters
    ----------
    validator:
        RBAC validator for audience ``"tailnet"``.
    key_ttl:
        Node key lifetime; expired nodes must re-enrol (with a fresh
        RBAC token, i.e. a fresh admin authentication).
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        ids: IdFactory,
        validator: RbacTokenValidator,
        *,
        audit: Optional[AuditLog] = None,
        key_ttl: float = 24 * 3600.0,
    ) -> None:
        super().__init__(name)
        self.clock = clock
        self.ids = ids
        self.validator = validator
        self.audit = audit if audit is not None else AuditLog(f"{name}-audit")
        self.key_ttl = key_ttl
        self.acl = TailnetAcl()
        self._nodes: Dict[str, TailnetNode] = {}
        # tailnet-exposed internal endpoints: endpoint name -> tags
        self._exposed: Dict[str, FrozenSet[str]] = {}
        self.tailnet_killed = False
        self.relayed = 0
        self.reenrolments = 0

    # ------------------------------------------------------------------
    # topology (deployment steps)
    # ------------------------------------------------------------------
    def expose_endpoint(self, endpoint_name: str, *tags: str) -> None:
        """Make an internal endpoint reachable through the tailnet."""
        self._exposed[endpoint_name] = frozenset(tags)

    # ------------------------------------------------------------------
    # enrolment
    # ------------------------------------------------------------------
    @route("POST", "/enrol")
    def enrol(self, request: HttpRequest) -> HttpResponse:
        """Join a device to the mesh with a broker RBAC token."""
        if self.tailnet_killed:
            raise KillSwitchActive("the management tailnet is shut down")
        token = request.bearer_token()
        if token is None:
            raise AuthenticationError("tailnet enrolment requires an RBAC token")
        claims = self.validator.validate(token)
        require_capability(claims, "tailnet.join")
        hostname = str(request.body.get("hostname", "device"))
        now = self.clock.now()
        # tags derive from the authenticated role, so the ACL can keep
        # infrastructure and security administrators on separate paths
        role = str(claims.get("role", ""))
        tags = {"security-device"} if role == "admin-security" \
            else {"admin-device"}
        node = TailnetNode(
            node_id=self.ids.next("tnode"),
            owner=str(claims["sub"]),
            hostname=hostname,
            tags=frozenset(tags),
            enrolled_at=now,
            key_expiry=now + self.key_ttl,
        )
        self._nodes[node.node_id] = node
        self.log_event(node.owner, "tailnet.enrol", node.node_id,
            Outcome.SUCCESS, hostname=hostname,
        )
        return HttpResponse.json(
            {"node_id": node.node_id, "key_expiry": node.key_expiry,
             "tags": sorted(node.tags)}
        )

    @route("POST", "/reenrol")
    def reenrol(self, request: HttpRequest) -> HttpResponse:
        """Rotate an existing node's key after an expiry or drop.

        Requires a *fresh* RBAC token (a new admin authentication, same
        bar as first enrolment) plus the node id; the device keeps its
        identity and tags, so ACL state and audit continuity survive the
        outage.  Disabled (kill-switched) nodes stay disabled.
        """
        if self.tailnet_killed:
            raise KillSwitchActive("the management tailnet is shut down")
        token = request.bearer_token()
        if token is None:
            raise AuthenticationError("tailnet re-enrolment requires an RBAC token")
        claims = self.validator.validate(token)
        require_capability(claims, "tailnet.join")
        node_id = str(request.body.get("node_id", ""))
        node = self._nodes.get(node_id)
        if node is None:
            raise AuthenticationError(f"unknown tailnet node {node_id!r}")
        if node.disabled:
            self.log_event(str(claims["sub"]), "tailnet.reenrol", node_id,
                Outcome.DENIED, reason="node-disabled",
            )
            raise KillSwitchActive(f"node {node_id} was disabled by the kill switch")
        if node.owner != str(claims["sub"]):
            raise AuthenticationError("only the enrolling subject may rotate a node key")
        node.key_expiry = self.clock.now() + self.key_ttl
        self.reenrolments += 1
        self.log_event(node.owner, "tailnet.reenrol", node_id,
            Outcome.SUCCESS,
        )
        return HttpResponse.json(
            {"node_id": node.node_id, "key_expiry": node.key_expiry}
        )

    def node(self, node_id: str) -> Optional[TailnetNode]:
        return self._nodes.get(node_id)

    # ------------------------------------------------------------------
    # kill switches
    # ------------------------------------------------------------------
    def disable_node(self, node_id: str) -> None:
        node = self._nodes.get(node_id)
        if node is not None:
            node.disabled = True
            self.log_event("killswitch", "tailnet.disable_node",
                node_id, Outcome.INFO,
            )

    def kill_tailnet(self) -> None:
        """Externally managed emergency stop for the whole mesh."""
        self.tailnet_killed = True
        self.log_event("killswitch", "tailnet.kill", "*",
            Outcome.INFO,
        )

    def restore_tailnet(self) -> None:
        self.tailnet_killed = False

    # ------------------------------------------------------------------
    # the relay: how tailnet traffic reaches protected endpoints
    # ------------------------------------------------------------------
    @route("POST", "/relay")
    def relay_route(self, request: HttpRequest) -> HttpResponse:
        """Wire form of :meth:`relay` for device-originated traffic."""
        node_id = str(request.body.get("node_id", ""))
        target = str(request.body.get("target", ""))
        port = int(request.body.get("port", 443))
        inner_body = request.body.get("request", {})
        inner = HttpRequest(
            method=str(inner_body.get("method", "GET")),  # type: ignore[union-attr]
            path=str(inner_body.get("path", "/")),  # type: ignore[union-attr]
            headers=dict(inner_body.get("headers", {})),  # type: ignore[union-attr]
            body=dict(inner_body.get("body", {})),  # type: ignore[union-attr]
        )
        return self.relay(node_id, target, inner, port=port)

    def relay(
        self, node_id: str, target: str, request: HttpRequest, *, port: int = 443
    ) -> HttpResponse:
        """Carry ``request`` from an enrolled node to an exposed endpoint.

        Enforces, in order: tailnet kill switch, node key validity, the
        target being exposed, and the ACL.  Then the relay forwards over
        the segmented network (so firewall policy still applies).
        """
        now = self.clock.now()
        if self.tailnet_killed:
            self.log_event(node_id, "tailnet.relay", target,
                              Outcome.DENIED, reason="tailnet-killed")
            raise KillSwitchActive("the management tailnet is shut down")
        node = self._nodes.get(node_id)
        if node is None or not node.usable(now):
            self.log_event(node_id, "tailnet.relay", target,
                              Outcome.DENIED, reason="node-invalid")
            raise AuthenticationError(
                "tailnet node unknown, disabled or key-expired; re-enrol"
            )
        dst_tags = self._exposed.get(target)
        if dst_tags is None:
            raise AuthorizationError(f"{target!r} is not exposed on the tailnet")
        if not self.acl.permits(node.tags, dst_tags, port):
            self.log_event(node_id, "tailnet.relay", target,
                              Outcome.DENIED, reason="acl")
            raise ConnectionBlocked(
                f"tailnet ACL denies {sorted(node.tags)} -> {sorted(dst_tags)}:{port}"
            )
        request.headers[NODE_HEADER] = node_id
        request.headers["X-Tailnet-Owner"] = node.owner
        self.relayed += 1
        self.log_event(node.owner, "tailnet.relay", target,
                          Outcome.SUCCESS, node=node_id, port=port)
        return self.call(target, request, port=port)
