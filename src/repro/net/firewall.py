"""Default-deny firewall with first-match rules over (domain, zone, port).

Segmentation in the paper is enforced physically (separate networks) and
logically (firewalls, private VPCs).  In the simulation both collapse into
one policy object the :class:`~repro.net.network.Network` consults for
every message.  The default is **deny**: an empty firewall is a fully
segmented network, and the deployment opens exactly the flows Fig. 1
draws (port 22 to the bastion, 443 to the Cloudflare edge, tunnel
heartbeats outbound from MDC, log shipping to SEC...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.net.zones import OperatingDomain, Zone

__all__ = ["FirewallRule", "Decision", "Firewall", "ANY"]

ANY = "*"


def _match(pattern: object, value: object) -> bool:
    return pattern == ANY or pattern == value


@dataclass(frozen=True)
class FirewallRule:
    """One allow/deny rule.  ``ANY`` ("*") wildcards any field.

    ``port`` follows the same convention (int or ``ANY``).
    """

    name: str
    src_domain: object = ANY
    src_zone: object = ANY
    dst_domain: object = ANY
    dst_zone: object = ANY
    port: object = ANY
    action: str = "allow"

    def __post_init__(self) -> None:
        if self.action not in ("allow", "deny"):
            raise ValueError(f"action must be allow/deny, got {self.action!r}")

    def matches(
        self,
        src_domain: OperatingDomain,
        src_zone: Zone,
        dst_domain: OperatingDomain,
        dst_zone: Zone,
        port: int,
    ) -> bool:
        return (
            _match(self.src_domain, src_domain)
            and _match(self.src_zone, src_zone)
            and _match(self.dst_domain, dst_domain)
            and _match(self.dst_zone, dst_zone)
            and _match(self.port, port)
        )


@dataclass(frozen=True)
class Decision:
    """Outcome of a firewall evaluation, with the rule that decided it."""

    allowed: bool
    rule: Optional[str]

    def __bool__(self) -> bool:
        return self.allowed


class Firewall:
    """First-match-wins rule list with a default-deny tail.

    ``segmented=False`` turns the firewall into allow-all — used only by
    the ABL1 "flat network" baseline to measure what segmentation buys.
    """

    def __init__(self, *, segmented: bool = True) -> None:
        self._rules: List[FirewallRule] = []
        self.segmented = segmented

    def add_rule(self, rule: FirewallRule) -> None:
        self._rules.append(rule)

    def allow(self, name: str, **kwargs: object) -> FirewallRule:
        """Shorthand: append an allow rule."""
        rule = FirewallRule(name=name, action="allow", **kwargs)  # type: ignore[arg-type]
        self.add_rule(rule)
        return rule

    def deny(self, name: str, **kwargs: object) -> FirewallRule:
        """Shorthand: append a deny rule (useful to carve holes out of allows)."""
        rule = FirewallRule(name=name, action="deny", **kwargs)  # type: ignore[arg-type]
        self.add_rule(rule)
        return rule

    def rules(self) -> List[FirewallRule]:
        return list(self._rules)

    def evaluate(
        self,
        src_domain: OperatingDomain,
        src_zone: Zone,
        dst_domain: OperatingDomain,
        dst_zone: Zone,
        port: int,
    ) -> Decision:
        """First matching rule wins; no match ⇒ deny (when segmented)."""
        if not self.segmented:
            return Decision(allowed=True, rule="unsegmented-allow-all")
        if src_domain == dst_domain and src_zone == dst_zone:
            # Intra-zone, intra-domain traffic is not firewalled between
            # co-located services (they still require tokens — zero trust
            # is enforced at the service layer, not only the network).
            return Decision(allowed=True, rule="intra-zone")
        for rule in self._rules:
            if rule.matches(src_domain, src_zone, dst_domain, dst_zone, port):
                return Decision(allowed=rule.action == "allow", rule=rule.name)
        return Decision(allowed=False, rule=None)
