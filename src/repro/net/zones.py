"""Security zones and operating domains of the Isambard design (Fig. 1).

The paper separates *zones* (the NIST SP 800-223 concept: Access,
Management, High Performance Computing, Data Storage, plus the paper's own
Security zone) from *operating domains* (where equipment physically runs:
the Modular Data Centres, Sitewide Services, Front Door Services in public
cloud, and Security Services in a separate cloud account).  Both axes
matter for segmentation, so every endpoint in the simulation is labelled
with one of each.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Zone", "OperatingDomain", "ZONE_DESCRIPTIONS", "DOMAIN_DESCRIPTIONS"]


class Zone(str, Enum):
    """NIST SP 800-223 style security zones, plus the public internet."""

    INTERNET = "internet"
    ACCESS = "access"
    HPC = "hpc"
    DATA_STORAGE = "data_storage"
    MANAGEMENT = "management"
    SECURITY = "security"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class OperatingDomain(str, Enum):
    """Where a component physically/administratively runs."""

    EXTERNAL = "external"  # user devices, institutional IdPs, the internet
    MDC = "mdc"            # Modular Data Centres (the supercomputers)
    SWS = "sws"            # Sitewide Services (bastions, log gathering, tailnet)
    FDS = "fds"            # Front Door Services (public cloud; Access zone)
    SEC = "sec"            # Security Services (separate cloud account; SOC)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


ZONE_DESCRIPTIONS = {
    Zone.INTERNET: "Public internet: user devices and external services",
    Zone.ACCESS: "Access zone: the only internet-facing zone; all authentication",
    Zone.HPC: "High Performance Computing zone: login and compute nodes",
    Zone.DATA_STORAGE: "Data storage zone: parallel filesystems",
    Zone.MANAGEMENT: "Management zone: admin plane, reachable only via tailnet",
    Zone.SECURITY: "Security zone: SIEM/SOC, isolated from all other zones",
}

DOMAIN_DESCRIPTIONS = {
    OperatingDomain.EXTERNAL: "External: user devices, institutional IdPs, MyAccessID",
    OperatingDomain.MDC: "Modular Data Centres housing Isambard-AI / Isambard 3",
    OperatingDomain.SWS: "Sitewide Services at the NCC: bastions, logs, tailnet relays",
    OperatingDomain.FDS: "Front Door Services in public cloud: broker, portal, CA, Zenith",
    OperatingDomain.SEC: "Security Services in a separate cloud account: the SOC",
}
