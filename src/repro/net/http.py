"""Simulated HTTP layer: requests, responses and routable services.

The control plane of the reproduction speaks this miniature HTTP: the
identity broker, portal, OIDC endpoints, SSH CA, Zenith, Jupyter and the
SOC are all :class:`Service` subclasses that register routes.  Every
message travels through :class:`~repro.net.network.Network`, so firewall
and encryption policy apply uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import DeadlineExceeded, RateLimited, ReproError
from repro.resilience.overload import Priority
from repro.telemetry.context import (
    BAGGAGE_HEADER,
    TRACEPARENT_HEADER,
    TraceContext,
    trace_id_from_headers,
)
from repro.telemetry.tracing import SpanStatus

__all__ = ["HttpRequest", "HttpResponse", "Service", "route"]


@dataclass
class HttpRequest:
    """A structured request.  ``body`` and ``query`` are plain dicts —
    serialization fidelity is not what this simulation studies.

    ``priority`` tags the traffic class for overload protection (see
    :class:`repro.resilience.overload.Priority`) and ``deadline`` is the
    absolute simulated time after which the caller no longer wants the
    answer; both propagate automatically onto downstream calls a service
    makes while handling this request.
    """

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    query: Dict[str, str] = field(default_factory=dict)
    body: Dict[str, object] = field(default_factory=dict)
    source: str = ""  # endpoint name of the caller, filled in by the network
    priority: str = Priority.INTERACTIVE
    deadline: Optional[float] = None
    # adaptive per-attempt deadline (absolute simulated time) set by the
    # tail-tolerance layer for ONE transport hop: the network abandons
    # the attempt (AttemptTimeout, pre-delivery) rather than riding a
    # gray hop's latency.  Deliberately hop-local — unlike ``deadline``
    # it never propagates to nested calls, so only the hop whose caller
    # armed it can trip it
    attempt_deadline: Optional[float] = None

    def bearer_token(self) -> Optional[str]:
        """Extract a ``Authorization: Bearer ...`` token if present."""
        auth = self.headers.get("Authorization", "")
        if auth.startswith("Bearer "):
            return auth[len("Bearer "):]
        return None


@dataclass
class HttpResponse:
    status: int
    body: Dict[str, object] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @classmethod
    def json(cls, body: Dict[str, object], status: int = 200) -> "HttpResponse":
        return cls(status=status, body=body)

    @classmethod
    def error(cls, status: int, message: str, **extra: object) -> "HttpResponse":
        body: Dict[str, object] = {"error": message}
        body.update(extra)
        return cls(status=status, body=body)

    @classmethod
    def redirect(cls, location: str) -> "HttpResponse":
        return cls(status=302, headers={"Location": location})


def route(method: str, path: str):
    """Decorator marking a :class:`Service` method as a route handler."""

    def mark(fn: Callable) -> Callable:
        fn._route = (method.upper(), path)  # type: ignore[attr-defined]
        return fn

    return mark


class Service:
    """Base class for everything that serves requests in the simulation.

    Subclasses declare handlers with the :func:`route` decorator; the
    metaclass-free registration happens at construction by scanning the
    class.  A service knows its ``name`` (which doubles as its endpoint
    name once attached to the network) and can issue outbound requests
    through the network with :meth:`call`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.network = None  # set by Network.attach
        self.endpoint = None
        # optional repro.resilience.Resilience kit wrapping outbound calls
        self.resilience = None
        # optional repro.resilience.overload.AdmissionController guarding
        # inbound dispatch (token bucket + bulkhead + priority shedding)
        self.admission = None
        # requests currently being served (a stack: nested dispatch via
        # the edge or re-entrant calls) — outbound calls inherit the top
        # request's deadline and priority, which is what makes deadline
        # propagation work without touching every call site
        self._serving: List[HttpRequest] = []
        self._routes: Dict[Tuple[str, str], Callable[[HttpRequest], HttpResponse]] = {}
        for attr in dir(type(self)):
            fn = getattr(type(self), attr)
            r = getattr(fn, "_route", None)
            if r is not None:
                self._routes[r] = getattr(self, attr)

    # ------------------------------------------------------------------
    def handle(self, request: HttpRequest) -> HttpResponse:
        """Dispatch to the registered route; 404 if none matches.

        A handler that raises :class:`ReproError` becomes a 403 denial
        (the error message travels in the body — these are simulated
        services, leaking reasons aids the benchmarks' legibility).
        Unexpected exceptions propagate: they are bugs, not denials.

        Overload signals are different: an attached admission controller
        may shed the request (:class:`RateLimited`), and both that and
        :class:`DeadlineExceeded` re-raise to the transport instead of
        becoming 403s — the network audits them distinctly and the
        caller's retry machinery must see the real exception (with its
        ``retry_after`` hint), not a denial response.
        """
        handler = self._routes.get((request.method.upper(), request.path))
        if handler is None:
            return HttpResponse.error(404, f"no route {request.method} {request.path}")
        admitted = self._admit(request)
        self._serving.append(request)
        try:
            return handler(request)
        except (RateLimited, DeadlineExceeded):
            raise
        except ReproError as exc:
            return HttpResponse.error(
                403, str(exc), error_type=type(exc).__name__
            )
        finally:
            self._serving.pop()
            if admitted:
                self.admission.release()

    def _admit(self, request: HttpRequest) -> bool:
        """Consult the admission controller (if any) before dispatch.

        Also rejects already-expired work here: the tunnel-forwarded
        path (edge → origin) dispatches directly without a network hop,
        so a guarded service re-checks the deadline itself.
        """
        if self.admission is None:
            return False
        if (request.deadline is not None
                and self.admission.clock.now() > request.deadline):
            raise DeadlineExceeded(
                f"{self.name}: deadline passed before dispatch",
                deadline=request.deadline, priority=request.priority,
            )
        return self.admission.admit(request.path, request.priority)

    # ------------------------------------------------------------------
    def call(
        self,
        dst: str,
        request: HttpRequest,
        *,
        port: int = 443,
        encrypted: bool = True,
    ) -> HttpResponse:
        """Make an outbound request through the attached network.

        With a resilience kit attached, transient transport failures
        (``ServiceUnavailable`` and its injected-fault subclasses) are
        retried with backoff and circuit-broken per destination; the
        network fails faulted messages before delivery, so these retries
        never replay a partially applied request.

        Deadline and priority propagate: while this service is handling
        a request, outbound calls inherit that request's deadline (the
        tighter of the two if both are set) and its priority when the
        outbound request carries only the default tag.  A broker hop
        made on behalf of an expiring login therefore expires with it.
        The trace context propagates the same way: an outbound request
        with no ``traceparent`` of its own inherits the served request's,
        and — when the network carries a telemetry runtime — the whole
        outbound call (including every retry attempt and any breaker
        short-circuit) is recorded as one client span.
        """
        if self.network is None or self.endpoint is None:
            raise RuntimeError(f"service {self.name} is not attached to a network")
        if self._serving:
            inbound = self._serving[-1]
            if request.deadline is None:
                request.deadline = inbound.deadline
            elif inbound.deadline is not None:
                request.deadline = min(request.deadline, inbound.deadline)
            if (request.priority == Priority.INTERACTIVE
                    and inbound.priority != Priority.INTERACTIVE):
                request.priority = inbound.priority
            if (TRACEPARENT_HEADER not in request.headers
                    and TRACEPARENT_HEADER in inbound.headers):
                request.headers[TRACEPARENT_HEADER] = \
                    inbound.headers[TRACEPARENT_HEADER]
                if BAGGAGE_HEADER in inbound.headers:
                    request.headers[BAGGAGE_HEADER] = \
                        inbound.headers[BAGGAGE_HEADER]

        tele = getattr(self.network, "telemetry", None)
        span = None
        saved_tp = saved_bg = None
        attempts_before = 0
        if tele is not None:
            ctx = TraceContext.extract(request.headers)
            if ctx is not None:
                span = tele.tracer.start_span(
                    f"call {dst}", ctx, service=self.name, kind="client",
                    dst=dst, path=request.path,
                )
                saved_tp = request.headers.get(TRACEPARENT_HEADER)
                saved_bg = request.headers.get(BAGGAGE_HEADER)
                ctx.child_of(span.span_id).inject(request.headers)
                if self.resilience is not None:
                    attempts_before = self.resilience.metrics.attempts
        try:
            if self.resilience is not None:
                # the request's absolute deadline caps retry waits: the
                # kit abandons rather than sleeping past it (satellite
                # fix — a backoff that outlives the deadline is pure
                # wasted simulated time)
                response = self.resilience.call(
                    lambda: self.network.request(
                        self.endpoint.name, dst, request, port=port,
                        encrypted=encrypted,
                    ),
                    dst=dst,
                    deadline=request.deadline,
                    request=request,
                )
            else:
                response = self.network.request(
                    self.endpoint.name, dst, request, port=port,
                    encrypted=encrypted,
                )
        except BaseException as exc:
            if span is not None:
                self._end_call_span(tele, span, attempts_before, error=exc)
            raise
        else:
            if span is not None:
                status = (SpanStatus.ERROR if response.status >= 500
                          else SpanStatus.OK)
                self._end_call_span(tele, span, attempts_before,
                                    status=status,
                                    http_status=response.status)
            return response
        finally:
            if span is not None:
                if saved_tp is None:
                    request.headers.pop(TRACEPARENT_HEADER, None)
                else:
                    request.headers[TRACEPARENT_HEADER] = saved_tp
                if saved_bg is None:
                    request.headers.pop(BAGGAGE_HEADER, None)
                else:
                    request.headers[BAGGAGE_HEADER] = saved_bg

    def _end_call_span(self, tele, span, attempts_before: int,
                       **end_kwargs) -> None:
        """Close a client span, annotating how many transport attempts the
        resilience kit spent inside it (1 means no retry happened)."""
        if self.resilience is not None:
            attempts = self.resilience.metrics.attempts - attempts_before
            if attempts:
                span.attrs["attempts"] = attempts
        tele.tracer.end(span, **end_kwargs)

    def routes(self) -> Dict[Tuple[str, str], Callable]:
        return dict(self._routes)

    # ------------------------------------------------------------------
    def log_event(self, actor: str, action: str, resource: str,
                  outcome: str, **attrs: object):
        """Emit an audit event stamped with this service's location.

        Requires the subclass to hold ``self.audit`` and ``self.clock``
        (every auditing service in this library does); the domain/zone
        labels come from the attached endpoint so cross-domain incident
        correlation works.  Events emitted while serving a traced request
        are stamped with its ``trace_id``, which is what lets the SIEM
        reconstruct a request tree starting from either the span store or
        the audit trail.
        """
        domain = zone = ""
        if self.endpoint is not None:
            domain = str(self.endpoint.domain)
            zone = str(self.endpoint.zone)
        region = getattr(self, "region_name", "")
        if region and "region" not in attrs:
            attrs["region"] = region
        if "trace_id" not in attrs:
            for inbound in reversed(self._serving):
                tid = trace_id_from_headers(inbound.headers)
                if tid is not None:
                    attrs["trace_id"] = tid
                    break
        return self.audit.record(  # type: ignore[attr-defined]
            self.clock.now(), self.name, actor, action, resource,  # type: ignore[attr-defined]
            outcome, domain=domain, zone=zone, **attrs,
        )
