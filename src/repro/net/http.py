"""Simulated HTTP layer: requests, responses and routable services.

The control plane of the reproduction speaks this miniature HTTP: the
identity broker, portal, OIDC endpoints, SSH CA, Zenith, Jupyter and the
SOC are all :class:`Service` subclasses that register routes.  Every
message travels through :class:`~repro.net.network.Network`, so firewall
and encryption policy apply uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ReproError

__all__ = ["HttpRequest", "HttpResponse", "Service", "route"]


@dataclass
class HttpRequest:
    """A structured request.  ``body`` and ``query`` are plain dicts —
    serialization fidelity is not what this simulation studies."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    query: Dict[str, str] = field(default_factory=dict)
    body: Dict[str, object] = field(default_factory=dict)
    source: str = ""  # endpoint name of the caller, filled in by the network

    def bearer_token(self) -> Optional[str]:
        """Extract a ``Authorization: Bearer ...`` token if present."""
        auth = self.headers.get("Authorization", "")
        if auth.startswith("Bearer "):
            return auth[len("Bearer "):]
        return None


@dataclass
class HttpResponse:
    status: int
    body: Dict[str, object] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @classmethod
    def json(cls, body: Dict[str, object], status: int = 200) -> "HttpResponse":
        return cls(status=status, body=body)

    @classmethod
    def error(cls, status: int, message: str, **extra: object) -> "HttpResponse":
        body: Dict[str, object] = {"error": message}
        body.update(extra)
        return cls(status=status, body=body)

    @classmethod
    def redirect(cls, location: str) -> "HttpResponse":
        return cls(status=302, headers={"Location": location})


def route(method: str, path: str):
    """Decorator marking a :class:`Service` method as a route handler."""

    def mark(fn: Callable) -> Callable:
        fn._route = (method.upper(), path)  # type: ignore[attr-defined]
        return fn

    return mark


class Service:
    """Base class for everything that serves requests in the simulation.

    Subclasses declare handlers with the :func:`route` decorator; the
    metaclass-free registration happens at construction by scanning the
    class.  A service knows its ``name`` (which doubles as its endpoint
    name once attached to the network) and can issue outbound requests
    through the network with :meth:`call`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.network = None  # set by Network.attach
        self.endpoint = None
        # optional repro.resilience.Resilience kit wrapping outbound calls
        self.resilience = None
        self._routes: Dict[Tuple[str, str], Callable[[HttpRequest], HttpResponse]] = {}
        for attr in dir(type(self)):
            fn = getattr(type(self), attr)
            r = getattr(fn, "_route", None)
            if r is not None:
                self._routes[r] = getattr(self, attr)

    # ------------------------------------------------------------------
    def handle(self, request: HttpRequest) -> HttpResponse:
        """Dispatch to the registered route; 404 if none matches.

        A handler that raises :class:`ReproError` becomes a 403 denial
        (the error message travels in the body — these are simulated
        services, leaking reasons aids the benchmarks' legibility).
        Unexpected exceptions propagate: they are bugs, not denials.
        """
        handler = self._routes.get((request.method.upper(), request.path))
        if handler is None:
            return HttpResponse.error(404, f"no route {request.method} {request.path}")
        try:
            return handler(request)
        except ReproError as exc:
            return HttpResponse.error(
                403, str(exc), error_type=type(exc).__name__
            )

    # ------------------------------------------------------------------
    def call(
        self,
        dst: str,
        request: HttpRequest,
        *,
        port: int = 443,
        encrypted: bool = True,
    ) -> HttpResponse:
        """Make an outbound request through the attached network.

        With a resilience kit attached, transient transport failures
        (``ServiceUnavailable`` and its injected-fault subclasses) are
        retried with backoff and circuit-broken per destination; the
        network fails faulted messages before delivery, so these retries
        never replay a partially applied request.
        """
        if self.network is None or self.endpoint is None:
            raise RuntimeError(f"service {self.name} is not attached to a network")
        if self.resilience is not None:
            return self.resilience.call(
                lambda: self.network.request(
                    self.endpoint.name, dst, request, port=port,
                    encrypted=encrypted,
                ),
                dst=dst,
            )
        return self.network.request(
            self.endpoint.name, dst, request, port=port, encrypted=encrypted
        )

    def routes(self) -> Dict[Tuple[str, str], Callable]:
        return dict(self._routes)

    # ------------------------------------------------------------------
    def log_event(self, actor: str, action: str, resource: str,
                  outcome: str, **attrs: object):
        """Emit an audit event stamped with this service's location.

        Requires the subclass to hold ``self.audit`` and ``self.clock``
        (every auditing service in this library does); the domain/zone
        labels come from the attached endpoint so cross-domain incident
        correlation works.
        """
        domain = zone = ""
        if self.endpoint is not None:
            domain = str(self.endpoint.domain)
            zone = str(self.endpoint.zone)
        return self.audit.record(  # type: ignore[attr-defined]
            self.clock.now(), self.name, actor, action, resource,  # type: ignore[attr-defined]
            outcome, domain=domain, zone=zone, **attrs,
        )
