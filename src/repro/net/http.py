"""Simulated HTTP layer: requests, responses and routable services.

The control plane of the reproduction speaks this miniature HTTP: the
identity broker, portal, OIDC endpoints, SSH CA, Zenith, Jupyter and the
SOC are all :class:`Service` subclasses that register routes.  Every
message travels through :class:`~repro.net.network.Network`, so firewall
and encryption policy apply uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import DeadlineExceeded, RateLimited, ReproError
from repro.resilience.overload import Priority

__all__ = ["HttpRequest", "HttpResponse", "Service", "route"]


@dataclass
class HttpRequest:
    """A structured request.  ``body`` and ``query`` are plain dicts —
    serialization fidelity is not what this simulation studies.

    ``priority`` tags the traffic class for overload protection (see
    :class:`repro.resilience.overload.Priority`) and ``deadline`` is the
    absolute simulated time after which the caller no longer wants the
    answer; both propagate automatically onto downstream calls a service
    makes while handling this request.
    """

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    query: Dict[str, str] = field(default_factory=dict)
    body: Dict[str, object] = field(default_factory=dict)
    source: str = ""  # endpoint name of the caller, filled in by the network
    priority: str = Priority.INTERACTIVE
    deadline: Optional[float] = None

    def bearer_token(self) -> Optional[str]:
        """Extract a ``Authorization: Bearer ...`` token if present."""
        auth = self.headers.get("Authorization", "")
        if auth.startswith("Bearer "):
            return auth[len("Bearer "):]
        return None


@dataclass
class HttpResponse:
    status: int
    body: Dict[str, object] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @classmethod
    def json(cls, body: Dict[str, object], status: int = 200) -> "HttpResponse":
        return cls(status=status, body=body)

    @classmethod
    def error(cls, status: int, message: str, **extra: object) -> "HttpResponse":
        body: Dict[str, object] = {"error": message}
        body.update(extra)
        return cls(status=status, body=body)

    @classmethod
    def redirect(cls, location: str) -> "HttpResponse":
        return cls(status=302, headers={"Location": location})


def route(method: str, path: str):
    """Decorator marking a :class:`Service` method as a route handler."""

    def mark(fn: Callable) -> Callable:
        fn._route = (method.upper(), path)  # type: ignore[attr-defined]
        return fn

    return mark


class Service:
    """Base class for everything that serves requests in the simulation.

    Subclasses declare handlers with the :func:`route` decorator; the
    metaclass-free registration happens at construction by scanning the
    class.  A service knows its ``name`` (which doubles as its endpoint
    name once attached to the network) and can issue outbound requests
    through the network with :meth:`call`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.network = None  # set by Network.attach
        self.endpoint = None
        # optional repro.resilience.Resilience kit wrapping outbound calls
        self.resilience = None
        # optional repro.resilience.overload.AdmissionController guarding
        # inbound dispatch (token bucket + bulkhead + priority shedding)
        self.admission = None
        # requests currently being served (a stack: nested dispatch via
        # the edge or re-entrant calls) — outbound calls inherit the top
        # request's deadline and priority, which is what makes deadline
        # propagation work without touching every call site
        self._serving: List[HttpRequest] = []
        self._routes: Dict[Tuple[str, str], Callable[[HttpRequest], HttpResponse]] = {}
        for attr in dir(type(self)):
            fn = getattr(type(self), attr)
            r = getattr(fn, "_route", None)
            if r is not None:
                self._routes[r] = getattr(self, attr)

    # ------------------------------------------------------------------
    def handle(self, request: HttpRequest) -> HttpResponse:
        """Dispatch to the registered route; 404 if none matches.

        A handler that raises :class:`ReproError` becomes a 403 denial
        (the error message travels in the body — these are simulated
        services, leaking reasons aids the benchmarks' legibility).
        Unexpected exceptions propagate: they are bugs, not denials.

        Overload signals are different: an attached admission controller
        may shed the request (:class:`RateLimited`), and both that and
        :class:`DeadlineExceeded` re-raise to the transport instead of
        becoming 403s — the network audits them distinctly and the
        caller's retry machinery must see the real exception (with its
        ``retry_after`` hint), not a denial response.
        """
        handler = self._routes.get((request.method.upper(), request.path))
        if handler is None:
            return HttpResponse.error(404, f"no route {request.method} {request.path}")
        admitted = self._admit(request)
        self._serving.append(request)
        try:
            return handler(request)
        except (RateLimited, DeadlineExceeded):
            raise
        except ReproError as exc:
            return HttpResponse.error(
                403, str(exc), error_type=type(exc).__name__
            )
        finally:
            self._serving.pop()
            if admitted:
                self.admission.release()

    def _admit(self, request: HttpRequest) -> bool:
        """Consult the admission controller (if any) before dispatch.

        Also rejects already-expired work here: the tunnel-forwarded
        path (edge → origin) dispatches directly without a network hop,
        so a guarded service re-checks the deadline itself.
        """
        if self.admission is None:
            return False
        if (request.deadline is not None
                and self.admission.clock.now() > request.deadline):
            raise DeadlineExceeded(
                f"{self.name}: deadline passed before dispatch",
                deadline=request.deadline, priority=request.priority,
            )
        return self.admission.admit(request.path, request.priority)

    # ------------------------------------------------------------------
    def call(
        self,
        dst: str,
        request: HttpRequest,
        *,
        port: int = 443,
        encrypted: bool = True,
    ) -> HttpResponse:
        """Make an outbound request through the attached network.

        With a resilience kit attached, transient transport failures
        (``ServiceUnavailable`` and its injected-fault subclasses) are
        retried with backoff and circuit-broken per destination; the
        network fails faulted messages before delivery, so these retries
        never replay a partially applied request.

        Deadline and priority propagate: while this service is handling
        a request, outbound calls inherit that request's deadline (the
        tighter of the two if both are set) and its priority when the
        outbound request carries only the default tag.  A broker hop
        made on behalf of an expiring login therefore expires with it.
        """
        if self.network is None or self.endpoint is None:
            raise RuntimeError(f"service {self.name} is not attached to a network")
        if self._serving:
            inbound = self._serving[-1]
            if request.deadline is None:
                request.deadline = inbound.deadline
            elif inbound.deadline is not None:
                request.deadline = min(request.deadline, inbound.deadline)
            if (request.priority == Priority.INTERACTIVE
                    and inbound.priority != Priority.INTERACTIVE):
                request.priority = inbound.priority
        if self.resilience is not None:
            return self.resilience.call(
                lambda: self.network.request(
                    self.endpoint.name, dst, request, port=port,
                    encrypted=encrypted,
                ),
                dst=dst,
            )
        return self.network.request(
            self.endpoint.name, dst, request, port=port, encrypted=encrypted
        )

    def routes(self) -> Dict[Tuple[str, str], Callable]:
        return dict(self._routes)

    # ------------------------------------------------------------------
    def log_event(self, actor: str, action: str, resource: str,
                  outcome: str, **attrs: object):
        """Emit an audit event stamped with this service's location.

        Requires the subclass to hold ``self.audit`` and ``self.clock``
        (every auditing service in this library does); the domain/zone
        labels come from the attached endpoint so cross-domain incident
        correlation works.
        """
        domain = zone = ""
        if self.endpoint is not None:
            domain = str(self.endpoint.domain)
            zone = str(self.endpoint.zone)
        return self.audit.record(  # type: ignore[attr-defined]
            self.clock.now(), self.name, actor, action, resource,  # type: ignore[attr-defined]
            outcome, domain=domain, zone=zone, **attrs,
        )
