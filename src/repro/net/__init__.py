"""Simulated segmented network: zones, domains, firewall, HTTP transport."""

from repro.net.analyzer import ChangeReport, FlowDelta, analyze_rule_change
from repro.net.firewall import ANY, Decision, Firewall, FirewallRule
from repro.net.http import HttpRequest, HttpResponse, Service, route
from repro.net.network import Endpoint, Network
from repro.net.zones import (
    DOMAIN_DESCRIPTIONS,
    ZONE_DESCRIPTIONS,
    OperatingDomain,
    Zone,
)

__all__ = [
    "analyze_rule_change",
    "ChangeReport",
    "FlowDelta",
    "ANY",
    "Decision",
    "Firewall",
    "FirewallRule",
    "HttpRequest",
    "HttpResponse",
    "Service",
    "route",
    "Endpoint",
    "Network",
    "OperatingDomain",
    "Zone",
    "ZONE_DESCRIPTIONS",
    "DOMAIN_DESCRIPTIONS",
]
