"""The simulated network: endpoints, segmentation and encrypted transport.

Every message between components goes through :meth:`Network.request`,
which enforces, in order:

1. the destination exists and is up (``ServiceUnavailable`` otherwise);
2. the firewall permits the (domain, zone, port) flow
   (``ConnectionBlocked`` — this is what segmentation *is* here);
3. the channel is encrypted whenever traffic leaves a zone or domain
   (``EncryptionRequired`` — zero-trust tenet 2);

then delivers to the destination service and advances the simulated clock
by the link latency, so end-to-end workflow latency is measurable in the
benchmarks.  Allowed and denied flows are both recorded in the network's
audit log (tenet 7).

A :class:`~repro.resilience.faults.FaultInjector` may be attached; it is
consulted after the policy checks and may fail the message
(``FaultInjected``, a ``ServiceUnavailable``) or slow its delivery.
Injected failures happen *before* the destination service runs, so a
failed message was never partially applied — client retries are safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.audit import AuditLog, Outcome
from repro.clock import SimClock
from repro.errors import (
    AttemptTimeout,
    ConfigurationError,
    ConnectionBlocked,
    DeadlineExceeded,
    EncryptionRequired,
    RateLimited,
    ServiceUnavailable,
)
from repro.net.firewall import Firewall
from repro.net.http import HttpRequest, HttpResponse, Service
from repro.net.zones import OperatingDomain, Zone
from repro.telemetry.context import (
    BAGGAGE_HEADER,
    TRACEPARENT_HEADER,
    TraceContext,
)
from repro.telemetry.tracing import SpanStatus

__all__ = ["Endpoint", "Network"]


def _hop_outcome(exc: BaseException) -> str:
    """Transport outcome label for a failed hop (RED metrics taxonomy)."""
    if isinstance(exc, (ConnectionBlocked, EncryptionRequired)):
        return "blocked"
    if isinstance(exc, RateLimited):
        return "shed"
    if isinstance(exc, DeadlineExceeded):
        return "expired"
    if isinstance(exc, ServiceUnavailable):
        return "unavailable"
    return "error"


@dataclass
class Endpoint:
    """A network presence: a service bound to a domain and zone."""

    name: str
    domain: OperatingDomain
    zone: Zone
    service: Service
    up: bool = True
    tags: Dict[str, str] = field(default_factory=dict)


class Network:
    """Registry of endpoints plus the segmentation and transport policy.

    Parameters
    ----------
    clock:
        Shared simulated clock; each delivered hop advances it.
    firewall:
        The segmentation policy (default: a fresh default-deny firewall).
    audit:
        Where network-level events land.
    hop_latency:
        Simulated seconds consumed per delivered message.
    faults:
        Optional chaos harness (``repro.resilience.FaultInjector``);
        consulted per message once policy checks pass.
    """

    def __init__(
        self,
        clock: SimClock,
        firewall: Optional[Firewall] = None,
        audit: Optional[AuditLog] = None,
        *,
        hop_latency: float = 0.001,
        faults=None,
    ) -> None:
        self.clock = clock
        self.firewall = firewall if firewall is not None else Firewall()
        self.audit = audit if audit is not None else AuditLog("network")
        self.hop_latency = hop_latency
        self.faults = faults
        # optional repro.telemetry.Telemetry: when set, every hop becomes
        # a server span (if the request carries a trace context) and an
        # observation in the RED metrics — pure observation, no timing or
        # id stream is touched
        self.telemetry = None
        self._endpoints: Dict[str, Endpoint] = {}
        self.messages_delivered = 0
        self.messages_blocked = 0
        self.messages_faulted = 0
        self.messages_expired = 0
        self.messages_shed = 0
        self.messages_attempt_timeouts = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def attach(
        self,
        service: Service,
        domain: OperatingDomain,
        zone: Zone,
        *,
        name: Optional[str] = None,
        **tags: str,
    ) -> Endpoint:
        """Bind ``service`` to the network at (domain, zone)."""
        ep_name = name or service.name
        if ep_name in self._endpoints:
            raise ConfigurationError(f"endpoint {ep_name!r} already attached")
        endpoint = Endpoint(
            name=ep_name, domain=domain, zone=zone, service=service, tags=dict(tags)
        )
        self._endpoints[ep_name] = endpoint
        service.network = self
        service.endpoint = endpoint
        return endpoint

    def detach(self, name: str) -> None:
        ep = self._endpoints.pop(name, None)
        if ep is not None:
            ep.service.network = None
            ep.service.endpoint = None

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise ConfigurationError(f"no endpoint named {name!r}") from None

    def endpoints(self) -> List[Endpoint]:
        return list(self._endpoints.values())

    def has_endpoint(self, name: str) -> bool:
        return name in self._endpoints

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def reachable(self, src: str, dst: str, port: int = 443) -> bool:
        """Would the firewall permit a flow from ``src`` to ``dst``?

        Pure segmentation query — no message is sent, nothing is audited.
        Used by the Fig. 1 architecture bench and the threat model.
        """
        s, d = self.endpoint(src), self.endpoint(dst)
        return bool(
            self.firewall.evaluate(s.domain, s.zone, d.domain, d.zone, port)
        )

    def request(
        self,
        src: str,
        dst: str,
        request: HttpRequest,
        *,
        port: int = 443,
        encrypted: bool = True,
    ) -> HttpResponse:
        """Deliver ``request`` from endpoint ``src`` to endpoint ``dst``.

        Raises the segmentation/transport exceptions documented in the
        module docstring; on success returns the service's response.
        """
        s = self.endpoint(src)
        d = self.endpoint(dst)

        # tracing: when the request carries a trace context, this hop is
        # a server span.  The span's child context is injected into the
        # request headers so nested calls the handler makes parent under
        # this hop; the caller's headers are restored on exit because
        # resilience retries reuse the same request object — each retry
        # must re-enter with the caller's context so attempt spans land
        # as siblings under one client span, never nested in a failed
        # attempt.
        tele = self.telemetry
        span = None
        trace_attrs: Dict[str, object] = {}
        saved_tp = request.headers.get(TRACEPARENT_HEADER)
        saved_bg = request.headers.get(BAGGAGE_HEADER)
        if tele is not None:
            ctx = TraceContext.extract(request.headers)
            if ctx is not None:
                span = tele.tracer.start_span(
                    f"{request.method} {dst}{request.path}", ctx,
                    service=dst, kind="server", src=src, port=port,
                    path=request.path,
                    src_zone=f"{s.domain}/{s.zone}",
                    dst_zone=f"{d.domain}/{d.zone}",
                )
                ctx.child_of(span.span_id).inject(request.headers)
                trace_attrs["trace_id"] = ctx.trace_id
        t_start = self.clock.now()
        try:
            response = self._deliver(
                s, d, src, dst, request, port=port, encrypted=encrypted,
                trace_attrs=trace_attrs,
            )
        except BaseException as exc:
            if tele is not None:
                tele.observe_hop(
                    src=src, dst=dst, outcome=_hop_outcome(exc),
                    duration=self.clock.now() - t_start, path=request.path,
                    trace_id=trace_attrs.get("trace_id"),
                )
                if span is not None:
                    tele.tracer.end(span, error=exc)
                    if isinstance(exc, AttemptTimeout):
                        # hand the abandoned attempt's span to the hedge
                        # machinery: if this timeout fires a hedge, the
                        # winner's layer marks this span cancelled so
                        # trace analysis can tell a cancelled loser from
                        # a genuinely expired attempt
                        exc.span = span
            raise
        else:
            if tele is not None:
                outcome = ("ok" if response.status < 400
                           else "denied" if response.status < 500
                           else "error")
                tele.observe_hop(
                    src=src, dst=dst, outcome=outcome,
                    duration=self.clock.now() - t_start, path=request.path,
                    trace_id=trace_attrs.get("trace_id"),
                )
                if span is not None:
                    status = (SpanStatus.ERROR if response.status >= 500
                              else SpanStatus.OK)
                    tele.tracer.end(
                        span, status=status, http_status=response.status)
            return response
        finally:
            if span is not None:
                if saved_tp is None:
                    request.headers.pop(TRACEPARENT_HEADER, None)
                else:
                    request.headers[TRACEPARENT_HEADER] = saved_tp
                if saved_bg is None:
                    request.headers.pop(BAGGAGE_HEADER, None)
                else:
                    request.headers[BAGGAGE_HEADER] = saved_bg

    def _deliver(
        self,
        s: Endpoint,
        d: Endpoint,
        src: str,
        dst: str,
        request: HttpRequest,
        *,
        port: int,
        encrypted: bool,
        trace_attrs: Dict[str, object],
    ) -> HttpResponse:
        """Policy checks + delivery; every audit record carries the
        request's trace id (when traced) so the SIEM can pivot between
        the audit trail and the span store."""
        decision = self.firewall.evaluate(s.domain, s.zone, d.domain, d.zone, port)
        if not decision:
            self.messages_blocked += 1
            self.audit.record(
                self.clock.now(), "network", src, "firewall.deny", dst,
                Outcome.DENIED, domain=str(d.domain), zone=str(d.zone),
                port=port, rule=decision.rule, **trace_attrs,
            )
            raise ConnectionBlocked(
                f"{src} ({s.domain}/{s.zone}) -> {dst} ({d.domain}/{d.zone}) "
                f"port {port}: denied by segmentation policy"
            )

        crosses_boundary = s.domain != d.domain or s.zone != d.zone
        if crosses_boundary and not encrypted:
            self.messages_blocked += 1
            self.audit.record(
                self.clock.now(), "network", src, "transport.plaintext_rejected",
                dst, Outcome.DENIED, domain=str(d.domain), zone=str(d.zone),
                **trace_attrs,
            )
            raise EncryptionRequired(
                f"plaintext flow {src} -> {dst} crosses a zone/domain boundary"
            )

        if not d.up:
            self.audit.record(
                self.clock.now(), "network", src, "endpoint.unavailable", dst,
                Outcome.ERROR, domain=str(d.domain), zone=str(d.zone),
                **trace_attrs,
            )
            raise ServiceUnavailable(f"endpoint {dst} is down")

        # overload protection: queued work whose deadline already passed
        # is shed here, before the destination burns any capacity on it
        if request.deadline is not None and self.clock.now() > request.deadline:
            self.messages_expired += 1
            self.audit.record(
                self.clock.now(), "network", src, "deadline.expired", dst,
                Outcome.EXPIRED, domain=str(d.domain), zone=str(d.zone),
                path=request.path, priority=request.priority,
                deadline=request.deadline,
                overrun=round(self.clock.now() - request.deadline, 6),
                **trace_attrs,
            )
            raise DeadlineExceeded(
                f"{src} -> {dst} {request.path}: deadline "
                f"t={request.deadline:.3f} passed before delivery",
                deadline=request.deadline, priority=request.priority,
            )

        extra_latency = 0.0
        if self.faults is not None:
            try:
                extra_latency = self.faults.perturb(s, d)
            except ServiceUnavailable as exc:
                self.messages_faulted += 1
                # a failed connect still burns the caller's timeout
                self.clock.advance(self.faults.fail_cost)
                self.audit.record(
                    self.clock.now(), "network", src, "fault.injected", dst,
                    Outcome.ERROR, domain=str(d.domain), zone=str(d.zone),
                    reason=str(exc), **trace_attrs,
                )
                raise

        request.source = src
        delivery_cost = self.hop_latency + extra_latency
        att = request.attempt_deadline
        if att is not None and self.clock.now() + delivery_cost > att:
            # the tail-tolerance layer bounded this single attempt: the
            # caller abandons at the deadline instant — it pays exactly
            # the wait it sat through, and the request was never
            # delivered, so a retry or hedge cannot replay side effects
            self.clock.advance(max(0.0, att - self.clock.now()))
            self.messages_attempt_timeouts += 1
            self.audit.record(
                self.clock.now(), "network", src, "attempt.timeout", dst,
                Outcome.ERROR, domain=str(d.domain), zone=str(d.zone),
                path=request.path, would_cost=round(delivery_cost, 6),
                **trace_attrs,
            )
            raise AttemptTimeout(
                f"{src} -> {dst} {request.path}: attempt abandoned at its "
                f"adaptive deadline (delivery would cost "
                f"{delivery_cost:.3f}s)")
        self.clock.advance(delivery_cost)
        if not d.up:
            # a crash fault landed while this request was in flight: the
            # connection drops and the caller sees an unavailable service
            self.messages_faulted += 1
            self.audit.record(
                self.clock.now(), "network", src, "endpoint.crashed_inflight",
                dst, Outcome.ERROR, domain=str(d.domain), zone=str(d.zone),
                path=request.path, **trace_attrs,
            )
            raise ServiceUnavailable(
                f"endpoint {dst} crashed while {request.path} was in flight")
        self.messages_delivered += 1
        self.audit.record(
            self.clock.now(), "network", src, "message.delivered", dst,
            Outcome.SUCCESS, domain=str(d.domain), zone=str(d.zone),
            port=port, path=request.path, encrypted=encrypted,
            rule=decision.rule, **trace_attrs,
        )
        # the attempt bound covered *this* hop's delivery; nested calls
        # the handler makes must not inherit it (their own callers arm
        # their own bounds), so it is parked for the duration of handling
        request.attempt_deadline = None
        try:
            return d.service.handle(request)
        except RateLimited as exc:
            # shed by admission control somewhere downstream of this hop
            # (the destination itself, or a service it fanned out to);
            # audited as SHED — deliberately not DENIED — with the class
            # of traffic that was dropped and the server's retry hint
            self.messages_shed += 1
            self.audit.record(
                self.clock.now(), "network", src, "admission.shed", dst,
                Outcome.SHED, domain=str(d.domain), zone=str(d.zone),
                path=request.path, priority=exc.priority or request.priority,
                service=exc.service or dst, retry_after=exc.retry_after,
                **trace_attrs,
            )
            raise
        except DeadlineExceeded as exc:
            # expired while being served (or at a nested hop): the
            # transport observed it, so the trail records it here too
            self.messages_expired += 1
            self.audit.record(
                self.clock.now(), "network", src, "deadline.expired", dst,
                Outcome.EXPIRED, domain=str(d.domain), zone=str(d.zone),
                path=request.path, priority=exc.priority or request.priority,
                deadline=exc.deadline, **trace_attrs,
            )
            raise
