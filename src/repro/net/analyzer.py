"""Firewall change analyzer: what would a proposed rule expose?

Segmentation erodes through well-meaning rule additions.  Before an
operator lands a new allow rule, the analyzer diffs the reachability
relation (over all attached endpoints and the standard probe ports) with
and without it, and flags any newly reachable flow into a protected zone
— the review artefact a DevSecOps pipeline would attach to the change
request (§IV.B: "we need to grow a DevSecOps culture ... to establish
and harden these practices").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.net.firewall import Firewall, FirewallRule
from repro.net.network import Network
from repro.net.zones import Zone

__all__ = ["FlowDelta", "ChangeReport", "analyze_rule_change"]

PROBE_PORTS = (22, 443)
PROTECTED_ZONES = (Zone.MANAGEMENT, Zone.HPC, Zone.DATA_STORAGE, Zone.SECURITY)


@dataclass(frozen=True)
class FlowDelta:
    src: str
    dst: str
    port: int
    dst_zone: str

    @property
    def into_protected(self) -> bool:
        return self.dst_zone in {z.value for z in PROTECTED_ZONES}


@dataclass(frozen=True)
class ChangeReport:
    rule: FirewallRule
    newly_allowed: Tuple[FlowDelta, ...]
    newly_denied: Tuple[FlowDelta, ...]

    @property
    def exposes_protected(self) -> bool:
        return any(d.into_protected for d in self.newly_allowed)

    def summary(self) -> str:
        lines = [f"proposed rule: {self.rule.name} ({self.rule.action})"]
        if not self.newly_allowed and not self.newly_denied:
            lines.append("  no reachability change")
        for d in self.newly_allowed:
            flag = "  [PROTECTED-ZONE EXPOSURE]" if d.into_protected else ""
            lines.append(f"  + {d.src} -> {d.dst}:{d.port}{flag}")
        for d in self.newly_denied:
            lines.append(f"  - {d.src} -> {d.dst}:{d.port}")
        return "\n".join(lines)


def _reachability(network: Network, firewall: Firewall,
                  ports: Sequence[int]) -> set:
    flows = set()
    endpoints = network.endpoints()
    for src in endpoints:
        for dst in endpoints:
            if src.name == dst.name:
                continue
            for port in ports:
                if firewall.evaluate(src.domain, src.zone,
                                     dst.domain, dst.zone, port):
                    flows.add((src.name, dst.name, port, dst.zone.value))
    return flows


def analyze_rule_change(
    network: Network,
    rule: FirewallRule,
    *,
    position: str = "append",
    ports: Sequence[int] = PROBE_PORTS,
) -> ChangeReport:
    """Diff reachability with ``rule`` added (``append`` or ``prepend``).

    The live firewall is never modified — the analysis runs on copies.
    """
    current = network.firewall

    def clone(with_rule: bool) -> Firewall:
        fw = Firewall(segmented=current.segmented)
        rules = list(current.rules())
        if with_rule:
            rules = ([rule] + rules) if position == "prepend" else (rules + [rule])
        for r in rules:
            fw.add_rule(r)
        return fw

    before = _reachability(network, clone(False), ports)
    after = _reachability(network, clone(True), ports)
    newly_allowed = tuple(
        FlowDelta(src, dst, port, zone)
        for (src, dst, port, zone) in sorted(after - before)
    )
    newly_denied = tuple(
        FlowDelta(src, dst, port, zone)
        for (src, dst, port, zone) in sorted(before - after)
    )
    return ChangeReport(rule=rule, newly_allowed=newly_allowed,
                        newly_denied=newly_denied)
