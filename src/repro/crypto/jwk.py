"""JWK / JWKS (RFC 7517) export and key-set lookup.

The identity broker and the OIDC provider publish their verification keys
as a JWKS document; relying parties (Jupyter authenticator, bastions,
tailnet) fetch it over the simulated network and verify RBAC tokens
locally.  :func:`jwk_thumbprint` implements RFC 7638 so keys have stable,
content-derived identifiers.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional

from cryptography.hazmat.primitives.asymmetric import ec, ed25519, rsa

from repro.crypto.jws import b64url_encode
from repro.crypto.keys import HmacKey, VerifyingKey
from repro.errors import ConfigurationError

__all__ = ["public_jwk", "jwk_thumbprint", "JwkSet"]


def _int_bytes(n: int, size: Optional[int] = None) -> str:
    length = size if size is not None else (n.bit_length() + 7) // 8 or 1
    return b64url_encode(n.to_bytes(length, "big"))


def public_jwk(key: VerifyingKey) -> Dict[str, str]:
    """Render the public key as a JWK dict (no private members, ever)."""
    raw = key.raw_public_key
    if isinstance(raw, ed25519.Ed25519PublicKey):
        from cryptography.hazmat.primitives.serialization import (
            Encoding,
            PublicFormat,
        )

        x = raw.public_bytes(Encoding.Raw, PublicFormat.Raw)
        jwk = {"kty": "OKP", "crv": "Ed25519", "x": b64url_encode(x)}
    elif isinstance(raw, ec.EllipticCurvePublicKey):
        nums = raw.public_numbers()
        jwk = {
            "kty": "EC",
            "crv": "P-256",
            "x": _int_bytes(nums.x, 32),
            "y": _int_bytes(nums.y, 32),
        }
    elif isinstance(raw, rsa.RSAPublicKey):
        nums = raw.public_numbers()
        jwk = {"kty": "RSA", "n": _int_bytes(nums.n), "e": _int_bytes(nums.e)}
    else:
        raise ConfigurationError(f"cannot export {type(raw).__name__} as JWK")
    jwk["kid"] = key.kid
    jwk["alg"] = key.alg
    jwk["use"] = "sig"
    return jwk


_THUMBPRINT_MEMBERS = {
    "OKP": ("crv", "kty", "x"),
    "EC": ("crv", "kty", "x", "y"),
    "RSA": ("e", "kty", "n"),
}


def jwk_thumbprint(jwk: Dict[str, str]) -> str:
    """RFC 7638 SHA-256 thumbprint of a JWK (lexicographic required members)."""
    kty = jwk.get("kty")
    members = _THUMBPRINT_MEMBERS.get(kty or "")
    if members is None:
        raise ConfigurationError(f"cannot thumbprint kty={kty!r}")
    canonical = json.dumps(
        {m: jwk[m] for m in members}, separators=(",", ":"), sort_keys=True
    )
    return b64url_encode(hashlib.sha256(canonical.encode()).digest())


class JwkSet:
    """A keyed collection of verifiers, callable as a ``kid -> key`` lookup.

    Supports rotation: old keys stay resolvable until :meth:`retire` so
    tokens signed just before a rotation still verify within their TTL.
    """

    def __init__(self, keys: Iterable[VerifyingKey | HmacKey] = ()) -> None:
        self._keys: Dict[str, VerifyingKey | HmacKey] = {}
        for key in keys:
            self.add(key)

    def add(self, key: VerifyingKey | HmacKey) -> None:
        if key.kid in self._keys:
            raise ConfigurationError(f"duplicate kid {key.kid!r} in JWKS")
        self._keys[key.kid] = key

    def retire(self, kid: str) -> None:
        self._keys.pop(kid, None)

    def get(self, kid: Optional[str]) -> Optional[VerifyingKey | HmacKey]:
        if kid is None:
            return None
        return self._keys.get(kid)

    def __call__(self, kid: Optional[str]) -> Optional[VerifyingKey | HmacKey]:
        return self.get(kid)

    def __len__(self) -> int:
        return len(self._keys)

    def kids(self) -> List[str]:
        return sorted(self._keys)

    def to_jwks(self) -> Dict[str, List[Dict[str, str]]]:
        """The document served at ``/.well-known/jwks.json``.

        Symmetric keys are never published.
        """
        out = []
        for kid in sorted(self._keys):
            key = self._keys[kid]
            if isinstance(key, HmacKey):
                continue
            out.append(public_jwk(key))
        return {"keys": out}

    @classmethod
    def from_jwks(cls, document: Dict[str, List[Dict[str, str]]]) -> "JwkSet":
        """Parse a published JWKS back into verifier keys."""
        from repro.crypto.jws import b64url_decode

        keys: List[VerifyingKey] = []
        for jwk in document.get("keys", []):
            kty = jwk.get("kty")
            kid = jwk.get("kid", jwk_thumbprint(jwk))
            alg = jwk.get("alg", "")
            if kty == "OKP":
                pub = ed25519.Ed25519PublicKey.from_public_bytes(
                    b64url_decode(jwk["x"])
                )
                keys.append(VerifyingKey("EdDSA", kid, pub))
            elif kty == "EC":
                x = int.from_bytes(b64url_decode(jwk["x"]), "big")
                y = int.from_bytes(b64url_decode(jwk["y"]), "big")
                pub = ec.EllipticCurvePublicNumbers(x, y, ec.SECP256R1()).public_key()
                keys.append(VerifyingKey("ES256", kid, pub))
            elif kty == "RSA":
                n = int.from_bytes(b64url_decode(jwk["n"]), "big")
                e = int.from_bytes(b64url_decode(jwk["e"]), "big")
                pub = rsa.RSAPublicNumbers(e, n).public_key()
                keys.append(VerifyingKey(alg or "RS256", kid, pub))
            else:
                raise ConfigurationError(f"unsupported kty {kty!r} in JWKS")
        return cls(keys)
