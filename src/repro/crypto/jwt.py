"""JWT (RFC 7519) encoding and claim validation on top of compact JWS.

Validation is strict by default — issuer, audience, expiry, not-before and
required claims are all checked against the *simulated* clock, because the
paper's design hinges on tokens being short-lived and per-service
(audience-scoped).  A small leeway absorbs clock skew between simulated
components.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Optional, Sequence, Union

from repro.clock import SimClock
from repro.crypto.jws import sign_compact, verify_compact
from repro.crypto.keys import SUPPORTED_ALGORITHMS
from repro.errors import (
    AudienceMismatch,
    ClaimMissing,
    IssuerMismatch,
    SignatureInvalid,
    TokenExpired,
    TokenNotYetValid,
)

__all__ = ["encode_jwt", "decode_unverified", "JwtValidator"]

Claims = Dict[str, object]


def encode_jwt(claims: Claims, key, extra_header: Optional[Dict[str, object]] = None) -> str:
    """Serialize ``claims`` as a signed JWT.

    The caller is responsible for populating ``iat``/``exp`` from the
    simulated clock; token *minting policy* lives in
    :mod:`repro.broker.tokens`, not here.
    """
    header = {"typ": "JWT"}
    header.update(extra_header or {})
    payload = json.dumps(claims, separators=(",", ":"), sort_keys=True).encode()
    return sign_compact(key, payload, header)


def decode_unverified(token: str) -> Claims:
    """Parse the payload WITHOUT verifying the signature.

    Only for diagnostics/logging (e.g. the SIEM recording the ``jti`` of a
    rejected token).  Never make an access decision from this.
    """
    parts = token.split(".")
    if len(parts) != 3:
        raise SignatureInvalid("not a compact JWT")
    from repro.crypto.jws import b64url_decode

    try:
        claims = json.loads(b64url_decode(parts[1]))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SignatureInvalid("JWT payload is not valid JSON") from exc
    if not isinstance(claims, dict):
        raise SignatureInvalid("JWT payload must be a JSON object")
    return claims


class JwtValidator:
    """Relying-party-side token validation policy.

    Parameters
    ----------
    clock:
        Shared simulated clock.
    issuer:
        Exact ``iss`` this verifier trusts.
    audience:
        The identifier of *this* service; the token's ``aud`` (string or
        list) must contain it.  ``None`` disables the audience check (used
        only by introspection endpoints, never by resources).
    keys:
        A ``kid -> verifier`` lookup (:class:`~repro.crypto.jwk.JwkSet`)
        or a single verifier key.
    leeway:
        Seconds of clock-skew tolerance for ``exp``/``nbf``.
    required_claims:
        Claims that must be present beyond the registered set.
    """

    def __init__(
        self,
        clock: SimClock,
        issuer: str,
        audience: Optional[str],
        keys,
        *,
        leeway: float = 5.0,
        allowed_algs: Iterable[str] = SUPPORTED_ALGORITHMS,
        required_claims: Sequence[str] = (),
    ) -> None:
        self.clock = clock
        self.issuer = issuer
        self.audience = audience
        self.keys = keys
        self.leeway = leeway
        self.allowed_algs = tuple(allowed_algs)
        self.required_claims = tuple(required_claims)

    def validate(self, token: str) -> Claims:
        """Verify signature + claims; return the claims or raise a
        :class:`~repro.errors.TokenError` subclass describing the failure."""
        _header, payload = verify_compact(token, self.keys, self.allowed_algs)
        claims = json.loads(payload)
        if not isinstance(claims, dict):
            raise SignatureInvalid("JWT payload must be a JSON object")

        now = self.clock.now()

        exp = claims.get("exp")
        if exp is None:
            raise ClaimMissing("token has no 'exp'; unbounded tokens are forbidden")
        if not isinstance(exp, (int, float)) or isinstance(exp, bool):
            raise ClaimMissing("'exp' must be numeric")
        if now > float(exp) + self.leeway:
            raise TokenExpired(
                f"token expired at t={exp}, now t={now:.1f} (leeway {self.leeway}s)"
            )

        nbf = claims.get("nbf")
        if nbf is not None:
            if not isinstance(nbf, (int, float)) or isinstance(nbf, bool):
                raise ClaimMissing("'nbf' must be numeric")
            if now + self.leeway < float(nbf):
                raise TokenNotYetValid(
                    f"token not valid before t={nbf}, now t={now:.1f}"
                )

        iss = claims.get("iss")
        if iss != self.issuer:
            raise IssuerMismatch(
                f"token issued by {iss!r}, this service trusts {self.issuer!r}"
            )

        if self.audience is not None:
            aud = claims.get("aud")
            auds: Sequence[object]
            if aud is None:
                auds = ()
            elif isinstance(aud, str):
                auds = (aud,)
            elif isinstance(aud, list):
                auds = aud
            else:
                auds = ()
            if self.audience not in auds:
                raise AudienceMismatch(
                    f"token audience {aud!r} does not include {self.audience!r}"
                )

        for claim in self.required_claims:
            if claim not in claims:
                raise ClaimMissing(f"required claim {claim!r} missing")

        return claims
