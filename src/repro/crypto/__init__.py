"""Cryptographic substrate: keys, JWK, compact JWS and JWT.

The paper's entire design rests on "short-lived role-based access tokens".
This package implements the JOSE stack those tokens need — signing keys,
JWK/JWKS publication, compact JWS serialization and JWT claim validation —
from scratch on top of the ``cryptography`` library's primitives, so that
every relying party in the simulation (Jupyter authenticator, bastion,
tailnet, SSH CA) verifies real signatures, not stand-ins.
"""

from repro.crypto.keys import (
    SUPPORTED_ALGORITHMS,
    HmacKey,
    SigningKey,
    VerifyingKey,
    generate_signing_key,
)
from repro.crypto.jwk import JwkSet, jwk_thumbprint, public_jwk
from repro.crypto.jws import b64url_decode, b64url_encode, sign_compact, verify_compact
from repro.crypto.jwt import JwtValidator, decode_unverified, encode_jwt
from repro.crypto.certs import SignedDocument, sign_document, verify_document

__all__ = [
    "SUPPORTED_ALGORITHMS",
    "SigningKey",
    "VerifyingKey",
    "HmacKey",
    "generate_signing_key",
    "JwkSet",
    "public_jwk",
    "jwk_thumbprint",
    "sign_compact",
    "verify_compact",
    "b64url_encode",
    "b64url_decode",
    "encode_jwt",
    "decode_unverified",
    "JwtValidator",
    "SignedDocument",
    "sign_document",
    "verify_document",
]
