"""Generic signed documents: canonical-JSON payload + detached signature.

The SSH certificate authority (:mod:`repro.sshca`) and the tailnet's node
attestations both need "a structured document signed by an authority key"
that is *not* a JWT (no registered claims, different validity model).
:class:`SignedDocument` provides exactly that with canonical JSON so the
byte stream being signed is unambiguous.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict

from repro.crypto.jws import b64url_decode, b64url_encode
from repro.crypto.keys import HmacKey, SigningKey, VerifyingKey
from repro.errors import SignatureInvalid

__all__ = ["SignedDocument", "sign_document", "verify_document"]


def _canonical(payload: Dict[str, object]) -> bytes:
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()


@dataclass(frozen=True)
class SignedDocument:
    """An immutable payload with the signer's ``kid`` and signature attached."""

    payload: Dict[str, object]
    signer_kid: str
    signature_b64: str

    def to_wire(self) -> str:
        """Single-string wire form (what an SSH client would store on disk)."""
        body = {
            "payload": self.payload,
            "signer_kid": self.signer_kid,
            "signature": self.signature_b64,
        }
        return b64url_encode(_canonical(body))

    @classmethod
    def from_wire(cls, wire: str) -> "SignedDocument":
        try:
            body = json.loads(b64url_decode(wire))
            return cls(
                payload=body["payload"],
                signer_kid=body["signer_kid"],
                signature_b64=body["signature"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SignatureInvalid("malformed signed document") from exc


def sign_document(key: SigningKey | HmacKey, payload: Dict[str, object]) -> SignedDocument:
    """Sign ``payload`` (canonical JSON) with ``key``."""
    signature = key.sign(_canonical(payload))
    return SignedDocument(
        payload=dict(payload),
        signer_kid=key.kid,
        signature_b64=b64url_encode(signature),
    )


def verify_document(key: VerifyingKey | HmacKey, doc: SignedDocument) -> Dict[str, object]:
    """Verify ``doc`` against ``key``; returns the payload on success.

    The caller must have already selected the right key by ``signer_kid``
    (authorities in this reproduction have exactly one active key, so a
    mismatched kid is itself a failure).
    """
    if key.kid != doc.signer_kid:
        raise SignatureInvalid(
            f"document signed by kid={doc.signer_kid!r}, verifier has {key.kid!r}"
        )
    key.verify(_canonical(doc.payload), b64url_decode(doc.signature_b64))
    return dict(doc.payload)
