"""Compact JWS (RFC 7515) serialization: ``b64(header).b64(payload).b64(sig)``.

Hardened the way a production verifier must be:

* ``alg: none`` and unknown algorithms are rejected outright.
* The verifier pins the expected algorithm to the key that ``kid`` selects
  — a token claiming ``HS256`` can never be verified against an RSA/EdDSA
  public key (the classic key-confusion attack).
* Any malformed segment raises :class:`SignatureInvalid` rather than a
  bare parsing error, so callers treat malformed and forged identically.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.crypto.keys import SUPPORTED_ALGORITHMS, HmacKey, SigningKey, VerifyingKey
from repro.errors import SignatureInvalid

__all__ = ["b64url_encode", "b64url_decode", "sign_compact", "verify_compact"]

Signer = Union[SigningKey, HmacKey]
Verifier = Union[VerifyingKey, HmacKey]


def b64url_encode(data: bytes) -> str:
    """Base64url without padding, as JOSE requires."""
    return base64.urlsafe_b64encode(data).rstrip(b"=").decode("ascii")


def b64url_decode(text: str) -> bytes:
    """Inverse of :func:`b64url_encode`; raises ``SignatureInvalid`` on junk."""
    pad = -len(text) % 4
    try:
        return base64.urlsafe_b64decode(text + "=" * pad)
    except (binascii.Error, ValueError) as exc:
        raise SignatureInvalid("malformed base64url segment") from exc


def sign_compact(
    key: Signer, payload: bytes, extra_header: Optional[Dict[str, object]] = None
) -> str:
    """Produce a compact JWS of ``payload`` signed by ``key``.

    The protected header always carries ``alg`` and ``kid`` from the key;
    ``extra_header`` may add fields (e.g. ``typ``) but cannot override them.
    """
    header: Dict[str, object] = dict(extra_header or {})
    header["alg"] = key.alg
    header["kid"] = key.kid
    signing_input = (
        b64url_encode(json.dumps(header, separators=(",", ":"), sort_keys=True).encode())
        + "."
        + b64url_encode(payload)
    ).encode("ascii")
    signature = key.sign(signing_input)
    return signing_input.decode("ascii") + "." + b64url_encode(signature)


def _parse(token: str) -> Tuple[Dict[str, object], bytes, bytes, bytes]:
    parts = token.split(".")
    if len(parts) != 3:
        raise SignatureInvalid(f"compact JWS must have 3 segments, got {len(parts)}")
    header_b, payload_b, sig_b = parts
    header_raw = b64url_decode(header_b)
    try:
        header = json.loads(header_raw)
    except (ValueError, UnicodeDecodeError) as exc:
        raise SignatureInvalid("protected header is not valid JSON") from exc
    if not isinstance(header, dict):
        raise SignatureInvalid("protected header must be a JSON object")
    payload = b64url_decode(payload_b)
    signature = b64url_decode(sig_b)
    signing_input = (header_b + "." + payload_b).encode("ascii")
    return header, payload, signature, signing_input


def verify_compact(
    token: str,
    key_lookup,
    allowed_algs: Iterable[str] = SUPPORTED_ALGORITHMS,
) -> Tuple[Dict[str, object], bytes]:
    """Verify a compact JWS and return ``(header, payload)``.

    Parameters
    ----------
    token:
        The compact serialization.
    key_lookup:
        Either a verifier key object, or a callable ``kid -> verifier``
        (a :class:`~repro.crypto.jwk.JwkSet` works).  Returning ``None``
        means "unknown kid" and fails verification.
    allowed_algs:
        Algorithms this verifier accepts.  ``none`` is never acceptable.
    """
    header, payload, signature, signing_input = _parse(token)
    alg = header.get("alg")
    allowed = set(allowed_algs)
    if "none" in {a.lower() for a in allowed}:
        raise SignatureInvalid("'none' cannot be an allowed algorithm")
    if not isinstance(alg, str) or alg.lower() == "none" or alg not in allowed:
        raise SignatureInvalid(f"algorithm {alg!r} not acceptable")

    kid = header.get("kid")
    if callable(key_lookup) and not hasattr(key_lookup, "verify"):
        verifier = key_lookup(kid)
    else:
        verifier = key_lookup
    if verifier is None:
        raise SignatureInvalid(f"no key for kid={kid!r}")
    if verifier.alg != alg:
        raise SignatureInvalid(
            f"token alg {alg!r} does not match key alg {verifier.alg!r} (kid={kid!r})"
        )
    verifier.verify(signing_input, signature)
    return header, payload
