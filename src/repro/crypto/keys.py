"""Signing/verifying key wrappers over ``cryptography`` primitives.

Four JOSE algorithms are supported, matching what real identity brokers
(Keycloak et al.) deploy:

* ``EdDSA``  — Ed25519 (the default everywhere in this reproduction)
* ``ES256``  — ECDSA over P-256 with the JOSE raw ``r||s`` signature form
* ``RS256``  — RSASSA-PKCS1-v1_5 with SHA-256
* ``HS256``  — HMAC-SHA-256 (symmetric; used only for co-located services)

Keys carry a ``kid`` so JWKS lookup works the way OIDC relying parties
expect: the broker rotates keys and verifiers pick by ``kid``.
"""

from __future__ import annotations

import hmac as _hmac
from dataclasses import dataclass
from typing import Optional

from cryptography.exceptions import InvalidSignature
from cryptography.hazmat.primitives import hashes, hmac
from cryptography.hazmat.primitives.asymmetric import ec, ed25519, padding, rsa
from cryptography.hazmat.primitives.asymmetric.utils import (
    decode_dss_signature,
    encode_dss_signature,
)

from repro.errors import ConfigurationError, SignatureInvalid

__all__ = [
    "SUPPORTED_ALGORITHMS",
    "VerifyingKey",
    "SigningKey",
    "HmacKey",
    "generate_signing_key",
]

SUPPORTED_ALGORITHMS = ("EdDSA", "ES256", "RS256", "HS256")

_P256_COORD_BYTES = 32


def _int_to_fixed(n: int, size: int) -> bytes:
    return n.to_bytes(size, "big")


class VerifyingKey:
    """Public half of an asymmetric key (or the shared HMAC secret).

    Subclass-free by design: the constructor dispatches on ``alg``.
    """

    def __init__(self, alg: str, kid: str, public_key: object) -> None:
        if alg not in SUPPORTED_ALGORITHMS:
            raise ConfigurationError(f"unsupported algorithm {alg!r}")
        self.alg = alg
        self.kid = kid
        self._public = public_key

    # ------------------------------------------------------------------
    def verify(self, data: bytes, signature: bytes) -> None:
        """Raise :class:`SignatureInvalid` unless ``signature`` is valid."""
        try:
            if self.alg == "EdDSA":
                self._public.verify(signature, data)  # type: ignore[attr-defined]
            elif self.alg == "ES256":
                if len(signature) != 2 * _P256_COORD_BYTES:
                    raise InvalidSignature()
                r = int.from_bytes(signature[:_P256_COORD_BYTES], "big")
                s = int.from_bytes(signature[_P256_COORD_BYTES:], "big")
                der = encode_dss_signature(r, s)
                self._public.verify(  # type: ignore[attr-defined]
                    der, data, ec.ECDSA(hashes.SHA256())
                )
            elif self.alg == "RS256":
                self._public.verify(  # type: ignore[attr-defined]
                    signature, data, padding.PKCS1v15(), hashes.SHA256()
                )
            else:  # pragma: no cover - HS256 handled by HmacKey
                raise ConfigurationError("HS256 verification requires HmacKey")
        except InvalidSignature as exc:
            raise SignatureInvalid(f"signature invalid for kid={self.kid}") from exc

    @property
    def raw_public_key(self) -> object:
        """The underlying ``cryptography`` public-key object (for JWK export)."""
        return self._public


class SigningKey:
    """Private key capable of producing JOSE signatures.

    Use :func:`generate_signing_key` rather than constructing directly.
    """

    def __init__(self, alg: str, kid: str, private_key: object) -> None:
        if alg not in SUPPORTED_ALGORITHMS:
            raise ConfigurationError(f"unsupported algorithm {alg!r}")
        if alg == "HS256":
            raise ConfigurationError("use HmacKey for HS256")
        self.alg = alg
        self.kid = kid
        self._private = private_key

    def sign(self, data: bytes) -> bytes:
        if self.alg == "EdDSA":
            return self._private.sign(data)  # type: ignore[attr-defined]
        if self.alg == "ES256":
            der = self._private.sign(  # type: ignore[attr-defined]
                data, ec.ECDSA(hashes.SHA256())
            )
            r, s = decode_dss_signature(der)
            return _int_to_fixed(r, _P256_COORD_BYTES) + _int_to_fixed(
                s, _P256_COORD_BYTES
            )
        if self.alg == "RS256":
            return self._private.sign(  # type: ignore[attr-defined]
                data, padding.PKCS1v15(), hashes.SHA256()
            )
        raise ConfigurationError(f"cannot sign with {self.alg}")  # pragma: no cover

    def public(self) -> VerifyingKey:
        return VerifyingKey(self.alg, self.kid, self._private.public_key())  # type: ignore[attr-defined]


@dataclass
class HmacKey:
    """Symmetric HS256 key — acts as both signer and verifier.

    Only appropriate where signer and verifier are the same trust domain
    (the paper's design keeps asymmetric keys for anything crossing zones).
    """

    kid: str
    secret: bytes
    alg: str = "HS256"

    def sign(self, data: bytes) -> bytes:
        h = hmac.HMAC(self.secret, hashes.SHA256())
        h.update(data)
        return h.finalize()

    def verify(self, data: bytes, signature: bytes) -> None:
        expected = self.sign(data)
        if not _hmac.compare_digest(expected, signature):
            raise SignatureInvalid(f"HMAC mismatch for kid={self.kid}")

    def public(self) -> "HmacKey":
        """Symmetric keys have no public half; verification uses the secret."""
        return self


def generate_signing_key(
    alg: str = "EdDSA", kid: str = "key-1", *, rsa_bits: int = 2048
) -> SigningKey | HmacKey:
    """Create a fresh key for ``alg``.

    HS256 secrets are generated from OS entropy via the ``cryptography``
    backend; determinism of the *simulation* never depends on key material,
    only on ids and the clock.
    """
    if alg == "EdDSA":
        return SigningKey(alg, kid, ed25519.Ed25519PrivateKey.generate())
    if alg == "ES256":
        return SigningKey(alg, kid, ec.generate_private_key(ec.SECP256R1()))
    if alg == "RS256":
        return SigningKey(
            alg, kid, rsa.generate_private_key(public_exponent=65537, key_size=rsa_bits)
        )
    if alg == "HS256":
        import os

        return HmacKey(kid=kid, secret=os.urandom(32))
    raise ConfigurationError(f"unsupported algorithm {alg!r}")
