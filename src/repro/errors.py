"""Exception taxonomy for the reproduction.

The hierarchy mirrors the layers of the architecture: token/crypto errors,
federation errors, network/segmentation errors, policy errors and resource
errors.  Services convert these into denial responses; the audit log and
the SIEM observe them.  Catch :class:`ReproError` to handle anything the
library can raise deliberately.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "AuthenticationError",
    "AuthorizationError",
    "MFARequired",
    "MFAFailed",
    "TokenError",
    "SignatureInvalid",
    "TokenExpired",
    "TokenNotYetValid",
    "TokenRevoked",
    "AudienceMismatch",
    "IssuerMismatch",
    "ClaimMissing",
    "FederationError",
    "AssuranceTooLow",
    "IdentityNotRegistered",
    "RegistrationError",
    "MetadataStale",
    "NetworkError",
    "ConnectionBlocked",
    "EncryptionRequired",
    "ServiceUnavailable",
    "FaultInjected",
    "ShardUnavailable",
    "CircuitOpen",
    "AttemptTimeout",
    "RateLimited",
    "DeadlineExceeded",
    "CertificateError",
    "PolicyViolation",
    "KillSwitchActive",
    "EpochFenced",
    "RecoveryError",
    "SchedulerError",
    "QuotaExceeded",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for all deliberate errors raised by this library."""


# ---------------------------------------------------------------------------
# authentication / authorisation
# ---------------------------------------------------------------------------
class AuthenticationError(ReproError):
    """The caller's identity could not be established."""


class AuthorizationError(ReproError):
    """The caller is authenticated but not permitted to do this."""


class MFARequired(AuthenticationError):
    """The flow requires a second factor that was not presented."""


class MFAFailed(AuthenticationError):
    """A second factor was presented but did not verify."""


# ---------------------------------------------------------------------------
# tokens and signatures
# ---------------------------------------------------------------------------
class TokenError(ReproError):
    """Base class for problems with signed tokens."""


class SignatureInvalid(TokenError):
    """The cryptographic signature failed verification."""


class TokenExpired(TokenError):
    """The token's ``exp`` is in the past (beyond leeway)."""


class TokenNotYetValid(TokenError):
    """The token's ``nbf`` is in the future (beyond leeway)."""


class TokenRevoked(TokenError):
    """The token was explicitly revoked (kill switch, user removal...)."""


class AudienceMismatch(TokenError):
    """The token was minted for a different service."""


class IssuerMismatch(TokenError):
    """The token was minted by an issuer this service does not trust."""


class ClaimMissing(TokenError):
    """A claim the validator requires is absent."""


# ---------------------------------------------------------------------------
# federation
# ---------------------------------------------------------------------------
class FederationError(ReproError):
    """Base class for identity-federation problems."""


class AssuranceTooLow(FederationError):
    """The authenticating IdP does not meet the required level of assurance."""


class IdentityNotRegistered(FederationError):
    """No account-registry entry exists for this identity."""


class RegistrationError(FederationError):
    """Account registration failed (e.g. authorisation-led registration
    rejected an identity with no granted role)."""


class MetadataStale(FederationError):
    """The IdP's federation metadata is past its validity window.

    Signed metadata documents carry an expiry precisely so a consumer
    that has lost contact with its feed cannot keep trusting old keys
    forever; the login path fails *closed* on an expired entry rather
    than validating an assertion against a verifier that may have been
    rotated or revoked since."""


# ---------------------------------------------------------------------------
# network / segmentation
# ---------------------------------------------------------------------------
class NetworkError(ReproError):
    """Base class for simulated-network failures."""


class ConnectionBlocked(NetworkError):
    """The firewall/segmentation policy denies this flow."""


class EncryptionRequired(NetworkError):
    """A plaintext message attempted to cross a boundary that mandates TLS."""


class ServiceUnavailable(NetworkError):
    """The destination endpoint exists but is not serving (down/patching)."""


class FaultInjected(ServiceUnavailable):
    """The chaos harness failed this message (outage, brownout, flap or
    partition).  Subclasses :class:`ServiceUnavailable` so clients handle
    injected faults exactly as they would a real dependency outage."""


class ShardUnavailable(ServiceUnavailable):
    """The directory shard owning this key is down.

    Sharded tiers fail *closed*: a lookup whose owning shard is
    unreachable is refused rather than answered from a possibly stale
    or partial view — the other shards keep serving their own key
    ranges, so the blast radius stays one shard wide."""


class CircuitOpen(ServiceUnavailable):
    """A client-side circuit breaker is shedding load to this destination.
    The request was never sent; retrying immediately is pointless."""


class AttemptTimeout(ServiceUnavailable):
    """One attempt exceeded its adaptive per-attempt deadline and the
    caller abandoned it.  The transport raises this *before delivery*
    (the slow hop never reached the destination), so a retry or a hedge
    to another replica can never replay a partially applied request.
    Subclasses :class:`ServiceUnavailable`: the attempt failed, the
    *request* may still succeed elsewhere — unlike
    :class:`DeadlineExceeded`, which ends the request everywhere."""


class RateLimited(NetworkError):
    """An admission controller or the edge throttled this request.

    ``retry_after`` is the server-supplied hint, in seconds, after which
    a retry has a chance of being admitted; retry machinery honours it
    instead of its own exponential backoff.  ``service`` names the
    component that shed the request and ``priority`` its traffic class,
    so the network audit trail can record *what* was shed where.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: "float | None" = None,
        service: str = "",
        priority: str = "",
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.service = service
        self.priority = priority


class DeadlineExceeded(NetworkError):
    """The request's deadline passed before (or while) it could be served.

    Raised by the transport for already-expired queued work so the
    destination never burns capacity on a request whose caller has given
    up.  Deliberately *not* a :class:`ServiceUnavailable`: retrying an
    expired request is pointless, so the retry layer must let it
    propagate immediately.
    """

    def __init__(self, message: str, *, deadline: "float | None" = None,
                 priority: str = "") -> None:
        super().__init__(message)
        self.deadline = deadline
        self.priority = priority


# ---------------------------------------------------------------------------
# certificates / policy / resources
# ---------------------------------------------------------------------------
class CertificateError(ReproError):
    """An SSH-style certificate failed validation."""


class PolicyViolation(ReproError):
    """A dynamic-policy evaluation denied the request."""


class KillSwitchActive(ReproError):
    """The kill switch for this service or principal is engaged."""


class EpochFenced(AuthorizationError):
    """A deposed writer tried to commit to a journal it no longer owns.

    Raised by the durable store when an append presents a stale fencing
    epoch — the split-brain guard: after a failover promotes the standby,
    the old primary can keep running but can no longer mint anything,
    because every mutation must clear the journal first.
    """


class RecoveryError(ReproError):
    """Post-recovery invariant verification failed (broken audit chain,
    non-monotonic CA serial, revoked credential resurrected...)."""


class SchedulerError(ReproError):
    """Job scheduler rejected the request (bad partition, account...)."""


class QuotaExceeded(ReproError):
    """Project resource/time allocation exhausted."""


class ConfigurationError(ReproError):
    """The deployment was wired in an unsupported way."""
