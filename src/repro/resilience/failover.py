"""Active-standby failover for the stateful control plane.

Isambard-AI's IAM services run as replicated managed services; the paper
assumes the broker and CA stay available through node loss.  This module
supplies the simulated equivalent: a :class:`FailoverController` that
health-checks each registered primary on the simulated clock and, after
``failure_threshold`` consecutive failed probes, promotes the standby:

1. the standby replays the primary's journal (``recover()``), which also
   **acquires a fresh fencing epoch** — from that instant the deposed
   primary's journal appends raise :class:`~repro.errors.EpochFenced`,
   so a zombie primary cannot mint tokens or sign certificates;
2. the standby takes over the primary's *network endpoint name*, so every
   client, pinned URL and firewall rule keeps working unchanged;
3. the deployment's ``on_promote`` hook re-points the remaining direct
   references (edge origins, revocation fan-outs, ``dri.broker``).

The promotion budget is ``check_interval * failure_threshold`` plus the
deterministic replay cost — the ABL8 bench asserts promotions land inside
it.  A recovered ex-primary can :meth:`rejoin` as the new standby; it
replays the journal *without* acquiring an epoch, so it stays fenced
until a future promotion makes it legitimate again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.clock import SimClock
from repro.errors import ConfigurationError
from repro.resilience.durability import RecoveryReport

__all__ = ["FailoverController", "FailoverPair"]


@dataclass
class FailoverPair:
    """One primary/standby pairing under health supervision."""

    name: str                 # the primary's network endpoint name
    primary: object
    standby: object
    standby_name: str         # the standby's (parked) endpoint name
    domain: object
    zone: object
    on_promote: Callable[[object], None]
    failures: int = 0         # consecutive failed probes
    down_since: Optional[float] = None
    promoted: bool = False
    promoted_at: Optional[float] = None
    report: Optional[RecoveryReport] = None

    @property
    def active(self) -> object:
        return self.standby if self.promoted else self.primary


class FailoverController:
    """Clock-driven health checker + promoter for registered pairs."""

    def __init__(
        self,
        clock: SimClock,
        network,
        *,
        check_interval: float = 2.0,
        failure_threshold: int = 2,
        audit=None,
    ) -> None:
        if check_interval <= 0 or failure_threshold < 1:
            raise ConfigurationError(
                "failover needs check_interval > 0 and failure_threshold >= 1")
        self.clock = clock
        self.network = network
        self.check_interval = check_interval
        self.failure_threshold = failure_threshold
        self.audit = audit
        # optional repro.telemetry.Telemetry (duck-typed): promotions are
        # counted and back-filled as spans covering the outage window
        self.telemetry = None
        self.pairs: Dict[str, FailoverPair] = {}
        self.promotions = 0
        self.probes = 0
        self._running = False

    @property
    def budget(self) -> float:
        """Worst-case crash-to-promotion window the bench holds us to
        (detection probes plus a margin for the journal replay cost)."""
        return self.check_interval * (self.failure_threshold + 1)

    # ------------------------------------------------------------------
    def register(self, name: str, primary, standby, *, standby_name: str,
                 domain, zone, on_promote: Callable[[object], None]) -> FailoverPair:
        if name in self.pairs:
            raise ConfigurationError(f"failover pair {name!r} already registered")
        pair = FailoverPair(
            name=name, primary=primary, standby=standby,
            standby_name=standby_name, domain=domain, zone=zone,
            on_promote=on_promote,
        )
        self.pairs[name] = pair
        return pair

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.clock.call_later(self.check_interval, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        for pair in list(self.pairs.values()):
            if pair.promoted:
                continue
            self.probes += 1
            healthy = (self.network.has_endpoint(pair.name)
                       and self.network.endpoint(pair.name).up)
            if healthy:
                pair.failures = 0
                pair.down_since = None
                continue
            pair.failures += 1
            if pair.down_since is None:
                pair.down_since = self.clock.now()
            if pair.failures >= self.failure_threshold:
                self.promote(pair.name)
        if self._running:
            self.clock.call_later(self.check_interval, self._tick)

    # ------------------------------------------------------------------
    def promote(self, name: str) -> RecoveryReport:
        """Promote ``name``'s standby: replay journal, fence the deposed
        primary, take over its endpoint, re-point direct references."""
        pair = self.pairs.get(name)
        if pair is None:
            raise ConfigurationError(f"no failover pair registered for {name!r}")
        if pair.promoted:
            raise ConfigurationError(f"{name!r} standby was already promoted")
        # journal replay + epoch acquisition: the split-brain fence drops
        # the moment this returns — the old primary can no longer commit
        report = pair.standby.recover()
        if self.network.has_endpoint(pair.name):
            self.network.detach(pair.name)
        if self.network.has_endpoint(pair.standby_name):
            self.network.detach(pair.standby_name)
        self.network.attach(pair.standby, pair.domain, pair.zone, name=pair.name)
        pair.promoted = True
        pair.promoted_at = self.clock.now()
        pair.report = report
        self.promotions += 1
        pair.on_promote(pair.standby)
        if self.telemetry is not None:
            self.telemetry.record_failover(
                pair.name, report, down_since=pair.down_since)
        if self.audit is not None:
            from repro.audit import Outcome  # lazy: avoids an import cycle

            self.audit.record(
                self.clock.now(), "failover", "failover-controller",
                "failover.promote", pair.name, Outcome.INFO,
                standby=pair.standby_name, epoch=report.epoch,
                entries_replayed=report.entries_replayed,
                down_since=pair.down_since,
            )
        return report

    def rejoin(self, name: str, instance) -> RecoveryReport:
        """Bring a recovered ex-primary back as the new standby.

        It replays the journal *without* acquiring an epoch — it serves
        no traffic and stays fenced until a future promotion."""
        pair = self.pairs.get(name)
        if pair is None:
            raise ConfigurationError(f"no failover pair registered for {name!r}")
        report = instance.recover(acquire_epoch=False)
        if not self.network.has_endpoint(pair.standby_name):
            self.network.attach(instance, pair.domain, pair.zone,
                                name=pair.standby_name)
        # the promoted instance becomes the supervised primary; the
        # rejoining ex-primary parks as the new standby, so supervision
        # (and a future promotion) resumes normally
        pair.primary = pair.active
        pair.standby = instance
        pair.promoted = False
        pair.failures = 0
        pair.down_since = None
        if self.audit is not None:
            from repro.audit import Outcome  # lazy: avoids an import cycle

            self.audit.record(
                self.clock.now(), "failover", "failover-controller",
                "failover.rejoin", pair.name, Outcome.INFO,
                standby=pair.standby_name,
            )
        return report
