"""Retry with exponential backoff, and the per-client resilience wrapper.

``RetryPolicy`` describes *how* to retry: attempt budget, exponential
backoff with deterministic jitter (an injected ``random.Random``), an
optional total-time deadline, and which exception classes are considered
transient.  Backoff advances the shared :class:`~repro.clock.SimClock`
instead of sleeping, so retries cost measurable simulated time and fire
any scheduled events (forwarder flushes, detection timers) that fall
inside the wait — exactly as a real wait would.

``Resilience`` bundles a policy with per-destination circuit breakers
and shared metrics; :class:`~repro.net.http.Service` consults it on
every outbound call when the deployment enables resilience.  Retrying a
transport-level failure is always safe here: the network fails faulted
messages *before* delivery, so a retried request was never partially
applied (see :mod:`repro.resilience.faults`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Type

from repro.clock import SimClock
from repro.errors import (
    AttemptTimeout,
    CircuitOpen,
    DeadlineExceeded,
    RateLimited,
    ServiceUnavailable,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.overload import AimdLimiter, OverloadConfig
from repro.resilience.tail import TailConfig, TailController, hedgeable_request

__all__ = [
    "RetryPolicy",
    "ResilienceMetrics",
    "call_with_resilience",
    "Resilience",
    "ResilienceRuntime",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries transient failures.

    Attributes
    ----------
    max_attempts:
        Total tries (first call included).  1 disables retrying.
    base_delay, multiplier, max_delay:
        Exponential backoff: attempt *n* waits
        ``min(base_delay * multiplier**(n-1), max_delay)`` seconds.
    jitter:
        Fraction of each backoff randomised away (0 = none, 0.5 = the
        wait is 50-100% of the computed backoff).  Drawn from the
        injected rng, so jitter is deterministic per seed.
    deadline:
        Optional cap on *total* simulated time spent (including waits);
        a retry that would overrun it is abandoned and the last error
        re-raised.
    retry_on:
        Exception classes treated as transient.  :class:`RateLimited`
        is retryable by default but handled specially: when the server
        supplied a ``retry_after`` hint, the client waits exactly that
        long — no jitter, and the wait does not advance the exponential
        backoff schedule (being shed is not evidence the next backoff
        step should double).  :class:`DeadlineExceeded` is never
        retried even if listed here — expired work cannot succeed.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: Optional[float] = None
    retry_on: Tuple[Type[BaseException], ...] = (ServiceUnavailable, RateLimited)

    def backoff(self, attempt: int, rng) -> float:
        """Wait before attempt ``attempt + 1`` (``attempt`` is 1-based)."""
        raw = min(self.base_delay * self.multiplier ** (attempt - 1),
                  self.max_delay)
        if self.jitter > 0:
            raw *= 1.0 - self.jitter * rng.random()
        return raw


@dataclass
class ResilienceMetrics:
    """Per-client counters the chaos ablation reads out."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    successes: int = 0
    failures: int = 0              # calls that exhausted their budget
    short_circuits: int = 0        # calls refused by an open breaker
    rate_limited: int = 0          # attempts shed by admission control
    honoured_retry_afters: int = 0  # waits taken from a server hint
    expired: int = 0               # calls abandoned on DeadlineExceeded
    deadline_abandons: int = 0     # retries skipped: wait would overrun
                                   # the request's remaining deadline
    hedges: int = 0                # speculative attempts issued after the
                                   # quantile-derived hedge delay
    attempt_timeouts: int = 0      # attempts abandoned at their adaptive
                                   # per-attempt deadline
    budget_exhausted: int = 0      # retries refused by the retry budget
                                   # (storm guard: failed fast instead)
    by_destination: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, object]:
        return {
            "calls": self.calls, "attempts": self.attempts,
            "retries": self.retries, "successes": self.successes,
            "failures": self.failures, "short_circuits": self.short_circuits,
            "rate_limited": self.rate_limited,
            "honoured_retry_afters": self.honoured_retry_afters,
            "expired": self.expired,
            "deadline_abandons": self.deadline_abandons,
            "hedges": self.hedges,
            "attempt_timeouts": self.attempt_timeouts,
            "budget_exhausted": self.budget_exhausted,
            # satellite fix: the per-endpoint attribution used to be
            # dropped here, blinding the chaos/bench readouts
            "by_destination": dict(sorted(self.by_destination.items())),
        }


def call_with_resilience(
    fn: Callable[[], object],
    *,
    clock: SimClock,
    policy: RetryPolicy,
    rng,
    breaker: Optional[CircuitBreaker] = None,
    metrics: Optional[ResilienceMetrics] = None,
    limiter: Optional[AimdLimiter] = None,
    label: str = "",
    deadline: Optional[float] = None,
    tail: Optional[TailController] = None,
    tail_key: str = "",
    request=None,
):
    """Run ``fn`` under ``policy``, consulting ``breaker`` before each try.

    Raises :class:`CircuitOpen` without calling ``fn`` when the breaker is
    shedding; otherwise re-raises the last transient error once the
    attempt/deadline budget is spent.  Non-transient exceptions propagate
    immediately.

    Overload signals get distinct treatment:

    * being shed (:class:`RateLimited`) is the *server protecting
      itself*, not a server fault — it never counts against the circuit
      breaker, and a supplied ``retry_after`` is honoured verbatim in
      place of the exponential backoff (which does not advance);
    * :class:`DeadlineExceeded` is terminal — the answer is already
      worthless, so no retry regardless of budget;
    * an attached :class:`AimdLimiter` paces each attempt (its wait
      advances the clock like any backoff) and is fed every outcome so
      the client's send rate converges on what the server admits.

    ``deadline`` is the *request's* absolute deadline (simulated time),
    distinct from ``policy.deadline`` (a per-call elapsed-time budget).
    A backoff or ``retry_after`` wait that would run at or past it is
    never taken: the last transient error re-raises immediately instead
    of the client sleeping through the deadline only to fail with
    :class:`DeadlineExceeded` after a pointless wait.

    With a :class:`~repro.resilience.tail.TailController` attached (and
    ``request`` supplied so the attempt bound can ride it), three tail
    defences activate:

    * *adaptive deadlines* — each attempt carries an absolute
      ``attempt_deadline`` sized ``clamp(k × p99)`` of the destination's
      observed latency; the transport abandons the attempt pre-delivery
      (:class:`AttemptTimeout`) instead of riding a gray hop's tail;
    * *hedging* — for read-shaped requests the *first* attempt is
      bounded at the much tighter hedge delay; tripping that bound is
      not treated as a failure (no breaker penalty, no backoff): the
      immediate re-issue *is* the hedge, landing on another replica
      when the destination is balanced.  Hedges are capped by the
      controller's :class:`~repro.resilience.tail.HedgeBudget`;
    * *retry budget* — every retry not invited by a server
      ``retry_after`` hint charges a per-``tail_key`` token bucket;
      an empty bucket means this client is already amplifying the
      outage, so the retry is refused and the call fails fast.
    """
    if metrics is not None:
        metrics.calls += 1
    if tail is not None:
        tail.on_call(tail_key or label)
    start = clock.now()
    attempt = 0
    backoff_step = 0  # position in the exponential schedule
    hedge_armed = False
    tkey = tail_key or label
    try:
        while True:
            if breaker is not None and not breaker.allow():
                if metrics is not None:
                    metrics.short_circuits += 1
                raise CircuitOpen(
                    f"circuit open for {label or 'destination'}; shedding load")
            if limiter is not None:
                pace = limiter.reserve(clock.now())
                if pace > 0:
                    clock.advance(pace)
            attempt += 1
            if metrics is not None:
                metrics.attempts += 1
            hedge_armed = False
            if tail is not None and request is not None:
                bound = None
                if (attempt == 1 and tail.cfg.hedging
                        and hedgeable_request(request)
                        and tail.hedge_budget.allowed()):
                    bound = tail.hedge_delay(tkey)
                    hedge_armed = bound is not None
                if bound is None:
                    bound = tail.attempt_timeout(tkey)
                request.attempt_deadline = \
                    (clock.now() + bound) if bound is not None else None
            attempt_started = clock.now()
            try:
                result = fn()
            except DeadlineExceeded:
                if limiter is not None:
                    limiter.on_overload()
                if metrics is not None:
                    metrics.expired += 1
                    metrics.failures += 1
                raise
            except policy.retry_on as exc:
                if isinstance(exc, AttemptTimeout) and hedge_armed:
                    # the tightly bounded first attempt tripped its hedge
                    # delay: abandon the straggler and immediately issue
                    # the speculative duplicate.  Deliberately NO breaker
                    # penalty and NO backoff — a natural p95 tail is not
                    # a fault, and the hedge must fire *now* to win
                    tail.hedge_budget.consume()
                    if metrics is not None:
                        metrics.hedges += 1
                    loser = getattr(exc, "span", None)
                    if loser is not None:
                        loser.attrs["cancelled"] = True
                        loser.attrs["hedge"] = "loser"
                    continue
                shed = isinstance(exc, RateLimited)
                retry_after = exc.retry_after if shed else None
                if shed:
                    if metrics is not None:
                        metrics.rate_limited += 1
                    if limiter is not None:
                        limiter.on_overload(retry_after)
                else:
                    if isinstance(exc, AttemptTimeout) and metrics is not None:
                        metrics.attempt_timeouts += 1
                    if breaker is not None:
                        breaker.record_failure()
                if attempt >= policy.max_attempts:
                    if metrics is not None:
                        metrics.failures += 1
                    raise
                if retry_after is None and tail is not None \
                        and not tail.allow_retry(tkey):
                    # retry-storm guard: the budget is spent, so another
                    # retry would only amplify the outage — fail fast
                    # with the real error (a server-invited retry_after
                    # wait is never charged: the server asked for it)
                    if metrics is not None:
                        metrics.failures += 1
                        metrics.budget_exhausted += 1
                    raise
                if retry_after is not None:
                    # honoured server hint: exact wait, no jitter, and the
                    # exponential schedule stays where it was
                    delay = retry_after
                else:
                    backoff_step += 1
                    delay = policy.backoff(backoff_step, rng)
                if deadline is not None and \
                        clock.now() + delay >= deadline:
                    # the wait itself would consume the request's remaining
                    # deadline; abandon now with the real error instead of
                    # sleeping into a guaranteed DeadlineExceeded
                    if metrics is not None:
                        metrics.failures += 1
                        metrics.deadline_abandons += 1
                    raise
                if policy.deadline is not None and \
                        clock.now() - start + delay > policy.deadline:
                    if metrics is not None:
                        metrics.failures += 1
                    raise
                if metrics is not None:
                    metrics.retries += 1
                    if retry_after is not None:
                        metrics.honoured_retry_afters += 1
                clock.advance(delay)
            except RateLimited as exc:
                # shed, but this policy does not retry shedding: still tell
                # the pacer before propagating
                if limiter is not None:
                    limiter.on_overload(exc.retry_after)
                if metrics is not None:
                    metrics.rate_limited += 1
                    metrics.failures += 1
                raise
            else:
                if breaker is not None:
                    breaker.record_success()
                if limiter is not None:
                    limiter.on_success()
                if metrics is not None:
                    metrics.successes += 1
                if tail is not None:
                    # only successful attempts feed the tracker: a sick
                    # destination must not drag its own timeout upward
                    tail.observe(tkey, clock.now() - attempt_started)
                return result
    finally:
        if request is not None:
            # the bound is strictly per-attempt; never let a stale one
            # leak into whatever this request object does next
            request.attempt_deadline = None


class Resilience:
    """One client's resilience kit: policy + per-destination breakers.

    Attach an instance to a :class:`~repro.net.http.Service` (its
    ``resilience`` attribute) and every outbound ``call`` is wrapped.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        rng,
        *,
        policy: Optional[RetryPolicy] = None,
        breaker_factory: Optional[Callable[[str], CircuitBreaker]] = None,
        limiter_factory: Optional[Callable[[str], AimdLimiter]] = None,
        metrics: Optional[ResilienceMetrics] = None,
    ) -> None:
        self.name = name
        self.clock = clock
        self.rng = rng
        self.policy = policy if policy is not None else RetryPolicy()
        self.metrics = metrics if metrics is not None else ResilienceMetrics()
        self._breaker_factory = breaker_factory
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._limiter_factory = limiter_factory
        self._limiters: Dict[str, AimdLimiter] = {}
        # shared TailController (set by ResilienceRuntime.for_client when
        # the deployment enables the tail layer); None = tail defences off
        self.tail: Optional[TailController] = None

    def breaker_for(self, dst: str) -> Optional[CircuitBreaker]:
        if self._breaker_factory is None:
            return None
        breaker = self._breakers.get(dst)
        if breaker is None:
            breaker = self._breaker_factory(f"{self.name}->{dst}")
            self._breakers[dst] = breaker
        return breaker

    def breakers(self) -> Dict[str, CircuitBreaker]:
        return dict(self._breakers)

    def limiter_for(self, dst: str) -> Optional[AimdLimiter]:
        """The AIMD pacer for one destination (None when pacing is off)."""
        if self._limiter_factory is None:
            return None
        limiter = self._limiters.get(dst)
        if limiter is None:
            limiter = self._limiter_factory(f"{self.name}->{dst}")
            self._limiters[dst] = limiter
        return limiter

    def limiters(self) -> Dict[str, AimdLimiter]:
        return dict(self._limiters)

    def call(self, fn: Callable[[], object], dst: str = "",
             deadline: Optional[float] = None, request=None):
        self.metrics.by_destination[dst] = \
            self.metrics.by_destination.get(dst, 0) + 1
        return call_with_resilience(
            fn, clock=self.clock, policy=self.policy, rng=self.rng,
            breaker=self.breaker_for(dst), metrics=self.metrics,
            limiter=self.limiter_for(dst),
            label=f"{self.name}->{dst}",
            deadline=deadline,
            tail=self.tail, tail_key=f"{self.name}->{dst}",
            request=request,
        )


class ResilienceRuntime:
    """Deployment-wide resilience: one policy, shared rng, per-client kits.

    ``build_isambard(resilience=True)`` creates one and hands a
    :class:`Resilience` to each control-plane client (and to every user
    agent the workflows create), so the whole deployment retries, breaks
    and degrades consistently — and so the chaos bench can read one
    aggregated metrics view.
    """

    def __init__(
        self,
        clock: SimClock,
        rng,
        *,
        policy: Optional[RetryPolicy] = None,
        failure_threshold: int = 8,
        recovery_time: float = 5.0,
        half_open_probes: int = 1,
        overload: Optional[OverloadConfig] = None,
        tail: Optional[TailConfig] = None,
    ) -> None:
        self.clock = clock
        self.rng = rng
        self.policy = policy if policy is not None else RetryPolicy()
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        # with an OverloadConfig, every kit paces its destinations with
        # an AIMD limiter sized from the config
        self.overload = overload
        # with a TailConfig, every kit shares one TailController: the
        # latency tracker, hedge budget and retry budget are deployment
        # state, not per-client state
        self.tail_controller = \
            TailController(clock, tail) if tail is not None else None
        # optional (name, from_state, to_state, now) callback wired onto
        # every breaker this runtime creates; read lazily at breaker
        # construction, so setting it after kits exist still works (the
        # breakers themselves are created per-destination on first use)
        self.breaker_listener = None
        self._clients: Dict[str, Resilience] = {}

    def _limiter_factory(self) -> Optional[Callable[[str], AimdLimiter]]:
        cfg = self.overload
        if cfg is None:
            return None
        return lambda label: AimdLimiter(
            label,
            initial_rate=cfg.aimd_initial_rate,
            min_rate=cfg.aimd_min_rate,
            max_rate=cfg.aimd_max_rate,
            additive=cfg.aimd_additive,
            beta=cfg.aimd_beta,
        )

    def for_client(self, name: str) -> Resilience:
        """The (cached) resilience kit for one named client."""
        kit = self._clients.get(name)
        if kit is None:
            kit = Resilience(
                name, self.clock, self.rng, policy=self.policy,
                breaker_factory=lambda label: CircuitBreaker(
                    self.clock, name=label,
                    failure_threshold=self.failure_threshold,
                    recovery_time=self.recovery_time,
                    half_open_probes=self.half_open_probes,
                    listener=self.breaker_listener,
                ),
                limiter_factory=self._limiter_factory(),
            )
            kit.tail = self.tail_controller
            self._clients[name] = kit
        return kit

    def limiter_for(self, client: str, dst: str) -> Optional[AimdLimiter]:
        """The AIMD pacer of one (client, destination) pair."""
        return self.for_client(client).limiter_for(dst)

    def clients(self) -> Dict[str, Resilience]:
        return dict(self._clients)

    def totals(self) -> Dict[str, object]:
        """Aggregate metrics across every client (for the bench table)."""
        total = ResilienceMetrics()
        opens = 0
        time_open = 0.0
        aimd_waits = 0
        aimd_wait_time = 0.0
        aimd_backoffs = 0
        for kit in self._clients.values():
            m = kit.metrics
            total.calls += m.calls
            total.attempts += m.attempts
            total.retries += m.retries
            total.successes += m.successes
            total.failures += m.failures
            total.short_circuits += m.short_circuits
            total.rate_limited += m.rate_limited
            total.honoured_retry_afters += m.honoured_retry_afters
            total.expired += m.expired
            total.deadline_abandons += m.deadline_abandons
            total.hedges += m.hedges
            total.attempt_timeouts += m.attempt_timeouts
            total.budget_exhausted += m.budget_exhausted
            for dst, n in m.by_destination.items():
                total.by_destination[dst] = \
                    total.by_destination.get(dst, 0) + n
            for b in kit.breakers().values():
                opens += b.opens
                time_open += b.time_in_open()
            for lim in kit.limiters().values():
                aimd_waits += lim.waits
                aimd_wait_time += lim.wait_time
                aimd_backoffs += lim.backoffs
        out = total.snapshot()
        out["breaker_opens"] = opens
        out["breaker_time_in_open"] = round(time_open, 6)
        out["aimd_waits"] = aimd_waits
        out["aimd_wait_time"] = round(aimd_wait_time, 6)
        out["aimd_backoffs"] = aimd_backoffs
        tc = self.tail_controller
        if tc is not None:
            out["hedge_budget_denied"] = tc.hedge_budget.denied
            out["retry_budget_exhausted"] = tc.budget.exhausted
        return out
