"""Deterministic fault injection for the simulated network (chaos harness).

The paper's availability claims — HA bastions patched live (ABL4),
kill-switch containment under attack (ABL3), 45 simultaneous workshop
logins (§IV.B) — are only meaningful if the control plane can be driven
through *adversity*.  :class:`FaultInjector` is the seam: the deployment
hands one to :class:`~repro.net.network.Network`, and every message that
passes segmentation and transport policy is then offered to the injector,
which may fail it or slow it down.

Faults are windows on the shared :class:`~repro.clock.SimClock` and all
randomness comes from an injected ``random.Random``, so a chaos run is
bit-for-bit reproducible from its seed — the same property the rest of
the simulation guarantees.

Supported fault kinds (per endpoint, or per (domain, zone) flow):

* **outage** — every message to the endpoint fails;
* **brownout** — each message fails independently with probability *p*;
* **latency spike** — messages are delivered but cost extra simulated time;
* **flap** — the endpoint cycles up/down with a fixed period;
* **partition** — traffic between two (domain, zone) locations fails in
  both directions, regardless of endpoint health;
* **crash** — process death with state loss: the endpoint goes down AND
  its in-memory state is wiped (via a hook the deployment registers), so
  recovery exercises the durability layer instead of resuming silently;
* **region_down** — a whole deployment region dies at once: every replica
  endpoint goes down and the region journal is fenced, via hooks the
  multi-region deployment registers (see :mod:`repro.region`);
* **region partition** — inter-region replication and cross-region
  routing are severed both ways between two named regions, with a
  deterministic heal that flushes queued replication in publish order;
* **pdp_down** — the policy decision point goes unreachable; guarded
  surfaces ride the staleness bound, then fail closed;
* **teardown_stuck** — one enforcement surface stops confirming
  revocations until the fault clears (the pipeline retries converge it);
* **revocation_storm** — a burst of duplicate revocations lands on the
  pipeline at one instant (coalescing keeps it from amplifying);
* **shard_down** — one directory shard (accounts or metadata tier) goes
  down; lookups whose keys hash to it fail closed while every other
  shard keeps serving;
* **metadata_feed_stale** — a federation registrar's feed stops
  publishing; cached entries serve until their validity window lapses,
  then logins through them fail closed.

Injected failures raise :class:`~repro.errors.FaultInjected`, a subclass
of :class:`~repro.errors.ServiceUnavailable` — clients cannot tell chaos
from a real outage, which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.clock import SimClock
from repro.errors import ConfigurationError, FaultInjected

__all__ = ["Fault", "FaultInjector"]

# fault kinds
OUTAGE = "outage"
BROWNOUT = "brownout"
LATENCY = "latency"
FLAP = "flap"
PARTITION = "partition"
CRASH = "crash"
REGION_DOWN = "region_down"
# a persistently slow-but-alive replica: the canonical gray failure.
# Mechanically a latency fault, but a distinct kind so chaos reports can
# tell a transient network spike from a sick instance
SLOW_REPLICA = "slow_replica"
# continuous-authorization fault kinds (hooks registered by the authz
# deployment tier): the policy decision point goes unreachable, one
# enforcement surface's teardown wedges, or a burst of duplicate
# revocations lands on the pipeline at once
PDP_DOWN = "pdp_down"
TEARDOWN_STUCK = "teardown_stuck"
REVOCATION_STORM = "revocation_storm"
# federation-directory fault kinds (hooks registered by the directory
# tier): one shard of the sharded account/metadata stores goes down, or
# a federation registrar's metadata feed stops publishing
SHARD_DOWN = "shard_down"
METADATA_FEED_STALE = "metadata_feed_stale"


@dataclass
class Fault:
    """One scheduled perturbation.  ``duration=None`` means "until cleared"."""

    kind: str
    endpoint: Optional[str]
    start: float
    duration: Optional[float] = None
    probability: float = 1.0          # brownout failure probability
    extra_latency: float = 0.0        # latency-spike cost per message
    period: float = 0.0               # flap cycle length
    up_fraction: float = 0.5          # fraction of each flap period spent up
    # partition locations as (domain, zone) with zone None = whole domain
    loc_a: Optional[Tuple[object, object]] = None
    loc_b: Optional[Tuple[object, object]] = None
    hits: int = 0                     # messages this fault failed or slowed
    offers: int = 0                   # messages consulted while active —
                                      # satellite fix: brownout/flap only
                                      # counted hits on the messages they
                                      # failed, hiding how much traffic
                                      # rode through the window unscathed
    cleared: bool = False

    def active(self, now: float) -> bool:
        if self.cleared or now < self.start:
            return False
        return self.duration is None or now < self.start + self.duration

    def clear(self) -> None:
        self.cleared = True


def _loc_matches(loc: Tuple[object, object], domain, zone) -> bool:
    want_domain, want_zone = loc
    return domain == want_domain and (want_zone is None or zone == want_zone)


class FaultInjector:
    """The chaos controller: schedule faults, perturb messages.

    Parameters
    ----------
    clock:
        Shared simulated clock; fault windows are measured on it.
    rng:
        Dedicated ``random.Random`` for brownout draws.  Give the injector
        its *own* seeded instance (not the deployment's ``IdFactory`` rng)
        so enabling chaos does not shift identifier/secret generation.
    fail_cost:
        Simulated seconds a failed message costs the caller (the connect
        timeout it burns discovering the fault).
    """

    def __init__(self, clock: SimClock, rng, *, fail_cost: float = 0.025) -> None:
        self.clock = clock
        self.rng = rng
        self.fail_cost = fail_cost
        self.faults: List[Fault] = []
        self.injected_failures = 0
        self.injected_latency = 0.0
        self.failures_by_endpoint: Dict[str, int] = {}
        # crash hooks: endpoint -> (crash_fn, restart_fn), registered by
        # the deployment (only it knows how to wipe and recover a service)
        self._crash_hooks: Dict[str, Tuple[object, object]] = {}
        self.crashes_injected = 0
        # region hooks: region -> (down_fn, up_fn); plus one pair of link
        # hooks (sever_fn, heal_fn) for inter-region partitions — both
        # registered by the multi-region deployment tier
        self._region_hooks: Dict[str, Tuple[object, object]] = {}
        self._region_link_hooks: Optional[Tuple[object, object]] = None
        self.regions_downed = 0
        self.region_partitions = 0
        # region -> callable returning the region's current replica
        # endpoint names, so gray_region() can fan a slow_replica fault
        # over whatever the fleet looks like when it is scheduled
        self._region_endpoint_fns: Dict[str, object] = {}
        self.gray_regions = 0
        # continuous-authorization hooks, registered by the authz tier:
        # (down_fn, restore_fn) for the PDP, (stick_fn, unstick_fn) for
        # per-surface teardown wedges, storm_fn(count) for revocation
        # storms.  Their marker endpoints carry an "authz:" prefix that
        # never matches a real dst name, so perturb() ignores them.
        self._pdp_hooks: Optional[Tuple[object, object]] = None
        self._teardown_hooks: Optional[Tuple[object, object]] = None
        self._storm_hook = None
        self.pdp_outages = 0
        self.teardowns_stuck = 0
        self.revocation_storms = 0
        # federation-directory hooks, registered by the directory tier:
        # (down_fn, up_fn) taking (tier, shard) for shard faults, and
        # (stale_fn, fresh_fn) taking a feed name for registrar outages.
        # Marker endpoints use "shard:"/"feed:" prefixes that never match
        # a real dst name, so perturb() ignores them.
        self._shard_hooks: Optional[Tuple[object, object]] = None
        self._feed_hooks: Optional[Tuple[object, object]] = None
        self.shards_downed = 0
        self.feeds_staled = 0

    # ------------------------------------------------------------------
    # scheduling faults
    # ------------------------------------------------------------------
    def _add(self, fault: Fault) -> Fault:
        self.faults.append(fault)
        return fault

    def outage(self, endpoint: str, *, start: Optional[float] = None,
               duration: Optional[float] = None) -> Fault:
        """Hard-down window for ``endpoint``."""
        return self._add(Fault(OUTAGE, endpoint,
                               self.clock.now() if start is None else start,
                               duration))

    def brownout(self, endpoint: str, probability: float, *,
                 start: Optional[float] = None,
                 duration: Optional[float] = None) -> Fault:
        """Each message to ``endpoint`` fails with ``probability``."""
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"brownout probability must be in [0, 1], got {probability}")
        return self._add(Fault(BROWNOUT, endpoint,
                               self.clock.now() if start is None else start,
                               duration, probability=probability))

    def latency_spike(self, endpoint: str, extra: float, *,
                      start: Optional[float] = None,
                      duration: Optional[float] = None) -> Fault:
        """Messages to ``endpoint`` cost ``extra`` additional seconds."""
        if extra < 0:
            raise ConfigurationError(f"extra latency must be >= 0, got {extra}")
        return self._add(Fault(LATENCY, endpoint,
                               self.clock.now() if start is None else start,
                               duration, extra_latency=extra))

    def slow_replica(self, endpoint: str, extra: float, *,
                     start: Optional[float] = None,
                     duration: Optional[float] = None) -> Fault:
        """Make one replica *gray*: alive, serving, but ``extra`` seconds
        slower per message.  Nothing hard-fails, so breakers and health
        checks stay green — only the tail-tolerance layer notices."""
        if extra <= 0:
            raise ConfigurationError(
                f"slow_replica extra latency must be > 0, got {extra}")
        return self._add(Fault(SLOW_REPLICA, endpoint,
                               self.clock.now() if start is None else start,
                               duration, extra_latency=extra))

    def flap(self, endpoint: str, period: float, *, up_fraction: float = 0.5,
             start: Optional[float] = None,
             duration: Optional[float] = None) -> Fault:
        """``endpoint`` cycles: up for ``up_fraction`` of each ``period``,
        then down for the remainder."""
        if period <= 0 or not 0.0 <= up_fraction <= 1.0:
            raise ConfigurationError("flap needs period > 0 and up_fraction in [0, 1]")
        return self._add(Fault(FLAP, endpoint,
                               self.clock.now() if start is None else start,
                               duration, period=period, up_fraction=up_fraction))

    def partition(self, loc_a: Tuple[object, object], loc_b: Tuple[object, object],
                  *, start: Optional[float] = None,
                  duration: Optional[float] = None) -> Fault:
        """Sever traffic between two (domain, zone) locations, both ways.
        A ``None`` zone matches the whole domain."""
        return self._add(Fault(PARTITION, None,
                               self.clock.now() if start is None else start,
                               duration, loc_a=tuple(loc_a), loc_b=tuple(loc_b)))

    def register_crash_hooks(self, endpoint: str, crash_fn, restart_fn) -> None:
        """Teach the injector how to kill and restart ``endpoint``.

        ``crash_fn`` must take the endpoint down and wipe its in-memory
        state; ``restart_fn`` must bring it back (recovering from the
        journal if the deployment is durable, cold and empty otherwise).
        """
        self._crash_hooks[endpoint] = (crash_fn, restart_fn)

    def crash(self, endpoint: str, *, at: Optional[float] = None,
              restart_after: Optional[float] = None) -> Fault:
        """Kill ``endpoint``'s process: down + state wiped.

        ``at`` schedules the kill for a future instant (it then lands in
        the middle of whatever is in flight — the network re-checks
        endpoint health after the delivery delay, so a request can fail
        *mid-request* against the freshly wiped service).
        ``restart_after`` schedules the restart that many seconds after
        the crash; omit it to leave the service down until the caller
        restarts it explicitly.
        """
        if endpoint not in self._crash_hooks:
            raise ConfigurationError(
                f"no crash hooks registered for endpoint {endpoint!r}")
        crash_fn, restart_fn = self._crash_hooks[endpoint]
        start = self.clock.now() if at is None else at
        fault = self._add(Fault(CRASH, endpoint, start))

        def _fire() -> None:
            if fault.cleared:
                return
            fault.hits += 1
            fault.offers += 1
            self.crashes_injected += 1
            crash_fn()

        if start <= self.clock.now():
            _fire()
        else:
            self.clock.call_at(start, _fire)
        if restart_after is not None:
            self.clock.call_at(start + restart_after, restart_fn)
        return fault

    # ------------------------------------------------------------------
    # region-scale faults (multi-region deployments register the hooks)
    # ------------------------------------------------------------------
    def register_region_hooks(self, region: str, down_fn, up_fn) -> None:
        """Teach the injector how to kill and recover a whole region.

        ``down_fn`` must take every replica endpoint in the region down
        and fence its journal epoch; ``up_fn`` must bring the region back
        under a *fresh* epoch with caches flushed and revocation state
        resynced from the authoritative store.
        """
        self._region_hooks[region] = (down_fn, up_fn)

    def register_region_link_hooks(self, sever_fn, heal_fn) -> None:
        """Register the pair that severs/heals inter-region links.

        Both take ``(region_a, region_b)``; sever must cut bus
        replication *and* cross-region routing in both directions, heal
        must restore them and flush parked replication deterministically.
        """
        self._region_link_hooks = (sever_fn, heal_fn)

    def region_down(self, region: str, *, at: Optional[float] = None,
                    restore_after: Optional[float] = None) -> Fault:
        """Kill an entire region: every replica down + journal fenced.

        Mirrors :meth:`crash` scheduling: ``at`` defers the kill,
        ``restore_after`` schedules recovery that many seconds later;
        omit it to leave the region down until recovered explicitly.
        """
        if region not in self._region_hooks:
            raise ConfigurationError(
                f"no region hooks registered for region {region!r}")
        down_fn, up_fn = self._region_hooks[region]
        start = self.clock.now() if at is None else at
        fault = self._add(Fault(REGION_DOWN, f"region:{region}", start,
                                restore_after))

        def _fire() -> None:
            if fault.cleared:
                return
            fault.hits += 1
            fault.offers += 1
            self.regions_downed += 1
            down_fn()

        if start <= self.clock.now():
            _fire()
        else:
            self.clock.call_at(start, _fire)
        if restore_after is not None:
            self.clock.call_at(start + restore_after, up_fn)
        return fault

    def register_region_endpoints(self, region: str, endpoints_fn) -> None:
        """Teach the injector which replica endpoints make up ``region``
        (``endpoints_fn`` returns the *current* list, so the fan-out
        follows autoscaling)."""
        self._region_endpoint_fns[region] = endpoints_fn

    def gray_region(self, region: str, extra: float, *,
                    start: Optional[float] = None,
                    duration: Optional[float] = None) -> List[Fault]:
        """Turn a whole region *gray*: every replica endpoint currently
        in ``region`` gets a :meth:`slow_replica` fault.  The region
        keeps serving (slowly), its bus keeps replicating, so the lag
        watchdog never fires — only latency-aware routing notices."""
        fn = self._region_endpoint_fns.get(region)
        if fn is None:
            raise ConfigurationError(
                f"no region endpoints registered for region {region!r}")
        self.gray_regions += 1
        return [self.slow_replica(ep, extra, start=start, duration=duration)
                for ep in fn()]

    def region_partition(self, region_a: str, region_b: str, *,
                         at: Optional[float] = None,
                         duration: Optional[float] = None) -> Fault:
        """Sever bus replication and cross-region routing between two
        regions, both ways.  With ``duration`` the heal is scheduled
        deterministically; otherwise call the returned fault's hooks via
        :meth:`heal_region_partition` (or let the deployment heal).
        """
        if self._region_link_hooks is None:
            raise ConfigurationError("no region link hooks registered")
        sever_fn, heal_fn = self._region_link_hooks
        start = self.clock.now() if at is None else at
        # loc_a/loc_b are recorded for observability; the "region" marker
        # never equals an OperatingDomain, so perturb() ignores this fault
        fault = self._add(Fault(PARTITION, None, start, duration,
                                loc_a=("region", region_a),
                                loc_b=("region", region_b)))

        def _sever() -> None:
            if fault.cleared:
                return
            fault.hits += 1
            fault.offers += 1
            self.region_partitions += 1
            sever_fn(region_a, region_b)

        if start <= self.clock.now():
            _sever()
        else:
            self.clock.call_at(start, _sever)
        if duration is not None:
            def _heal() -> None:
                heal_fn(region_a, region_b)
                fault.clear()
            self.clock.call_at(start + duration, _heal)
        return fault

    # ------------------------------------------------------------------
    # continuous-authorization faults (the authz tier registers the hooks)
    # ------------------------------------------------------------------
    def register_pdp_hooks(self, down_fn, restore_fn) -> None:
        """Teach the injector how to kill and restore the policy decision
        point.  ``restore_fn`` must also re-heartbeat the guards and
        re-drive anything the pipeline left pending."""
        self._pdp_hooks = (down_fn, restore_fn)

    def pdp_down(self, *, at: Optional[float] = None,
                 restore_after: Optional[float] = None) -> Fault:
        """Make the policy decision point unreachable.

        Enforcement surfaces ride their last good heartbeat for the
        configured staleness bound, then fail closed.  ``restore_after``
        schedules the heal; omit it to leave the PDP down until restored
        explicitly.
        """
        if self._pdp_hooks is None:
            raise ConfigurationError("no PDP hooks registered")
        down_fn, restore_fn = self._pdp_hooks
        start = self.clock.now() if at is None else at
        fault = self._add(Fault(PDP_DOWN, "authz:pdp", start, restore_after))

        def _fire() -> None:
            if fault.cleared:
                return
            fault.hits += 1
            fault.offers += 1
            self.pdp_outages += 1
            down_fn()

        if start <= self.clock.now():
            _fire()
        else:
            self.clock.call_at(start, _fire)
        if restore_after is not None:
            def _restore() -> None:
                restore_fn()
                fault.clear()
            self.clock.call_at(start + restore_after, _restore)
        return fault

    def register_teardown_hooks(self, stick_fn, unstick_fn) -> None:
        """Register the pair that wedges/unwedges one enforcement
        surface's teardown; both take the surface name."""
        self._teardown_hooks = (stick_fn, unstick_fn)

    def teardown_stuck(self, surface: str, *, at: Optional[float] = None,
                       duration: Optional[float] = None) -> Fault:
        """Wedge one enforcement surface: revocations journal and fan out
        everywhere else, but this surface confirms nothing until the
        fault ends (the pipeline's retry loop then converges it)."""
        if self._teardown_hooks is None:
            raise ConfigurationError("no teardown hooks registered")
        stick_fn, unstick_fn = self._teardown_hooks
        start = self.clock.now() if at is None else at
        fault = self._add(Fault(TEARDOWN_STUCK, f"authz:{surface}", start,
                                duration))

        def _stick() -> None:
            if fault.cleared:
                return
            fault.hits += 1
            fault.offers += 1
            self.teardowns_stuck += 1
            stick_fn(surface)

        if start <= self.clock.now():
            _stick()
        else:
            self.clock.call_at(start, _stick)
        if duration is not None:
            def _unstick() -> None:
                unstick_fn(surface)
                fault.clear()
            self.clock.call_at(start + duration, _unstick)
        return fault

    def register_storm_hook(self, storm_fn) -> None:
        """Register the callable that fires ``count`` revocations across
        identities with live grants (the pipeline coalesces duplicates)."""
        self._storm_hook = storm_fn

    def revocation_storm(self, count: int, *,
                         at: Optional[float] = None) -> Fault:
        """Land a burst of ``count`` revocation requests on the pipeline
        at one instant — the retry-storm guard and coalescing are what
        keep this from amplifying into N full teardowns."""
        if self._storm_hook is None:
            raise ConfigurationError("no storm hook registered")
        if count <= 0:
            raise ConfigurationError(f"storm count must be > 0, got {count}")
        storm_fn = self._storm_hook
        start = self.clock.now() if at is None else at
        fault = self._add(Fault(REVOCATION_STORM, "authz:pipeline", start))

        def _fire() -> None:
            if fault.cleared:
                return
            fired = storm_fn(count)
            fault.hits += int(fired)
            fault.offers += count
            self.revocation_storms += 1

        if start <= self.clock.now():
            _fire()
        else:
            self.clock.call_at(start, _fire)
        return fault

    # ------------------------------------------------------------------
    # federation-directory faults (the directory tier registers the hooks)
    # ------------------------------------------------------------------
    def register_shard_hooks(self, down_fn, up_fn) -> None:
        """Register the pair that downs/restores one directory shard;
        both take ``(tier, shard)`` — tier is ``"accounts"`` or
        ``"metadata"``, shard the shard name (e.g. ``"acct-03"``)."""
        self._shard_hooks = (down_fn, up_fn)

    def shard_down(self, tier: str, shard: str, *, at: Optional[float] = None,
                   restore_after: Optional[float] = None) -> Fault:
        """Take one directory shard down (state intact, just unreachable).

        Lookups whose keys hash to it raise
        :class:`~repro.errors.ShardUnavailable` — the sharded tier fails
        that key range *closed* rather than guessing.  ``restore_after``
        schedules the heal; omit it to leave the shard down until
        restored explicitly.
        """
        if self._shard_hooks is None:
            raise ConfigurationError("no shard hooks registered")
        down_fn, up_fn = self._shard_hooks
        start = self.clock.now() if at is None else at
        fault = self._add(Fault(SHARD_DOWN, f"shard:{tier}/{shard}", start,
                                restore_after))

        def _fire() -> None:
            if fault.cleared:
                return
            fault.hits += 1
            fault.offers += 1
            self.shards_downed += 1
            down_fn(tier, shard)

        if start <= self.clock.now():
            _fire()
        else:
            self.clock.call_at(start, _fire)
        if restore_after is not None:
            def _restore() -> None:
                up_fn(tier, shard)
                fault.clear()
            self.clock.call_at(start + restore_after, _restore)
        return fault

    def register_feed_hooks(self, stale_fn, fresh_fn) -> None:
        """Register the pair that downs/restores a metadata feed's
        registrar; both take the feed name."""
        self._feed_hooks = (stale_fn, fresh_fn)

    def metadata_feed_stale(self, feed: str, *, at: Optional[float] = None,
                            duration: Optional[float] = None) -> Fault:
        """Silence one federation registrar: polls fail, no new deltas
        arrive, and the feed's already-ingested entries age toward their
        validity horizon — past it, logins through them fail closed."""
        if self._feed_hooks is None:
            raise ConfigurationError("no feed hooks registered")
        stale_fn, fresh_fn = self._feed_hooks
        start = self.clock.now() if at is None else at
        fault = self._add(Fault(METADATA_FEED_STALE, f"feed:{feed}", start,
                                duration))

        def _stale() -> None:
            if fault.cleared:
                return
            fault.hits += 1
            fault.offers += 1
            self.feeds_staled += 1
            stale_fn(feed)

        if start <= self.clock.now():
            _stale()
        else:
            self.clock.call_at(start, _stale)
        if duration is not None:
            def _fresh() -> None:
                fresh_fn(feed)
                fault.clear()
            self.clock.call_at(start + duration, _fresh)
        return fault

    def heal_region_partition(self, region_a: str, region_b: str) -> None:
        """Explicitly heal a previously severed inter-region link."""
        if self._region_link_hooks is None:
            raise ConfigurationError("no region link hooks registered")
        self._region_link_hooks[1](region_a, region_b)
        for f in self.faults:
            if (f.kind == PARTITION and f.loc_a == ("region", region_a)
                    and f.loc_b == ("region", region_b) and not f.cleared):
                f.clear()

    def clear(self, fault: Optional[Fault] = None) -> None:
        """End one fault, or every scheduled fault."""
        if fault is not None:
            fault.clear()
        else:
            for f in self.faults:
                f.clear()

    def active_faults(self) -> List[Fault]:
        now = self.clock.now()
        return [f for f in self.faults if f.active(now)]

    # ------------------------------------------------------------------
    # the network hook
    # ------------------------------------------------------------------
    def perturb(self, src, dst) -> float:
        """Offer one message for perturbation; called by the network after
        policy checks, before delivery.

        ``src``/``dst`` are endpoint-shaped objects (``name``, ``domain``,
        ``zone``).  Returns extra latency to impose on delivery; raises
        :class:`FaultInjected` to fail the message.  Failures happen
        *before* delivery, so the destination never observes a partially
        applied request — which is what makes client retries safe.
        """
        now = self.clock.now()
        extra = 0.0
        for fault in self.faults:
            if not fault.active(now):
                continue
            if fault.kind == PARTITION:
                a, b = fault.loc_a, fault.loc_b
                if (_loc_matches(a, src.domain, src.zone)
                        and _loc_matches(b, dst.domain, dst.zone)) or \
                   (_loc_matches(b, src.domain, src.zone)
                        and _loc_matches(a, dst.domain, dst.zone)):
                    fault.offers += 1
                    self._fail(fault, dst.name,
                               f"partition {a} <-> {b} drops {src.name} -> {dst.name}")
                continue
            if fault.endpoint != dst.name:
                continue
            # every matching message is an *offer*, whether or not the
            # fault ends up acting on it: hits/offers together say how
            # much of the window's traffic the fault actually touched
            fault.offers += 1
            if fault.kind == OUTAGE:
                self._fail(fault, dst.name, f"injected outage at {dst.name}")
            elif fault.kind == BROWNOUT:
                if self.rng.random() < fault.probability:
                    self._fail(fault, dst.name,
                               f"injected brownout at {dst.name} "
                               f"(p={fault.probability})")
            elif fault.kind == FLAP:
                phase = (now - fault.start) % fault.period
                if phase >= fault.period * fault.up_fraction:
                    self._fail(fault, dst.name, f"injected flap: {dst.name} is down")
            elif fault.kind in (LATENCY, SLOW_REPLICA):
                fault.hits += 1
                extra += fault.extra_latency
        self.injected_latency += extra
        return extra

    def fault_stats(self) -> List[Dict[str, object]]:
        """Per-fault hit/offer accounting, for chaos and bench reports."""
        return [
            {
                "kind": f.kind, "endpoint": f.endpoint,
                "start": f.start, "duration": f.duration,
                "hits": f.hits, "offers": f.offers,
            }
            for f in self.faults
        ]

    def _fail(self, fault: Fault, endpoint: str, message: str) -> None:
        fault.hits += 1
        self.injected_failures += 1
        self.failures_by_endpoint[endpoint] = (
            self.failures_by_endpoint.get(endpoint, 0) + 1)
        raise FaultInjected(message)
