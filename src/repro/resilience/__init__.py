"""Resilience layer: fault injection, retry/backoff, circuit breaking.

The zero-trust control plane treats dependency outages as routine (the
federated IdP is an availability-critical dependency — Prout et al.;
identity-layer resilience bounds zero-trust infrastructure — Avirneni).
This package supplies both halves of that story:

* :mod:`repro.resilience.faults` — a deterministic chaos harness hooked
  into the simulated network;
* :mod:`repro.resilience.retry` / :mod:`repro.resilience.breaker` — the
  client-side machinery that rides through the chaos;

and the deployment threads them through the OIDC, broker, tunnel and
SIEM paths (see ``build_isambard(resilience=...)`` and the graceful-
degradation seams in ``cluster.jupyter``, ``oidc.client``,
``siem.forwarder`` and ``tunnels.zenith``).
"""

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.durability import (
    Durable,
    DurabilityStore,
    JournalEntry,
    RecoveryReport,
    ServiceJournal,
)
from repro.resilience.failover import FailoverController, FailoverPair
from repro.resilience.faults import Fault, FaultInjector
from repro.resilience.overload import (
    AdmissionController,
    AdmissionPolicy,
    AimdLimiter,
    OverloadConfig,
    Priority,
)
from repro.resilience.retry import (
    Resilience,
    ResilienceMetrics,
    ResilienceRuntime,
    RetryPolicy,
    call_with_resilience,
)
from repro.resilience.tail import (
    HedgeBudget,
    LatencyTracker,
    OutlierEjector,
    RetryBudget,
    TailConfig,
    TailController,
    hedgeable_request,
)

__all__ = [
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "Durable",
    "DurabilityStore",
    "JournalEntry",
    "RecoveryReport",
    "ServiceJournal",
    "FailoverController",
    "FailoverPair",
    "Fault",
    "FaultInjector",
    "AdmissionController",
    "AdmissionPolicy",
    "AimdLimiter",
    "OverloadConfig",
    "Priority",
    "Resilience",
    "ResilienceMetrics",
    "ResilienceRuntime",
    "RetryPolicy",
    "call_with_resilience",
    "HedgeBudget",
    "LatencyTracker",
    "OutlierEjector",
    "RetryBudget",
    "TailConfig",
    "TailController",
    "hedgeable_request",
]
